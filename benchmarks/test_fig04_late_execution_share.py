"""Figure 4: proportion of committed µ-ops late-executable (disjoint from Figure 2)."""

from benchmarks.conftest import record_result
from repro.analysis.experiments import fig4_late_execution_share


def test_fig04_late_execution_share(benchmark, bench_workloads, bench_lengths):
    max_uops, warmup = bench_lengths
    result = benchmark.pedantic(
        lambda: fig4_late_execution_share(bench_workloads, max_uops, warmup),
        rounds=1,
        iterations=1,
    )
    print("\n" + record_result(result))

    branches = result.series_by_label("High-confidence branches")
    predicted = result.series_by_label("Value-predicted")
    total = result.series_by_label("Total offload (EE+LE)")
    for name in branches.values:
        late_share = branches.values[name] + predicted.values[name]
        assert 0.0 <= late_share <= 1.0
        # Fig. 2 + Fig. 4 shares together form the total OoO-engine offload.
        assert total.values[name] >= late_share - 1e-9
    # Section 3.4: the offload spans roughly 10%-60% of retired µ-ops across the suite.
    assert max(total.values.values()) > 0.3
    assert min(total.values.values()) < 0.35
