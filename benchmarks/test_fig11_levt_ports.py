"""Figure 11: limiting the LE/VT read ports per PRF bank (2/3/4 ports, 4 banks)."""

from benchmarks.conftest import record_result
from repro.analysis.experiments import fig11_levt_ports


def test_fig11_levt_ports(benchmark, bench_workloads, bench_lengths):
    max_uops, warmup = bench_lengths
    result = benchmark.pedantic(
        lambda: fig11_levt_ports(bench_workloads, max_uops, warmup), rounds=1, iterations=1
    )
    print("\n" + record_result(result))

    two = result.series_by_label("2P/4B")
    three = result.series_by_label("3P/4B")
    four = result.series_by_label("4P/4B")
    # Paper's shape: more LE/VT ports never hurt, and 4 ports per bank are near-neutral
    # while 2 ports are the worst configuration.
    assert two.summary("geomean") <= three.summary("geomean") + 0.01
    assert three.summary("geomean") <= four.summary("geomean") + 0.01
    assert four.summary("geomean") > 0.97
    for name, value in four.values.items():
        assert value > 0.93, (name, value)
