"""Figure 12: the realistic EOLE design point vs the VP baseline and the no-VP baseline.

The paper's overall claim: EOLE_4_64 with a 4-banked PRF and 4 LE/VT ports keeps the
performance advantage that value prediction provides over Baseline_6_64, while using a
narrower out-of-order engine and a register file with no more ports than a 6-issue
baseline without VP.
"""

from benchmarks.conftest import record_result
from repro.analysis.experiments import fig12_overall
from repro.analysis.metrics import geometric_mean


def test_fig12_overall(benchmark, bench_workloads, bench_lengths):
    max_uops, warmup = bench_lengths
    result = benchmark.pedantic(
        lambda: fig12_overall(bench_workloads, max_uops, warmup), rounds=1, iterations=1
    )
    print("\n" + record_result(result))

    no_vp = result.series_by_label("Baseline_6_64").values
    eole = result.series_by_label("EOLE_4_64").values
    realistic = result.series_by_label("EOLE_4_64_4ports_4banks").values

    # The realistic design point tracks the idealised EOLE_4_64 closely (the most
    # offload-heavy workload may pay a few extra percent for the port budget)...
    for name in realistic:
        assert realistic[name] >= eole[name] - 0.08
    # ...stays close to the 6-issue VP baseline on average...
    assert geometric_mean(realistic.values()) > 0.93
    # ...and retains (most of) VP's advantage over the no-VP 6-issue baseline.
    assert geometric_mean(realistic.values()) >= geometric_mean(no_vp.values()) - 0.02
    assert max(realistic[n] - no_vp[n] for n in realistic) > 0.1
