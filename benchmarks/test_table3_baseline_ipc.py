"""Table 3: per-benchmark IPC of the Baseline_6_64 machine (no value prediction)."""

from benchmarks.conftest import record_result
from repro.analysis.experiments import table3_baseline_ipc


def test_table3_baseline_ipc(benchmark, bench_workloads, bench_lengths):
    max_uops, warmup = bench_lengths
    result = benchmark.pedantic(
        lambda: table3_baseline_ipc(bench_workloads, max_uops, warmup),
        rounds=1,
        iterations=1,
    )
    print("\n" + record_result(result))

    measured = result.series_by_label("Measured IPC")
    # IPCs are positive and within the machine's commit width.
    assert all(0.0 < value <= 8.0 for value in measured.values.values())
    # The suite spans memory-bound (IPC << 1) to wide-ILP (IPC > 2) behaviour, like
    # Table 3's 0.105 (mcf) ... 2.477 (hmmer) spread.
    assert min(measured.values.values()) < 0.8
    assert max(measured.values.values()) > 2.0
