"""Figure 2: proportion of committed µ-ops early-executable with 1 or 2 ALU stages.

Also serves as the Early-Execution-depth ablation (1/2/3 stages), since the paper's
conclusion — one stage captures nearly all the benefit — is a design decision DESIGN.md
calls out.
"""

from benchmarks.conftest import record_result
from repro.analysis.experiments import fig2_early_execution_share


def test_fig02_early_execution_share(benchmark, bench_workloads, bench_lengths):
    max_uops, warmup = bench_lengths

    def run():
        return fig2_early_execution_share(
            bench_workloads, max_uops, warmup, depths=(1, 2, 3)
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + record_result(result))

    one = result.series_by_label("1 ALU stage")
    two = result.series_by_label("2 ALU stages")
    three = result.series_by_label("3 ALU stages")
    for name in one.values:
        # Shares are valid proportions and grow (weakly) with depth.
        assert 0.0 <= one.values[name] <= 1.0
        assert one.values[name] - 1e-9 <= two.values[name] <= three.values[name] + 1e-9
    # Paper's conclusion: the second stage adds little over the first.
    assert two.summary("mean") - one.summary("mean") < 0.10
    # Early execution captures a visible fraction of committed µ-ops somewhere.
    assert max(one.values.values()) > 0.05
