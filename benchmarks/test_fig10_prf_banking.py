"""Figure 10: PRF banking (2/4/8 banks) on EOLE_4_64, relative to a single bank."""

from benchmarks.conftest import record_result
from repro.analysis.experiments import fig10_prf_banks


def test_fig10_prf_banking(benchmark, bench_workloads, bench_lengths):
    max_uops, warmup = bench_lengths
    result = benchmark.pedantic(
        lambda: fig10_prf_banks(bench_workloads, max_uops, warmup), rounds=1, iterations=1
    )
    print("\n" + record_result(result))

    # Paper: the loss from forcing consecutive µ-ops into different banks is marginal
    # (Fig. 10 stays within ~2-3% of the unconstrained PRF); 4 banks of 64 registers is
    # the recommended design point.
    for banks in ("2 banks", "4 banks", "8 banks"):
        series = result.series_by_label(banks)
        for name, value in series.values.items():
            assert value > 0.9, (banks, name, value)
        assert series.summary("geomean") > 0.95
