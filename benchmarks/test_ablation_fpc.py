"""Ablation: Forward Probabilistic Counters vs deterministic 3-bit confidence counters.

Section 4.2 of the paper relies on FPC to push the accuracy of *used* predictions high
enough that squash-based recovery is affordable.  This ablation measures, at the trace
level, the accuracy/coverage trade-off of the paper's probabilistic vector against
plain 3-bit counters.
"""

from benchmarks.conftest import record_result
from repro.analysis.experiments import ablation_fpc_vector


def test_ablation_fpc(benchmark, bench_workloads, bench_lengths):
    max_uops, _warmup = bench_lengths
    result = benchmark.pedantic(
        lambda: ablation_fpc_vector(bench_workloads, max_uops=max(max_uops, 8000)),
        rounds=1,
        iterations=1,
    )
    print("\n" + record_result(result))

    fpc_accuracy = result.series_by_label("FPC accuracy")
    det_accuracy = result.series_by_label("3-bit accuracy")
    fpc_coverage = result.series_by_label("FPC coverage")
    det_coverage = result.series_by_label("3-bit coverage")

    for name in fpc_accuracy.values:
        # FPC keeps used predictions essentially always correct...
        assert fpc_accuracy.values[name] > 0.98
        # ...at the cost of some coverage relative to plain counters.
        assert det_coverage.values[name] >= fpc_coverage.values[name] - 1e-9
    # Deterministic counters are (weakly) less accurate on average.
    assert det_accuracy.summary("mean") <= fpc_accuracy.summary("mean") + 1e-6
