#!/usr/bin/env python3
"""Simulator throughput harness: committed µ-ops/second, single-cell and grid.

Measures two workloads-per-wall-clock numbers and appends them to the
**speedup ladder** in ``BENCH_throughput.json`` at the repository root, so
performance PRs have a trajectory to beat (see docs/performance.md):

* **single cell** — one ``EOLE_4_64 × gcc`` simulation (the paper's headline
  configuration on a branchy workload);
* **grid** — the 4-configuration × 4-workload microbenchmark
  (`Baseline_6_64`, `Baseline_VP_6_64`, `EOLE_4_64`, `EOLE_4_64_4ports_4banks` ×
  `wupwise`, `bzip2`, `gcc`, `milc`), run with a **cold** trace cache and no result
  reuse — the end-to-end cost of regenerating one figure from scratch.

The ladder is **append-only**: ``{"format": "speedup-ladder/1", "entries": [...]}``
with one entry per recorded run (label, grid, single_cell, and speedups relative
to the previous rung).  A pre-ladder single-report file is migrated in place on
the first append.  Per-rung speedups compare against the *previous entry's*
numbers as recorded; for an apples-to-apples PR comparison, re-measure the
previous checkout in the same session (machines drift) and pass it explicitly:

    PYTHONPATH=src python benchmarks/perf/throughput.py --output /tmp/base.json --no-append
    PYTHONPATH=src python benchmarks/perf/throughput.py --baseline-json /tmp/base.json

The measurement core deliberately uses only APIs that exist since PR 1
(`simulate_cell`), so it can be dropped onto an older checkout.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.runner import ResultCache  # noqa: E402
from repro.campaign.executor import simulate_cell  # noqa: E402
from repro.campaign.spec import CampaignCell  # noqa: E402
from repro.pipeline.config import named_config  # noqa: E402
from repro.workloads.suite import workload  # noqa: E402

try:  # the trace subsystem arrives with this harness; the baseline tree lacks it
    from repro.trace.cache import shared_trace_cache
except ImportError:  # pragma: no cover - only on pre-trace checkouts
    shared_trace_cache = None

try:  # the switchable in-flight record backend arrives with PR 7
    from repro.ooo.inflight import soa_batch_enabled, soa_enabled
except ImportError:  # pragma: no cover - only on pre-SoA checkouts
    soa_enabled = soa_batch_enabled = None

try:  # the multi-config replay engine arrives with PR 8
    from repro.campaign.executor import simulate_cells
    from repro.pipeline.multi_replay import multi_replay_enabled
except ImportError:  # pragma: no cover - only on pre-multi-replay checkouts
    simulate_cells = multi_replay_enabled = None

GRID_CONFIGS = (
    "Baseline_6_64",
    "Baseline_VP_6_64",
    "EOLE_4_64",
    "EOLE_4_64_4ports_4banks",
)
GRID_WORKLOADS = ("wupwise", "bzip2", "gcc", "milc")
SINGLE_CONFIG = "EOLE_4_64"
SINGLE_WORKLOAD = "gcc"

#: The design-space sweep (≥8 configs × the grid workloads): the axis the
#: multi-config replay engine (REPRO_MULTI_REPLAY) collapses into one pass per
#: workload.  measure_config_sweep times it serial AND multi in the same
#: session, so the recorded speedup is apples-to-apples.
SWEEP_CONFIGS = (
    "Baseline_6_64",
    "Baseline_8_64",
    "Baseline_VP_6_64",
    "Baseline_VP_4_64",
    "EOLE_6_64",
    "EOLE_4_64",
    "EOLE_4_48",
    "EOLE_4_64_4ports_4banks",
)


def _cell(config_name: str, workload_name: str, max_uops: int, warmup_uops: int) -> CampaignCell:
    return CampaignCell(
        config=named_config(config_name),
        workload_name=workload_name,
        max_uops=max_uops,
        warmup_uops=warmup_uops,
    )


def _clear_caches() -> None:
    if shared_trace_cache is not None:
        shared_trace_cache.clear()


def measure_single_cell(max_uops: int, warmup_uops: int, repeat: int) -> dict:
    """Best-of-``repeat`` timing of one cold simulation (capture + simulate)."""
    best = float("inf")
    for _ in range(repeat):
        _clear_caches()
        cell = _cell(SINGLE_CONFIG, SINGLE_WORKLOAD, max_uops, warmup_uops)
        wl = workload(SINGLE_WORKLOAD)
        started = time.perf_counter()
        simulate_cell(cell, wl)
        best = min(best, time.perf_counter() - started)
    return {
        "config": SINGLE_CONFIG,
        "workload": SINGLE_WORKLOAD,
        "max_uops": max_uops,
        "seconds": best,
        "committed_uops_per_second": max_uops / best,
    }


def measure_grid(max_uops: int, warmup_uops: int, repeat: int) -> dict:
    """Best-of-``repeat`` timing of the full 4×4 grid with a cold trace cache."""
    cells = [
        _cell(config_name, workload_name, max_uops, warmup_uops)
        for config_name in GRID_CONFIGS
        for workload_name in GRID_WORKLOADS
    ]
    best = float("inf")
    for _ in range(repeat):
        _clear_caches()
        ResultCache().clear()
        started = time.perf_counter()
        for cell in cells:
            simulate_cell(cell)
        best = min(best, time.perf_counter() - started)
    total_uops = max_uops * len(cells)
    return {
        "configs": list(GRID_CONFIGS),
        "workloads": list(GRID_WORKLOADS),
        "cells": len(cells),
        "max_uops_per_cell": max_uops,
        "seconds": best,
        "committed_uops_total": total_uops,
        "committed_uops_per_second": total_uops / best,
    }


def measure_config_sweep(max_uops: int, warmup_uops: int, repeat: int) -> dict:
    """Serial vs single-pass multi-replay over the 8-config × 4-workload sweep.

    Both flavours run in this session with a cold trace cache per repeat, so the
    recorded ``multi_speedup`` is a same-machine, same-checkout comparison:

    * **serial** — the per-cell reference (`simulate_cell` per configuration,
      workload-major so the in-process trace cache is reused identically);
    * **multi** — each workload's configuration row as one
      :class:`~repro.pipeline.multi_replay.MultiSimulator` pass
      (`simulate_cells`).

    ``configs_per_second`` is the sweep-shaped throughput number alongside the
    µops-per-second the other sections report: design-space exploration cares
    how many *configurations* a wall-clock second buys.
    """
    rows = [
        (
            workload(workload_name),
            [
                _cell(config_name, workload_name, max_uops, warmup_uops)
                for config_name in SWEEP_CONFIGS
            ],
        )
        for workload_name in GRID_WORKLOADS
    ]
    cells = sum(len(row_cells) for _, row_cells in rows)

    def flavour(seconds: float) -> dict:
        return {
            "seconds": seconds,
            "configs_per_second": cells / seconds,
            "committed_uops_per_second": max_uops * cells / seconds,
        }

    serial_best = multi_best = float("inf")
    for _ in range(repeat):
        _clear_caches()
        started = time.perf_counter()
        for wl, row_cells in rows:
            for cell in row_cells:
                simulate_cell(cell, wl)
        serial_best = min(serial_best, time.perf_counter() - started)

        _clear_caches()
        started = time.perf_counter()
        for wl, row_cells in rows:
            simulate_cells(row_cells, wl)
        multi_best = min(multi_best, time.perf_counter() - started)
    return {
        "configs": list(SWEEP_CONFIGS),
        "workloads": list(GRID_WORKLOADS),
        "cells": cells,
        "max_uops_per_cell": max_uops,
        "serial": flavour(serial_best),
        "multi": flavour(multi_best),
        "multi_speedup": serial_best / multi_best,
    }


#: Ladder file format marker (bumped on breaking schema changes).
LADDER_FORMAT = "speedup-ladder/1"


def _git_sha() -> str | None:
    """The current commit SHA, or None outside a git checkout / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _host_info() -> dict:
    """Stable host identity for attributing ladder rungs across machines."""
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def _parse_meta(pairs: list[str]) -> dict:
    """``--meta key=val`` pairs → dict (rejecting malformed arguments)."""
    meta: dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--meta expects key=val, got {pair!r}")
        meta[key] = value
    return meta


def migrate_legacy_report(report: dict) -> list[dict]:
    """Turn a pre-ladder single-report file into ladder entries (oldest first)."""
    entries: list[dict] = []
    baseline = report.get("baseline")
    if baseline and "grid" in baseline:
        entries.append(
            {
                "label": baseline.get("label"),
                "grid": baseline["grid"],
                "single_cell": baseline["single_cell"],
                "migrated_from": "pre-ladder report (embedded baseline)",
            }
        )
    entry = {
        key: report[key]
        for key in (
            "label",
            "grid",
            "single_cell",
            "grid_speedup",
            "single_cell_speedup",
            "method",
            "platform",
            "python",
            "recorded_unix",
        )
        if key in report
    }
    entry["migrated_from"] = "pre-ladder report"
    entries.append(entry)
    return entries


def load_ladder(path: Path) -> list[dict]:
    """Read the ladder entries at ``path`` (migrating a legacy report in place)."""
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if isinstance(data, dict) and data.get("format") == LADDER_FORMAT:
        return list(data["entries"])
    if isinstance(data, dict) and "grid" in data:
        return migrate_legacy_report(data)
    raise SystemExit(f"unrecognised throughput report format in {path}")


def write_ladder(path: Path, entries: list[dict]) -> None:
    payload = {"format": LADDER_FORMAT, "entries": entries}
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-uops", type=int, default=8000)
    parser.add_argument("--warmup-uops", type=int, default=2500)
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_throughput.json"),
        help="ladder file to append to (default: BENCH_throughput.json)",
    )
    parser.add_argument(
        "--baseline-json", default=None,
        help="an explicit report/ladder whose last entry is the speedup baseline "
        "(default: the output ladder's own last entry)",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="write a single-entry ladder to --output instead of appending "
        "(for producing a same-session baseline measurement)",
    )
    parser.add_argument("--method", default=None, help="free-form measurement notes")
    parser.add_argument("--label", default=None, help="free-form label for the run")
    parser.add_argument(
        "--meta", action="append", default=[], metavar="KEY=VAL",
        help="attach arbitrary key=val metadata to the entry (repeatable)",
    )
    args = parser.parse_args(argv)
    meta = _parse_meta(args.meta)
    if soa_enabled is not None:
        # Stamp the in-flight record backend automatically so ladder rungs are
        # always attributable; an explicit --meta backend=... wins.
        meta.setdefault("backend", "soa" if soa_enabled() else "object")
        if soa_enabled() and soa_batch_enabled():
            meta.setdefault("soa_batch", "1")
    if multi_replay_enabled is not None:
        # How the single-cell/grid sections replayed (the config_sweep section
        # always measures both flavours explicitly, whatever this says).
        meta.setdefault(
            "replay_mode", "multi" if multi_replay_enabled() else "serial"
        )

    entry = {
        "label": args.label,
        "recorded_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_sha": _git_sha(),
        "host": _host_info(),
        "trace_cache_available": shared_trace_cache is not None,
        "single_cell": measure_single_cell(args.max_uops, args.warmup_uops, args.repeat),
        "grid": measure_grid(args.max_uops, args.warmup_uops, args.repeat),
    }
    if simulate_cells is not None:
        entry["config_sweep"] = measure_config_sweep(
            args.max_uops, args.warmup_uops, args.repeat
        )
    if meta:
        entry["meta"] = meta
    if args.method:
        entry["method"] = args.method

    output = Path(args.output)
    if args.no_append and output.resolve() == (REPO_ROOT / "BENCH_throughput.json").resolve():
        # Guard rail: a single-entry --no-append file over the committed ladder
        # would destroy the recorded speedup history.
        raise SystemExit(
            "--no-append would overwrite the committed ladder; "
            "pass an explicit --output (e.g. /tmp/base.json)"
        )
    entries = [] if args.no_append else load_ladder(output)
    if args.baseline_json:
        baseline_entries = load_ladder(Path(args.baseline_json))
        baseline = baseline_entries[-1] if baseline_entries else None
    else:
        baseline = entries[-1] if entries else None
    if baseline is not None:
        entry["baseline_label"] = baseline.get("label")
        entry["grid_speedup"] = baseline["grid"]["seconds"] / entry["grid"]["seconds"]
        entry["single_cell_speedup"] = (
            baseline["single_cell"]["seconds"] / entry["single_cell"]["seconds"]
        )
    entries.append(entry)
    write_ladder(output, entries)

    grid = entry["grid"]
    single = entry["single_cell"]
    print(
        f"single cell {single['config']}/{single['workload']}: {single['seconds']:.3f}s "
        f"({single['committed_uops_per_second']:,.0f} µops/s)"
    )
    print(
        f"grid {grid['cells']} cells: {grid['seconds']:.2f}s "
        f"({grid['committed_uops_per_second']:,.0f} µops/s)"
    )
    if "config_sweep" in entry:
        sweep = entry["config_sweep"]
        print(
            f"config sweep {sweep['cells']} cells: "
            f"serial {sweep['serial']['seconds']:.2f}s "
            f"({sweep['serial']['configs_per_second']:.1f} configs/s), "
            f"multi-replay {sweep['multi']['seconds']:.2f}s "
            f"({sweep['multi']['configs_per_second']:.1f} configs/s) "
            f"-> {sweep['multi_speedup']:.2f}x"
        )
    if "grid_speedup" in entry:
        print(
            f"speedup vs {entry.get('baseline_label') or 'previous rung'}: "
            f"grid {entry['grid_speedup']:.2f}x, "
            f"single cell {entry['single_cell_speedup']:.2f}x"
        )
    print(f"ladder now has {len(entries)} entries -> {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
