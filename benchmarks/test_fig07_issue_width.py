"""Figure 7: issue-width impact — EOLE_4_64 vs Baseline_VP_4_64 vs EOLE_6_64.

The paper's headline: shrinking the issue width from 6 to 4 costs the VP baseline up to
~12% on several benchmarks, while EOLE_4_64 stays on par with Baseline_VP_6_64.
"""

from benchmarks.conftest import record_result
from repro.analysis.experiments import fig7_issue_width
from repro.analysis.metrics import geometric_mean


def test_fig07_issue_width(benchmark, bench_workloads, bench_lengths):
    max_uops, warmup = bench_lengths
    result = benchmark.pedantic(
        lambda: fig7_issue_width(bench_workloads, max_uops, warmup), rounds=1, iterations=1
    )
    print("\n" + record_result(result))

    vp4 = result.series_by_label("Baseline_VP_4_64").values
    eole4 = result.series_by_label("EOLE_4_64").values
    eole6 = result.series_by_label("EOLE_6_64").values

    # EOLE_4_64 recovers the narrow-issue loss wherever the VP baseline actually lost
    # performance (the paper's claim; per-benchmark noise is tolerated elsewhere).
    for name in eole4:
        if vp4[name] < 0.95:
            assert eole4[name] > vp4[name], name
    assert geometric_mean(eole4.values()) >= geometric_mean(vp4.values())
    # And stays within a few percent of the 6-issue VP baseline on average.
    assert geometric_mean(eole4.values()) > 0.95
    # Shrinking the baseline to 4-issue costs something somewhere.
    assert min(vp4.values()) < 0.97
    # EOLE on the unchanged 6-issue engine never hurts on average.
    assert geometric_mean(eole6.values()) > 0.97
