"""Shared configuration of the benchmark harness.

Each benchmark file regenerates one table or figure of the paper (see DESIGN.md §4) and
records the produced table under ``benchmarks/results/``.  Environment variables
control the cost/fidelity trade-off:

* ``REPRO_BENCH_WORKLOADS`` — ``subset`` (default, 8 representative workloads) or
  ``all`` (the full 19-benchmark suite, several times slower);
* ``REPRO_SIM_UOPS`` / ``REPRO_SIM_WARMUP`` — committed-µ-op budget per simulation
  (benchmark default: 8000 / 2500; the library's :mod:`repro.analysis.runner`
  defaults to 12000 / 3000 when these variables are unset);
* ``REPRO_RESULT_STORE`` — opt-in persistent result store (a JSON-lines file):
  when set, every simulation lands on disk and repeated benchmark sessions skip
  already-simulated cells entirely (see docs/campaign.md);
* ``REPRO_CAMPAIGN_WORKERS`` — shard each figure's grid across that many worker
  processes (default 1, serial).

Within one pytest session, simulation results are additionally cached in memory across
benchmark files (the configurations are shared between figures), so the first file
pays most of the cost.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.report import ExperimentResult, format_table
from repro.campaign.spec import BENCH_SUBSET
from repro.campaign.store import default_store
from repro.workloads.suite import all_workloads, workload

#: Representative subset: strong-VP, EE-friendly, IQ-hungry, offload-heavy, low-coverage
#: and memory-bound behaviours are all present (defined with the campaign's named sets).
SUBSET_NAMES = BENCH_SUBSET

RESULTS_DIR = Path(__file__).parent / "results"


def bench_max_uops() -> int:
    return int(os.environ.get("REPRO_SIM_UOPS", "8000"))


def bench_warmup_uops() -> int:
    return int(os.environ.get("REPRO_SIM_WARMUP", "2500"))


@pytest.fixture(scope="session")
def bench_workloads():
    """Workloads used by every benchmark (subset by default, full suite on request)."""
    if os.environ.get("REPRO_BENCH_WORKLOADS", "subset").lower() == "all":
        return all_workloads()
    return [workload(name) for name in SUBSET_NAMES]


@pytest.fixture(scope="session")
def bench_lengths():
    """(max_uops, warmup_uops) for every simulation run."""
    return bench_max_uops(), bench_warmup_uops()


@pytest.fixture(scope="session", autouse=True)
def figure_progress():
    """Per-figure progress/ETA lines for the long benchmark grids.

    Each figure submits its whole grid through :func:`repro.analysis.runner.run_grid`,
    which consults ``REPRO_PROGRESS``; enabling it here (opt-out: export
    ``REPRO_PROGRESS=0``) makes every grid print cells-done / elapsed / ETA lines to
    stderr, labelled with the figure's experiment id.
    """
    previous = os.environ.get("REPRO_PROGRESS")
    if previous is None:
        os.environ["REPRO_PROGRESS"] = "1"
    yield
    if previous is None:
        os.environ.pop("REPRO_PROGRESS", None)


@pytest.fixture(scope="session", autouse=True)
def persistent_result_store():
    """Report the opt-in persistent store (``REPRO_RESULT_STORE``) around the session.

    The experiment runner consults the store automatically on every simulation, so
    this fixture only has to surface what happened: how many cells were already on
    disk when the session started and how many it contributed.
    """
    store = default_store()
    if store is None:
        yield None
        return
    before = len(store)
    print(f"\n[repro] persistent result store: {store.path} ({before} cells on entry)")
    yield store
    print(
        f"\n[repro] persistent result store: {store.path} "
        f"({len(store)} cells on exit, +{len(store) - before} this session)"
    )


@pytest.fixture(scope="session", autouse=True)
def trace_cache_summary():
    """Report shared trace-cache effectiveness at the end of the benchmark session.

    Every figure grid replays workload traces from :data:`shared_trace_cache`; the
    capture/hit split shows how much architectural emulation the cache avoided
    (high hit counts are why repeated figures are cheap).
    """
    from repro.trace.cache import shared_trace_cache

    yield
    captures = shared_trace_cache.captures
    hits = shared_trace_cache.hits + shared_trace_cache.store_hits
    if captures or hits:
        print(
            f"\n[repro] shared trace cache: {captures} captures, {hits} hits "
            f"({shared_trace_cache.store_hits} from the persistent trace store)"
        )


def record_result(result: ExperimentResult) -> str:
    """Render, persist and return the table of an experiment result."""
    table = format_table(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.experiment_id}.txt"
    path.write_text(table + "\n")
    return table
