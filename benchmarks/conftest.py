"""Shared configuration of the benchmark harness.

Each benchmark file regenerates one table or figure of the paper (see DESIGN.md §4) and
records the produced table under ``benchmarks/results/``.  Two environment variables
control the cost/fidelity trade-off:

* ``REPRO_BENCH_WORKLOADS`` — ``subset`` (default, 8 representative workloads) or
  ``all`` (the full 19-benchmark suite, several times slower);
* ``REPRO_SIM_UOPS`` / ``REPRO_SIM_WARMUP`` — committed-µ-op budget per simulation
  (benchmark default: 5000 / 1500).

Simulation results are cached across benchmark files within one pytest session (the
configurations are shared between figures), so the first file pays most of the cost.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.report import ExperimentResult, format_table
from repro.workloads.suite import all_workloads, workload

#: Representative subset: strong-VP, EE-friendly, IQ-hungry, offload-heavy, low-coverage
#: and memory-bound behaviours are all present.
SUBSET_NAMES = ("wupwise", "applu", "bzip2", "crafty", "hmmer", "namd", "gcc", "milc")

RESULTS_DIR = Path(__file__).parent / "results"


def bench_max_uops() -> int:
    return int(os.environ.get("REPRO_SIM_UOPS", "8000"))


def bench_warmup_uops() -> int:
    return int(os.environ.get("REPRO_SIM_WARMUP", "2500"))


@pytest.fixture(scope="session")
def bench_workloads():
    """Workloads used by every benchmark (subset by default, full suite on request)."""
    if os.environ.get("REPRO_BENCH_WORKLOADS", "subset").lower() == "all":
        return all_workloads()
    return [workload(name) for name in SUBSET_NAMES]


@pytest.fixture(scope="session")
def bench_lengths():
    """(max_uops, warmup_uops) for every simulation run."""
    return bench_max_uops(), bench_warmup_uops()


def record_result(result: ExperimentResult) -> str:
    """Render, persist and return the table of an experiment result."""
    table = format_table(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.experiment_id}.txt"
    path.write_text(table + "\n")
    return table
