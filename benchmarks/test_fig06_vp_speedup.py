"""Figure 6: speedup brought by Value Prediction (VTAGE-2DStride) over Baseline_6_64."""

from benchmarks.conftest import record_result
from repro.analysis.experiments import fig6_vp_speedup


def test_fig06_vp_speedup(benchmark, bench_workloads, bench_lengths):
    max_uops, warmup = bench_lengths
    result = benchmark.pedantic(
        lambda: fig6_vp_speedup(bench_workloads, max_uops, warmup), rounds=1, iterations=1
    )
    print("\n" + record_result(result))

    speedups = result.series_by_label("VTAGE-2D-Str").values
    # Paper's shape: no slowdown, benefits concentrated on value-predictable codes.
    assert all(value > 0.93 for value in speedups.values())
    assert max(speedups.values()) > 1.15
    assert result.series[0].summary("geomean") > 1.0
