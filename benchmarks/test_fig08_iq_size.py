"""Figure 8: instruction-queue-size impact — EOLE_6_48 vs Baseline_VP_6_48."""

from benchmarks.conftest import record_result
from repro.analysis.experiments import fig8_iq_size
from repro.analysis.metrics import geometric_mean


def test_fig08_iq_size(benchmark, bench_workloads, bench_lengths):
    max_uops, warmup = bench_lengths
    result = benchmark.pedantic(
        lambda: fig8_iq_size(bench_workloads, max_uops, warmup), rounds=1, iterations=1
    )
    print("\n" + record_result(result))

    vp48 = result.series_by_label("Baseline_VP_6_48").values
    eole48 = result.series_by_label("EOLE_6_48").values
    eole64 = result.series_by_label("EOLE_6_64").values

    # EOLE mitigates the IQ shrink at least as well as the baseline tolerates it.
    assert geometric_mean(eole48.values()) >= geometric_mean(vp48.values()) - 0.02
    # With the full 64-entry IQ, EOLE performs on par with (or above) the VP baseline.
    assert geometric_mean(eole64.values()) > 0.97
    # Shrinking the IQ never substantially helps anyone (small noise from different
    # squash/warm-up alignment between runs is tolerated).
    for name in eole48:
        assert eole48[name] <= eole64[name] + 0.05
