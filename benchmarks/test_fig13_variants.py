"""Figure 13: modularity of EOLE — EOLE vs OLE (Late only) vs EOE (Early only)."""

from benchmarks.conftest import record_result
from repro.analysis.experiments import fig13_variants
from repro.analysis.metrics import geometric_mean


def test_fig13_variants(benchmark, bench_workloads, bench_lengths):
    max_uops, warmup = bench_lengths
    result = benchmark.pedantic(
        lambda: fig13_variants(bench_workloads, max_uops, warmup), rounds=1, iterations=1
    )
    print("\n" + record_result(result))

    eole = result.series_by_label("EOLE_4_64_4ports_4banks").values
    ole = result.series_by_label("OLE_4_64_4ports_4banks").values
    eoe = result.series_by_label("EOE_4_64_4ports_4banks").values

    # Paper: either block alone stays within ~5% of the 6-issue VP baseline, and the
    # full EOLE design is at least as good (on average) as either partial variant.
    assert geometric_mean(eole.values()) >= geometric_mean(ole.values()) - 0.02
    assert geometric_mean(eole.values()) >= geometric_mean(eoe.values()) - 0.02
    assert geometric_mean(ole.values()) > 0.9
    assert geometric_mean(eoe.values()) > 0.9
