#!/usr/bin/env python3
"""cProfile entry point for simulator hot-loop work (see docs/performance.md).

Profiles one (configuration × workload) simulation and prints the top functions.
The trace is pre-captured outside the profiled region by default, so the report
shows the timing-model cost alone; ``--include-capture`` folds the architectural
emulation back in (what a cold campaign cell pays).

Examples::

    PYTHONPATH=src python scripts/profile_sim.py
    PYTHONPATH=src python scripts/profile_sim.py --config Baseline_VP_6_64 \\
        --workload mcf --max-uops 20000 --sort cumulative --limit 40
    PYTHONPATH=src python scripts/profile_sim.py --mode step   # cycle-stepping loop
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.pipeline.config import NAMED_CONFIGS, named_config  # noqa: E402
from repro.pipeline.simulator import EVENT_DRIVEN_ENV_VAR, simulate  # noqa: E402
from repro.trace.cache import shared_trace_cache  # noqa: E402
from repro.workloads.suite import SUITE_ORDER, workload  # noqa: E402

#: Every pstats sort key (plus the classic abbreviations pstats also accepts), so
#: profiles can be sliced any way pstats supports.
SORT_KEYS = sorted(
    {key.value for key in pstats.SortKey} | {"tottime", "cumtime", "ncalls"}
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", default="EOLE_4_64", choices=sorted(NAMED_CONFIGS))
    parser.add_argument("--workload", default="gcc", choices=list(SUITE_ORDER))
    parser.add_argument("--max-uops", type=int, default=12000)
    parser.add_argument("--warmup-uops", type=int, default=3000)
    parser.add_argument(
        "--sort", default="tottime", choices=SORT_KEYS,
        help="pstats sort key (default: tottime)",
    )
    parser.add_argument("--limit", type=int, default=30, help="rows to print")
    parser.add_argument(
        "--mode", default="event", choices=["event", "step"],
        help="main-loop flavour: the event-wheel scheduler (default) or the "
        "cycle-stepping reference (REPRO_EVENT_DRIVEN=0)",
    )
    parser.add_argument(
        "--include-capture", action="store_true",
        help="profile the architectural trace capture too (cold-cell cost)",
    )
    parser.add_argument("--dump", default=None, help="write raw pstats to this file")
    args = parser.parse_args(argv)
    os.environ[EVENT_DRIVEN_ENV_VAR] = "0" if args.mode == "step" else "1"

    config = named_config(args.config)
    wl = workload(args.workload)
    if not args.include_capture:
        trace = shared_trace_cache.trace_for(wl, args.max_uops, config)
        trace.instructions()  # materialise outside the profiled region

    profiler = cProfile.Profile()
    profiler.enable()
    if args.include_capture:
        shared_trace_cache.clear()
        trace = shared_trace_cache.trace_for(wl, args.max_uops, config)
    result = simulate(
        config,
        wl.program,
        max_uops=args.max_uops,
        warmup_uops=args.warmup_uops,
        workload_name=wl.name,
        trace=trace,
    )
    profiler.disable()

    stats = pstats.Stats(profiler)
    if args.dump:
        stats.dump_stats(args.dump)
    stats.sort_stats(args.sort).print_stats(args.limit)
    print(result.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
