#!/usr/bin/env python3
"""cProfile entry point for simulator hot-loop work (see docs/performance.md).

Profiles one (configuration × workload) simulation and prints the top functions.
The trace is pre-captured outside the profiled region by default, so the report
shows the timing-model cost alone; ``--include-capture`` folds the architectural
emulation back in (what a cold campaign cell pays).

Examples::

    PYTHONPATH=src python scripts/profile_sim.py
    PYTHONPATH=src python scripts/profile_sim.py --config Baseline_VP_6_64 \\
        --workload mcf --max-uops 20000 --sort cumulative --limit 40
    PYTHONPATH=src python scripts/profile_sim.py --mode step   # cycle-stepping loop
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.ooo.inflight import SOA_BATCH_ENV_VAR, SOA_ENV_VAR  # noqa: E402
from repro.pipeline.config import NAMED_CONFIGS, named_config  # noqa: E402
from repro.pipeline.multi_replay import MultiSimulator, PlaneSpec  # noqa: E402
from repro.pipeline.simulator import EVENT_DRIVEN_ENV_VAR, Simulator, simulate  # noqa: E402
from repro.trace.cache import shared_trace_cache  # noqa: E402
from repro.workloads.suite import SUITE_ORDER, workload  # noqa: E402


class StageTimedSimulator(Simulator):
    """Per-stage cumulative wall-clock accounting (``--stage-times``).

    Wraps every pipeline-stage entry point with ``perf_counter`` bookkeeping.
    The wrappers add a few hundred nanoseconds per stage call, so the absolute
    run is slower than an uninstrumented one — the split between stages is what
    matters.  Commit-side predictor/BPU training (batched per commit group) is
    timed separately under ``train`` and subtracted from ``commit``.
    """

    STAGES = ("fetch", "dispatch", "issue", "commit", "train", "completions")

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.stage_seconds = dict.fromkeys(self.STAGES, 0.0)
        self.stage_calls = dict.fromkeys(self.STAGES, 0)
        self._train_seconds_in_commit = 0.0
        if self.predictor is not None:
            inner_vp = self.predictor.train_commit_group
            def timed_vp_train(group, _inner=inner_vp):
                started = time.perf_counter()
                _inner(group)
                self._train_seconds_in_commit += time.perf_counter() - started
                self.stage_calls["train"] += 1
            self.predictor.train_commit_group = timed_vp_train
            inner_vp_cols = self.predictor.train_commit_group_columns
            def timed_vp_train_cols(pcs, actuals, predictions, batch=False, _inner=inner_vp_cols):
                started = time.perf_counter()
                _inner(pcs, actuals, predictions, batch=batch)
                self._train_seconds_in_commit += time.perf_counter() - started
                self.stage_calls["train"] += 1
            self.predictor.train_commit_group_columns = timed_vp_train_cols
        inner_bpu = self.bpu.train_commit_group
        def timed_bpu_train(group, _inner=inner_bpu):
            started = time.perf_counter()
            _inner(group)
            self._train_seconds_in_commit += time.perf_counter() - started
            self.stage_calls["train"] += 1
        self.bpu.train_commit_group = timed_bpu_train
        inner_bpu_cols = self.bpu.train_commit_group_columns
        def timed_bpu_train_cols(pcs, outcomes, _inner=inner_bpu_cols):
            started = time.perf_counter()
            _inner(pcs, outcomes)
            self._train_seconds_in_commit += time.perf_counter() - started
            self.stage_calls["train"] += 1
        self.bpu.train_commit_group_columns = timed_bpu_train_cols

    def _timed(self, stage, inner):
        started = time.perf_counter()
        inner()
        self.stage_seconds[stage] += time.perf_counter() - started
        self.stage_calls[stage] += 1

    # The generic stage entry points delegate to the ``_soa`` variants under
    # REPRO_SOA=1 (which carry their own wrappers below) — time them only when
    # the object-backend body actually runs, so step mode never double-counts.
    def _fetch(self):
        if self._soa:
            super()._fetch()
            return
        self._timed("fetch", super()._fetch)

    def _dispatch(self):
        if self._soa:
            super()._dispatch()
            return
        self._timed("dispatch", super()._dispatch)

    def _issue(self):
        if self._soa and self._wakeup:
            super()._issue()
            return
        self._timed("issue", super()._issue)

    def _commit(self):
        if self._soa:
            super()._commit()
            return
        before_train = self._train_seconds_in_commit
        started = time.perf_counter()
        super()._commit()
        elapsed = time.perf_counter() - started
        train_delta = self._train_seconds_in_commit - before_train
        self.stage_seconds["commit"] += elapsed - train_delta
        self.stage_seconds["train"] += train_delta
        self.stage_calls["commit"] += 1

    def _process_completions(self):
        if self._soa:
            super()._process_completions()
            return
        self._timed("completions", super()._process_completions)

    # SoA variants: the SoA event loop binds these directly (bypassing the
    # generic stage entry points above), so they need their own wrappers for
    # the breakdown to stay truthful under REPRO_SOA=1.
    def _fetch_soa(self):
        self._timed("fetch", super()._fetch_soa)

    def _dispatch_soa(self):
        self._timed("dispatch", super()._dispatch_soa)

    def _issue_wakeup_soa(self):
        self._timed("issue", super()._issue_wakeup_soa)

    def _commit_soa(self):
        before_train = self._train_seconds_in_commit
        started = time.perf_counter()
        super()._commit_soa()
        elapsed = time.perf_counter() - started
        train_delta = self._train_seconds_in_commit - before_train
        self.stage_seconds["commit"] += elapsed - train_delta
        self.stage_seconds["train"] += train_delta
        self.stage_calls["commit"] += 1

    def _process_completions_soa(self):
        self._timed("completions", super()._process_completions_soa)

    def report(self) -> str:
        lines = ["per-stage cumulative wall clock (instrumented):"]
        total = sum(self.stage_seconds.values())
        for stage in self.STAGES:
            seconds = self.stage_seconds[stage]
            calls = self.stage_calls[stage]
            share = 100.0 * seconds / total if total else 0.0
            lines.append(
                f"  {stage:12s} {seconds:8.4f}s  {share:5.1f}%  ({calls} calls)"
            )
        lines.append(f"  {'total':12s} {total:8.4f}s")
        return "\n".join(lines)

    def report_dict(self) -> dict:
        """The ``report()`` breakdown as a machine-readable dict (``--format=json``)."""
        total = sum(self.stage_seconds.values())
        return {
            "stages": {
                stage: {
                    "seconds": self.stage_seconds[stage],
                    "calls": self.stage_calls[stage],
                    "share": self.stage_seconds[stage] / total if total else 0.0,
                }
                for stage in self.STAGES
            },
            "total_seconds": total,
        }

#: Every pstats sort key (plus the classic abbreviations pstats also accepts), so
#: profiles can be sliced any way pstats supports.
SORT_KEYS = sorted(
    {key.value for key in pstats.SortKey} | {"tottime", "cumtime", "ncalls"}
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", default="EOLE_4_64", choices=sorted(NAMED_CONFIGS))
    parser.add_argument(
        "--configs", default=None, metavar="A,B,C",
        help="comma-separated named configs profiled as ONE single-pass "
        "multi-replay (repro.pipeline.multi_replay) instead of --config",
    )
    parser.add_argument("--workload", default="gcc", choices=list(SUITE_ORDER))
    parser.add_argument("--max-uops", type=int, default=12000)
    parser.add_argument("--warmup-uops", type=int, default=3000)
    parser.add_argument(
        "--sort", default="tottime", choices=SORT_KEYS,
        help="pstats sort key (default: tottime)",
    )
    parser.add_argument("--limit", type=int, default=30, help="rows to print")
    parser.add_argument(
        "--mode", default="event", choices=["event", "step"],
        help="main-loop flavour: the event-wheel scheduler (default) or the "
        "cycle-stepping reference (REPRO_EVENT_DRIVEN=0)",
    )
    parser.add_argument(
        "--backend", default=None, choices=["soa", "object"],
        help="in-flight record backend: the columnar structure-of-arrays pool "
        "(REPRO_SOA=1) or the object-record pool (the default); omitting the "
        "flag keeps whatever the environment selects",
    )
    parser.add_argument(
        "--include-capture", action="store_true",
        help="profile the architectural trace capture too (cold-cell cost)",
    )
    parser.add_argument(
        "--stage-times", action="store_true",
        help="print a per-stage cumulative timing breakdown "
        "(fetch/dispatch/issue/commit/train) instead of a cProfile report",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="output format for --stage-times (json emits a machine-readable "
        "breakdown suitable for regression dashboards)",
    )
    parser.add_argument("--dump", default=None, help="write raw pstats to this file")
    args = parser.parse_args(argv)
    if args.format == "json" and not args.stage_times:
        parser.error("--format=json requires --stage-times")
    os.environ[EVENT_DRIVEN_ENV_VAR] = "0" if args.mode == "step" else "1"
    if args.backend is not None:
        os.environ[SOA_ENV_VAR] = "1" if args.backend == "soa" else "0"

    if args.configs:
        config_names = [name.strip() for name in args.configs.split(",") if name.strip()]
        unknown = sorted(set(config_names) - set(NAMED_CONFIGS))
        if unknown:
            parser.error(f"unknown --configs names: {', '.join(unknown)}")
        configs = [named_config(name) for name in config_names]
    else:
        config_names = [args.config]
        configs = [named_config(args.config)]
    wl = workload(args.workload)

    def acquire_trace():
        return shared_trace_cache.trace_for_many(
            wl, [(args.max_uops, config) for config in configs]
        )

    if not args.include_capture:
        trace = acquire_trace()
        trace.instructions()  # materialise outside the profiled region

    def run_multi(factory):
        multi = MultiSimulator(
            [PlaneSpec(config, args.max_uops, args.warmup_uops) for config in configs],
            wl.program,
            workload_name=wl.name,
            trace=trace,
            simulator_factory=factory,
        )
        return multi, multi.run()

    if args.stage_times:
        if args.include_capture:
            shared_trace_cache.clear()
            trace = acquire_trace()
        multi, results = run_multi(StageTimedSimulator)
        planes = multi.planes
        # One breakdown for the whole pass: per-stage seconds/calls summed over
        # the planes (a single-config run is just the 1-plane special case).
        stage_seconds = {
            stage: sum(plane.stage_seconds[stage] for plane in planes)
            for stage in StageTimedSimulator.STAGES
        }
        stage_calls = {
            stage: sum(plane.stage_calls[stage] for plane in planes)
            for stage in StageTimedSimulator.STAGES
        }
        total = sum(stage_seconds.values())
        if args.format == "json":
            payload = {
                "config": args.configs if args.configs else args.config,
                "configs": config_names,
                "workload": args.workload,
                "max_uops": args.max_uops,
                "warmup_uops": args.warmup_uops,
                "mode": args.mode,
                # The backend the run actually used (the simulator resolves the
                # env switches at construction; _soa_batch also folds in numpy
                # availability), so dashboards can split regressions by backend.
                "backend": "soa" if planes[0]._soa else "object",
                "soa_batch": bool(planes[0]._soa_batch),
                # Replay shape, same dashboard-attribution role as backend:
                # "multi" = one single-pass MultiSimulator over replay_width
                # config planes, "serial" = the classic one-config profile.
                "replay_mode": "multi" if args.configs else "serial",
                "replay_width": len(configs),
                "ipc": {
                    name: result.ipc for name, result in zip(config_names, results)
                }
                if args.configs
                else results[0].ipc,
                "stages": {
                    stage: {
                        "seconds": stage_seconds[stage],
                        "calls": stage_calls[stage],
                        "share": stage_seconds[stage] / total if total else 0.0,
                    }
                    for stage in StageTimedSimulator.STAGES
                },
                "total_seconds": total,
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            if args.configs:
                lines = [
                    f"per-stage cumulative wall clock across {len(planes)} "
                    "multi-replay planes (instrumented):"
                ]
                for stage in StageTimedSimulator.STAGES:
                    share = 100.0 * stage_seconds[stage] / total if total else 0.0
                    lines.append(
                        f"  {stage:12s} {stage_seconds[stage]:8.4f}s  {share:5.1f}%  "
                        f"({stage_calls[stage]} calls)"
                    )
                lines.append(f"  {'total':12s} {total:8.4f}s")
                print("\n".join(lines))
            else:
                print(planes[0].report())
            for result in results:
                print(result.summary())
        return 0

    profiler = cProfile.Profile()
    profiler.enable()
    if args.include_capture:
        shared_trace_cache.clear()
        trace = acquire_trace()
    if args.configs:
        _, results = run_multi(Simulator)
    else:
        results = [
            simulate(
                configs[0],
                wl.program,
                max_uops=args.max_uops,
                warmup_uops=args.warmup_uops,
                workload_name=wl.name,
                trace=trace,
            )
        ]
    profiler.disable()

    stats = pstats.Stats(profiler)
    if args.dump:
        stats.dump_stats(args.dump)
    stats.sort_stats(args.sort).print_stats(args.limit)
    for result in results:
        print(result.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
