"""Distributed-campaign smoke: two workers, one SIGKILL, byte-identical results.

The CI acceptance run for the leased-work-queue coordinator
(``docs/campaign.md``, *Distributed campaigns*): submit a 4-configuration ×
4-workload grid to a fresh service directory, run two ``repro-campaign work``
subprocesses against it, SIGKILL one mid-run, and verify that

* the surviving worker requeues the lapsed lease and completes the grid,
* no cell failed or went missing, and
* every stored result is byte-identical (as sorted JSON) to a serial
  ``run_campaign`` of the same grid in this process.

Exit code 0 on success, 1 on any violation.  Usage::

    PYTHONPATH=src python scripts/distributed_smoke.py [--max-uops 8000]
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign.coordinator import CampaignService  # noqa: E402
from repro.campaign.executor import run_campaign  # noqa: E402
from repro.campaign.spec import Campaign  # noqa: E402

CONFIGS = ("Baseline_6_64", "Baseline_VP_6_64", "EOLE_4_64", "EOLE_6_64")
WORKLOADS = "gcc,mcf,milc,namd"


def spawn_worker(service_dir: Path, worker_id: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.campaign",
            "work",
            "--service",
            str(service_dir),
            "--worker-id",
            worker_id,
            "--poll-seconds",
            "0.05",
        ],
        env={"PYTHONPATH": str(REPO_ROOT / "src")},
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-uops", type=int, default=8000)
    parser.add_argument("--warmup-uops", type=int, default=2000)
    parser.add_argument(
        "--timeout-seconds", type=float, default=600.0, help="overall completion budget"
    )
    parser.add_argument(
        "--service-dir",
        default=None,
        help="use (and leave behind) this service directory instead of a "
        "self-cleaning temp dir — lets CI run `repro-campaign fsck` on the "
        "directory the fleet actually produced",
    )
    args = parser.parse_args()

    campaign = Campaign.from_names(
        CONFIGS,
        WORKLOADS,
        max_uops=args.max_uops,
        warmup_uops=args.warmup_uops,
        name="distributed-smoke",
    )
    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as scratch:
        service = CampaignService(
            Path(args.service_dir) if args.service_dir else Path(scratch) / "svc"
        )
        # lease_width=1 → 16 single-cell leases, so the SIGKILL lands mid-grid
        # and the survivor demonstrably takes over the victim's leases.
        leases = service.submit(
            campaign, lease_seconds=3.0, max_attempts=4, lease_width=1
        )
        print(f"submitted {leases} leases for {len(campaign.cells())} cells")

        victim = spawn_worker(service.root, "victim")
        survivor = spawn_worker(service.root, "survivor")
        store = service.result_store()
        try:
            deadline = time.time() + args.timeout_seconds
            while time.time() < deadline:
                store.reload()
                if len(store) >= 2:
                    break
                time.sleep(0.01)
            else:
                print("FAIL: workers made no progress", file=sys.stderr)
                return 1
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            print(f"SIGKILLed the victim worker with {len(store)} cells stored")

            while time.time() < deadline and not service.queue_complete():
                time.sleep(0.2)
            if not service.queue_complete():
                print("FAIL: queue incomplete within the budget", file=sys.stderr)
                return 1
            survivor.wait(timeout=60)
        finally:
            for proc in (victim, survivor):
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)

        status = service.status()
        print(f"fleet finished: {json.dumps(status['lease_states'])}")
        store.reload()
        if store.failures():
            print(f"FAIL: {len(store.failures())} failure rows", file=sys.stderr)
            return 1

        owners = {
            store.get_record(cell.fingerprint)["telemetry"]["worker"]
            for cell in campaign.cells()
            if store.get_record(cell.fingerprint)
        }
        if "survivor" not in owners:
            print("FAIL: the survivor processed nothing", file=sys.stderr)
            return 1

        print("running the serial reference grid in-process…")
        serial = run_campaign(campaign, store=None, workers=1)
        mismatches = 0
        for cell in campaign.cells():
            record = store.get_record(cell.fingerprint)
            if record is None:
                print(f"FAIL: missing {cell.describe()}", file=sys.stderr)
                mismatches += 1
                continue
            expected = serial.results[(cell.config.name, cell.workload_name)]
            if json.dumps(record["result"], sort_keys=True) != json.dumps(
                expected.to_dict(), sort_keys=True
            ):
                print(f"FAIL: result diverges for {cell.describe()}", file=sys.stderr)
                mismatches += 1
        if mismatches:
            return 1
        print(
            f"OK: {len(campaign.cells())} cells byte-identical to the serial run "
            f"(workers seen: {sorted(owners)})"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
