"""Chaos smoke: a worker fleet under injected faults still lands exact results.

The CI acceptance run for the fault-injection layer (``docs/robustness.md``):
submit the standard 4-configuration × 4-workload grid to a fresh service
directory and run three workers against it, two of them armed with
``REPRO_FAULTS``:

* **victim** — a trace-store crash between ``mkstemp`` and rename (leaves a
  ``.tmp`` orphan), then ``os._exit`` right after its first cell lands in the
  shared store (a SIGKILL-faithful death: no cleanup, no more heartbeats, lease
  left ``running`` until it lapses).
* **flaky** — a torn store append (half a JSONL row, then the "crash"), a
  silently corrupted store append (row written with mangled bytes, worker
  believes it succeeded), a corrupted trace blob on disk, and three dropped
  heartbeats.
* **clean** — no faults; guarantees the queue drains.

The script then asserts the full crash-recovery story:

1. the queue completes within the budget (takeover + bounded retries absorb
   every injected failure),
2. ``fsck`` *finds* the residue (quarantined rows, the tmp orphan, …),
3. ``fsck --repair`` plus one faults-off in-process resume pass restores a
   complete store (the resume re-simulates exactly the cells the silent
   corruption ate),
4. a final ``fsck`` is clean, and
5. every cell is byte-identical (as sorted JSON) to a serial ``run_campaign``
   of the same grid with no faults — fault injection perturbs durability
   plumbing and liveness only, never simulation results.

Exit code 0 on success, 1 on any violation.  Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py [--max-uops 8000]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign.coordinator import CampaignService  # noqa: E402
from repro.campaign.executor import run_campaign  # noqa: E402
from repro.campaign.fsck import fsck_service, render_table  # noqa: E402
from repro.campaign.spec import Campaign  # noqa: E402
from repro.faults import DIE_EXIT_CODE, FAULTS_ENV_VAR  # noqa: E402
from repro.trace.store import TRACE_STORE_ENV_VAR  # noqa: E402

CONFIGS = ("Baseline_6_64", "Baseline_VP_6_64", "EOLE_4_64", "EOLE_6_64")
WORKLOADS = "gcc,mcf,milc,namd"

#: Per-worker fault schedules (deterministic: seeded, hit-counted per process).
FAULT_SPECS = {
    "victim": (
        "seed=1;trace.save.crash:at=1;worker.die.mid_lease:at=1"
    ),
    "flaky": (
        "seed=2;store.append.corrupt:at=1;store.append.torn:at=2;"
        "trace.save.corrupt:at=1;coord.heartbeat.drop:every=3:n=3"
    ),
    "clean": None,
}


def spawn_worker(service_dir: Path, worker_id: str) -> subprocess.Popen:
    env = {"PYTHONPATH": str(REPO_ROOT / "src")}
    spec = FAULT_SPECS.get(worker_id)
    if spec:
        env[FAULTS_ENV_VAR] = spec
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.campaign",
            "work",
            "--service",
            str(service_dir),
            "--worker-id",
            worker_id,
            "--poll-seconds",
            "0.05",
        ],
        env=env,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-uops", type=int, default=8000)
    parser.add_argument("--warmup-uops", type=int, default=2000)
    parser.add_argument(
        "--timeout-seconds", type=float, default=600.0, help="overall completion budget"
    )
    args = parser.parse_args()

    # The smoke process itself must be faults-off: the repair/resume pass and the
    # serial reference grid below both run in this process.
    os.environ.pop(FAULTS_ENV_VAR, None)

    campaign = Campaign.from_names(
        CONFIGS,
        WORKLOADS,
        max_uops=args.max_uops,
        warmup_uops=args.warmup_uops,
        name="chaos-smoke",
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        service = CampaignService(Path(scratch) / "svc")
        # Short leases so the victim's orphaned lease lapses quickly; a generous
        # attempt budget absorbs the flaky worker's injected failures.
        leases = service.submit(
            campaign, lease_seconds=2.0, max_attempts=6, lease_width=1
        )
        print(f"submitted {leases} leases for {len(campaign.cells())} cells")

        workers = {name: spawn_worker(service.root, name) for name in FAULT_SPECS}
        try:
            deadline = time.time() + args.timeout_seconds
            while time.time() < deadline and not service.queue_complete():
                time.sleep(0.2)
            if not service.queue_complete():
                print("FAIL: queue incomplete within the budget", file=sys.stderr)
                return 1
        finally:
            for name, proc in workers.items():
                if proc.poll() is None:
                    try:
                        proc.wait(timeout=60)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait(timeout=30)
                print(f"worker {name}: exit code {proc.returncode}")

        if workers["victim"].returncode != DIE_EXIT_CODE:
            print(
                f"FAIL: victim exited {workers['victim'].returncode}, expected the "
                f"injected death ({DIE_EXIT_CODE})",
                file=sys.stderr,
            )
            return 1

        status = service.status()
        print(f"fleet finished: {json.dumps(status['lease_states'])}")

        # 1) fsck must SEE the injected residue before any repair.
        audit = fsck_service(service.root, repair=False, tmp_age=0.0)
        print(render_table(audit))
        if not audit.unresolved:
            print(
                "FAIL: fsck found no residue — the fault schedule injected "
                "nothing observable",
                file=sys.stderr,
            )
            return 1

        # 2) Repair, then one faults-off resume pass over the shared store: the
        # silently-corrupted rows were quarantined, so their cells are missing
        # and get re-simulated (deterministically) right here.
        repaired = fsck_service(service.root, repair=True, tmp_age=0.0)
        print(render_table(repaired))
        os.environ[TRACE_STORE_ENV_VAR] = str(service.trace_dir)
        try:
            run_campaign(
                campaign, store=service.result_store(), workers=1, progress=False
            )
        finally:
            os.environ.pop(TRACE_STORE_ENV_VAR, None)

        # 3) After repair + resume the directory must audit clean.
        final = fsck_service(service.root, repair=False, tmp_age=0.0)
        if not final.clean:
            print(render_table(final), file=sys.stderr)
            print("FAIL: service directory still dirty after repair", file=sys.stderr)
            return 1

        store = service.result_store()
        if store.failures():
            print(f"FAIL: {len(store.failures())} failure rows", file=sys.stderr)
            return 1

        # 4) Byte-identity against a faults-off serial run of the same grid.
        print("running the serial reference grid in-process…")
        serial = run_campaign(campaign, store=None, workers=1)
        mismatches = 0
        for cell in campaign.cells():
            record = store.get_record(cell.fingerprint)
            if record is None:
                print(f"FAIL: missing {cell.describe()}", file=sys.stderr)
                mismatches += 1
                continue
            expected = serial.results[(cell.config.name, cell.workload_name)]
            if json.dumps(record["result"], sort_keys=True) != json.dumps(
                expected.to_dict(), sort_keys=True
            ):
                print(f"FAIL: result diverges for {cell.describe()}", file=sys.stderr)
                mismatches += 1
        if mismatches:
            return 1
        print(
            f"OK: {len(campaign.cells())} cells byte-identical to the serial run "
            f"under injected faults ({len(audit.findings)} fsck findings repaired)"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
