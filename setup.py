"""Setuptools entry point.

``pip install -e .`` makes the ``repro`` package importable without ``PYTHONPATH=src``
and installs the ``repro-campaign`` and ``repro-obs`` console scripts (the same CLIs
as ``python -m repro.campaign`` / ``python -m repro.obs``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-eole",
    version="0.1.0",
    description=(
        "Reproduction of 'EOLE: Paving the Way for an Effective Implementation of "
        "Value Prediction' (Perais & Seznec, ISCA 2014)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-campaign = repro.campaign.cli:main",
            "repro-obs = repro.obs.cli:main",
        ]
    },
)
