#!/usr/bin/env python3
"""Compare value-predictor families at the trace level (coverage / accuracy / storage).

Evaluates Last-Value, Stride, 2-Delta Stride, FCM, VTAGE and the paper's VTAGE-2DStride
hybrid on a few contrasting workloads, using the offline evaluation harness (no pipeline
timing involved).  This mirrors the predictor discussion of Section 2 and Table 2.

Each workload is emulated once: all six predictors replay the same captured trace from
the shared trace cache, and with ``REPRO_TRACE_STORE`` set repeated comparison sessions
skip emulation entirely (docs/performance.md).

Usage::

    python examples/predictor_comparison.py [workload ...]
"""

from __future__ import annotations

import sys

from repro.analysis.predictor_eval import evaluate_predictor
from repro.vp import (
    FCMPredictor,
    LastValuePredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
    VTAGEPredictor,
    default_paper_predictor,
)
from repro.vp.confidence import SCALED_FPC_VECTOR
from repro.workloads import workload

DEFAULT_WORKLOADS = ("bzip2", "wupwise", "hmmer", "milc")


def make_predictors():
    """Fresh predictor instances (scaled FPC vector, suited to short traces)."""
    return {
        "LVP": LastValuePredictor(fpc_vector=SCALED_FPC_VECTOR),
        "Stride": StridePredictor(fpc_vector=SCALED_FPC_VECTOR),
        "2D-Stride": TwoDeltaStridePredictor(fpc_vector=SCALED_FPC_VECTOR),
        "FCM": FCMPredictor(fpc_vector=SCALED_FPC_VECTOR),
        "VTAGE": VTAGEPredictor(fpc_vector=SCALED_FPC_VECTOR),
        "VTAGE-2DStride": default_paper_predictor(fpc_vector=SCALED_FPC_VECTOR),
    }


def main() -> None:
    names = sys.argv[1:] if len(sys.argv) > 1 else list(DEFAULT_WORKLOADS)
    max_uops = 15_000
    header = f"{'workload':>10s} {'predictor':>16s} {'coverage':>9s} {'accuracy':>9s} {'size KB':>8s}"
    print(header)
    print("-" * len(header))
    for name in names:
        selected = workload(name)
        for label, predictor in make_predictors().items():
            evaluation = evaluate_predictor(predictor, selected, max_uops=max_uops)
            print(
                f"{name:>10s} {label:>16s} {evaluation.coverage:9.1%} "
                f"{evaluation.accuracy:9.3%} {evaluation.storage_kilobytes:8.1f}"
            )
        print("-" * len(header))
    print(
        "\nCoverage = fraction of eligible µ-ops predicted with saturated FPC confidence;\n"
        "accuracy = fraction of those that were correct (what keeps squashes affordable)."
    )


if __name__ == "__main__":
    main()
