#!/usr/bin/env python3
"""Quickstart: simulate one workload on the paper's three headline machines.

Runs the ``namd`` analogue (wide ILP, highly value-predictable — the paper's best case
for EOLE) on:

* ``Baseline_6_64``        — the 6-issue superscalar of Table 1, no value prediction;
* ``Baseline_VP_6_64``     — the same machine plus the VTAGE-2DStride value predictor;
* ``EOLE_4_64``            — Early/Late Execution with the OoO issue width reduced to 4.

Usage::

    python examples/quickstart.py [workload] [max_uops]
"""

from __future__ import annotations

import sys

from repro.analysis.runner import run_workload
from repro.pipeline import baseline_6_64, baseline_vp_6_64, eole_4_64
from repro.workloads import workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "namd"
    max_uops = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000
    warmup = max_uops // 3
    selected = workload(name)

    print(f"workload: {name}  (stand-in for {selected.paper_benchmark})")
    print(f"simulating {max_uops} µ-ops ({warmup} warm-up) per configuration\n")

    # run_workload routes through the campaign engine: the three configurations
    # replay one captured trace, results land in the in-process cache, and with
    # REPRO_RESULT_STORE set they persist across sessions (docs/campaign.md).
    results = {}
    for config in (baseline_6_64(), baseline_vp_6_64(), eole_4_64()):
        result = run_workload(config, selected, max_uops, warmup)
        results[config.name] = result
        print(result.summary())

    base = results["Baseline_6_64"]
    vp = results["Baseline_VP_6_64"]
    eole = results["EOLE_4_64"]
    print()
    print(f"value prediction speedup (VP_6_64 / 6_64):        {vp.ipc / base.ipc:5.3f}")
    print(f"EOLE_4_64 relative to Baseline_VP_6_64:           {eole.ipc / vp.ipc:5.3f}")
    print(f"µ-ops bypassing the OoO engine under EOLE:        {eole.stats.offload_ratio:5.1%}")
    print(f"  - early-executed (front-end, next to Rename):   {eole.stats.early_executed_ratio:5.1%}")
    print(f"  - late-executed/resolved (pre-commit LE/VT):    {eole.stats.late_executed_ratio:5.1%}")
    print(f"value predictor coverage / accuracy:              "
          f"{vp.predictor_coverage:5.1%} / {vp.predictor_accuracy:7.4%}")


if __name__ == "__main__":
    main()
