#!/usr/bin/env python3
"""Explore the EOLE hardware design space on one workload.

Sweeps the knobs discussed in Section 6 of the paper:

* EOLE vs OLE (Late Execution only) vs EOE (Early Execution only) — Fig. 13;
* PRF banking (1/2/4/8 banks) — Fig. 10;
* LE/VT read ports per bank (2/3/4/unlimited) — Fig. 11;

all on a 4-issue OoO engine, reported relative to Baseline_VP_6_64.

Usage::

    python examples/eole_design_space.py [workload]
"""

from __future__ import annotations

import sys

from repro.analysis.runner import run_workload
from repro.pipeline import (
    baseline_vp_6_64,
    eoe_4_64,
    eole_4_64,
    eole_4_64_banked,
    ole_4_64,
)
from repro.workloads import workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "namd"
    selected = workload(name)
    max_uops, warmup = 10_000, 3_000

    # Routed through the campaign engine: all ten configurations replay one captured
    # trace, and with REPRO_RESULT_STORE set the sweep persists/resumes across runs.
    baseline = run_workload(baseline_vp_6_64(), selected, max_uops, warmup)
    print(f"workload {name}: Baseline_VP_6_64 IPC = {baseline.ipc:.3f}\n")

    configurations = [
        ("EOLE_4_64 (ideal PRF)", eole_4_64()),
        ("OLE_4_64 (Late Execution only)", ole_4_64()),
        ("EOE_4_64 (Early Execution only)", eoe_4_64()),
        ("EOLE_4_64, 2 banks", eole_4_64_banked(banks=2, levt_ports_per_bank=None)),
        ("EOLE_4_64, 4 banks", eole_4_64_banked(banks=4, levt_ports_per_bank=None)),
        ("EOLE_4_64, 8 banks", eole_4_64_banked(banks=8, levt_ports_per_bank=None)),
        ("EOLE_4_64, 4 banks, 2 LE/VT ports", eole_4_64_banked(banks=4, levt_ports_per_bank=2)),
        ("EOLE_4_64, 4 banks, 3 LE/VT ports", eole_4_64_banked(banks=4, levt_ports_per_bank=3)),
        ("EOLE_4_64, 4 banks, 4 LE/VT ports", eole_4_64_banked(banks=4, levt_ports_per_bank=4)),
    ]

    print(f"{'configuration':<40s} {'IPC':>6s} {'vs VP_6_64':>11s} {'offload':>8s} {'LE/VT stalls':>13s}")
    print("-" * 82)
    for label, config in configurations:
        result = run_workload(config, selected, max_uops, warmup)
        print(
            f"{label:<40s} {result.ipc:6.3f} {result.ipc / baseline.ipc:11.3f} "
            f"{result.stats.offload_ratio:8.1%} {result.stats.levt_port_stalls:13d}"
        )
    print(
        "\nThe paper's recommended point — 4 banks with 4 LE/VT read ports per bank — keeps\n"
        "the PRF port count of a 6-issue baseline without VP while staying within a few\n"
        "percent of the unconstrained EOLE_4_64 (Sections 6.3-6.4)."
    )


if __name__ == "__main__":
    main()
