#!/usr/bin/env python3
"""Issue-width study (the Figure 7 experiment) on a chosen set of workloads.

Shows the paper's central result: with EOLE, the out-of-order issue width can shrink
from 6 to 4 without giving up the performance of the 6-issue value-predicting baseline,
whereas shrinking the baseline itself is costly on ILP-rich workloads.

Usage::

    python examples/issue_width_study.py [workload ...]
"""

from __future__ import annotations

import sys

from repro.analysis.experiments import fig7_issue_width
from repro.analysis.report import format_table
from repro.analysis.runner import ResultCache
from repro.workloads import fast_workloads, workload


def main() -> None:
    if len(sys.argv) > 1:
        selected = [workload(name) for name in sys.argv[1:]]
    else:
        selected = fast_workloads()
    print("workloads:", ", ".join(wl.name for wl in selected))
    print("regenerating Figure 7 (this simulates 4 machine configurations)...\n")
    result = fig7_issue_width(selected, max_uops=10_000, warmup_uops=3_000, cache=ResultCache())
    print(format_table(result))
    print()
    eole4 = result.series_by_label("EOLE_4_64")
    vp4 = result.series_by_label("Baseline_VP_4_64")
    print(
        "geomean: EOLE_4_64 = {:.3f} of Baseline_VP_6_64, "
        "Baseline_VP_4_64 = {:.3f}".format(eole4.summary(), vp4.summary())
    )
    print("EOLE recovers the narrow-issue loss on every workload where VP_4_64 falls behind.")


if __name__ == "__main__":
    main()
