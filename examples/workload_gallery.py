#!/usr/bin/env python3
"""Inspect the synthetic SPEC-analogue workload suite (the Table 3 substitution).

For each workload, prints the paper benchmark it stands in for, its dynamic instruction
mix, and the micro-architectural character the knobs were tuned for.  Useful to
understand what the reproduction actually runs instead of SPEC.

Usage::

    python examples/workload_gallery.py [max_uops_per_workload]
"""

from __future__ import annotations

import sys
from itertools import islice

from repro.isa import characterize
from repro.isa.opcode import OpClass
from repro.trace import shared_trace_cache
from repro.workloads import all_workloads


def main() -> None:
    max_uops = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    header = (
        f"{'workload':>9s} {'paper benchmark':>16s} {'cat':>4s} {'branches':>9s} "
        f"{'memory':>7s} {'FP':>6s} {'VP-eligible':>12s}  description"
    )
    print(header)
    print("-" * (len(header) + 20))
    for wl in all_workloads():
        # Traces come from the shared cache, so a later simulation study in the same
        # process (or session, with REPRO_TRACE_STORE) reuses these captures.
        trace = shared_trace_cache.trace_for_length(wl, max_uops)
        stats = characterize(islice(trace.replay(), max_uops))
        fp_ratio = (
            stats.class_ratio(OpClass.FP_ALU)
            + stats.class_ratio(OpClass.FP_MUL)
            + stats.class_ratio(OpClass.FP_DIV)
        )
        print(
            f"{wl.name:>9s} {wl.paper_benchmark:>16s} {wl.spec.category:>4s} "
            f"{stats.branch_ratio:9.1%} {stats.memory_ratio:7.1%} {fp_ratio:6.1%} "
            f"{stats.vp_eligible_ratio:12.1%}  {wl.spec.description}"
        )


if __name__ == "__main__":
    main()
