"""Workload-batched sharding: same-workload cells stay on one worker."""

from repro.campaign.executor import _workload_batches
from repro.campaign.spec import Campaign
from repro.pipeline.config import named_config


def _cells(config_names, workload_names, max_uops=1000):
    campaign = Campaign(
        name="t",
        configs=tuple(named_config(name) for name in config_names),
        workload_names=tuple(workload_names),
        max_uops=max_uops,
        warmup_uops=0,
    )
    return campaign.cells()


class TestWorkloadBatches:
    def test_groups_by_workload_when_workers_are_scarce(self):
        cells = _cells(["Baseline_6_64", "EOLE_4_64"], ["gcc", "mcf", "hmmer"])
        batches = _workload_batches(cells, workers=3)
        assert len(batches) == 3
        for batch in batches:
            assert len({cell.workload_name for cell in batch}) == 1
            assert len(batch) == 2

    def test_every_cell_appears_exactly_once(self):
        cells = _cells(["Baseline_6_64", "EOLE_4_64"], ["gcc", "mcf"])
        batches = _workload_batches(cells, workers=8)
        flattened = [cell.fingerprint for batch in batches for cell in batch]
        assert sorted(flattened) == sorted(cell.fingerprint for cell in cells)

    def test_large_groups_split_to_fill_idle_workers(self):
        cells = _cells(
            ["Baseline_6_64", "Baseline_VP_6_64", "EOLE_4_64", "EOLE_6_64"], ["gcc"]
        )
        batches = _workload_batches(cells, workers=4)
        assert len(batches) >= 2  # one 4-cell workload split across workers
        assert sum(len(batch) for batch in batches) == 4

    def test_single_cell_batches_cannot_split_further(self):
        cells = _cells(["Baseline_6_64"], ["gcc", "mcf"])
        batches = _workload_batches(cells, workers=16)
        assert len(batches) == 2
        assert all(len(batch) == 1 for batch in batches)
