"""Tests for the service-directory integrity audit (``repro-campaign fsck``)."""

import json
import os
import time

from repro.campaign.cli import main as campaign_cli
from repro.campaign.coordinator import CampaignService
from repro.campaign.executor import simulate_cell
from repro.campaign.fsck import fsck_service, fsck_store, render_table
from repro.campaign.spec import Campaign
from repro.campaign.store import ResultStore

UOPS, WARMUP = 400, 100


def _campaign(workloads="gcc,mcf"):
    return Campaign.from_names(
        ("Baseline_6_64", "EOLE_4_64"),
        workloads,
        max_uops=UOPS,
        warmup_uops=WARMUP,
        name="fsck-test",
    )


def _service(tmp_path, campaign=None, **submit_kw) -> CampaignService:
    service = CampaignService(tmp_path / "svc")
    service.submit(campaign or _campaign(), **submit_kw)
    return service


def _complete(service: CampaignService) -> None:
    """Drive every lease to done, landing real rows in the shared store."""
    store = service.result_store()
    cells = service.cells_by_fingerprint()
    with_owner = "fsck-driver"
    while True:
        lease = service.claim(with_owner)
        if lease is None:
            break
        for fingerprint in lease.fingerprints:
            cell = cells[fingerprint]
            if fingerprint not in store:
                store.put(cell, simulate_cell(cell))
        service.complete(lease, with_owner)


class TestCleanDirectory:
    def test_completed_service_audits_clean(self, tmp_path):
        service = _service(tmp_path)
        _complete(service)
        report = fsck_service(service.root)
        assert report.clean
        # Lock sidecars are advisory findings, never failures.
        assert all(f.advisory for f in report.findings)

    def test_missing_directory_is_a_target_error(self, tmp_path):
        report = fsck_service(tmp_path / "nope")
        assert not report.clean
        assert report.findings[0].check == "target"


class TestStoreAudit:
    def test_quarantined_rows_are_reported_and_repaired(self, tmp_path):
        service = _service(tmp_path)
        _complete(service)
        with service.store_path.open("a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "torn-in-hal')
        dirty = fsck_service(service.root)
        assert any(f.check == "store-row" for f in dirty.unresolved)
        repaired = fsck_service(service.root, repair=True)
        assert repaired.clean
        assert ResultStore(service.store_path).skipped_lines == 0
        assert fsck_service(service.root).clean

    def test_bare_store_audit(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text('{"not json\n')
        report = fsck_store(path)
        assert not report.clean
        fsck_store(path, repair=True)
        assert fsck_store(path).clean


class TestTraceAudit:
    def test_corrupt_blob_is_quarantine_renamed(self, tmp_path):
        service = _service(tmp_path)
        _complete(service)
        # Forge a structurally broken trace blob among the real ones.
        bad = service.trace_dir / ("ff" * 16 + ".trace")
        bad.write_bytes(b"not a trace at all")
        dirty = fsck_service(service.root)
        assert any(f.check == "trace-blob" for f in dirty.unresolved)
        repaired = fsck_service(service.root, repair=True)
        assert repaired.clean
        assert not bad.exists()
        assert bad.with_suffix(".trace.corrupt").exists()


class TestTmpOrphans:
    def test_old_orphans_are_swept_young_ones_left(self, tmp_path):
        service = _service(tmp_path)
        _complete(service)
        old = service.trace_dir / ".deadbeef-stage.tmp"
        old.write_bytes(b"half a blob")
        stale = time.time() - 3600
        os.utime(old, (stale, stale))
        young = service.root / ".results.jsonl-stage.tmp"
        young.write_text("mid-write")
        report = fsck_service(service.root, repair=True, tmp_age=60.0)
        assert report.clean
        assert not old.exists()
        assert young.exists()  # a live writer's file: not fsck's to delete


class TestLeaseAudit:
    def test_corrupt_lease_is_quarantined_and_cells_recovered(self, tmp_path):
        service = _service(tmp_path, lease_width=1)
        lease_path = sorted(service.queue_dir.glob("*.json"))[0]
        doomed = json.loads(lease_path.read_text())
        lease_path.write_text('{"lease_id": "gcc-0", "work')
        dirty = fsck_service(service.root)
        checks = {f.check for f in dirty.unresolved}
        assert "lease-corrupt" in checks
        assert "lease-coverage" in checks
        repaired = fsck_service(service.root, repair=True)
        assert repaired.clean
        # The corrupt record was preserved for forensics and its cells re-leased.
        assert lease_path.with_suffix(".json.corrupt").exists()
        recovered = [
            lease
            for lease in service.leases()
            if set(lease.fingerprints) == set(doomed["fingerprints"])
        ]
        assert recovered and recovered[0].state == "pending"
        assert recovered[0].lease_id.endswith("-fsck0")

    def test_wedged_running_lease_is_requeued_without_attempt_charge(self, tmp_path):
        service = _service(tmp_path, lease_seconds=5.0)
        lease = service.claim("dead-worker")
        # Rewind the deadline far past the grace window: the owner is long gone.
        with service._queue_locked():
            current = service._read_lease(lease.lease_id)
            current.deadline_unix = time.time() - 60.0
            service._write_lease(current)
        dirty = fsck_service(service.root)
        assert any(f.check == "lease-lapsed" for f in dirty.unresolved)
        fsck_service(service.root, repair=True)
        requeued = service._read_lease(lease.lease_id)
        assert requeued.state == "pending"
        assert requeued.owner is None
        assert requeued.attempts == lease.attempts  # no extra charge: claim bills

    def test_recently_lapsed_lease_is_not_a_finding(self, tmp_path):
        service = _service(tmp_path, lease_seconds=30.0)
        lease = service.claim("slow-worker")
        with service._queue_locked():
            current = service._read_lease(lease.lease_id)
            current.deadline_unix = time.time() - 1.0  # inside the grace window
            service._write_lease(current)
        report = fsck_service(service.root)
        assert not any(f.check == "lease-lapsed" for f in report.findings)


class TestCli:
    def test_cli_exit_codes_and_json(self, tmp_path, capsys):
        service = _service(tmp_path)
        _complete(service)
        assert campaign_cli(["fsck", "--service", str(service.root)]) == 0
        with service.store_path.open("a", encoding="utf-8") as handle:
            handle.write("GARBAGE\n")
        assert campaign_cli(["fsck", "--service", str(service.root)]) == 1
        capsys.readouterr()  # drop the human tables from the first two runs
        assert (
            campaign_cli(
                ["fsck", "--service", str(service.root), "--repair", "--format", "json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert campaign_cli(["fsck", "--service", str(tmp_path / "missing")]) == 2

    def test_render_table_mentions_every_finding(self, tmp_path):
        service = _service(tmp_path)
        _complete(service)
        with service.store_path.open("a", encoding="utf-8") as handle:
            handle.write("GARBAGE\n")
        report = fsck_service(service.root)
        table = render_table(report)
        assert "store-row" in table
        assert "unresolved" in table
