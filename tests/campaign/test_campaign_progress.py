"""Tests for progress/ETA reporting."""

import io

from repro.campaign.progress import ProgressReporter, format_duration
from repro.campaign.spec import CampaignCell
from repro.pipeline.config import baseline_6_64


class TestFormatDuration:
    def test_seconds_minutes_hours(self):
        assert format_duration(3.21) == "3.2s"
        assert format_duration(252) == "4m12s"
        assert format_duration(3780) == "1h03m"
        assert format_duration(-1) == "0.0s"


class TestProgressReporter:
    def _cell(self):
        return CampaignCell(baseline_6_64(), "mcf", 1000, 0)

    def test_counts_simulated_vs_reused(self):
        reporter = ProgressReporter(total=3, enabled=False)
        reporter.cell_done(self._cell(), 2.0, reused=False)
        reporter.cell_done(self._cell(), 0.0, reused=True)
        assert reporter.done == 2
        assert reporter.simulated == 1
        assert reporter.reused == 1

    def test_eta_extrapolates_from_simulated_cells_only(self):
        reporter = ProgressReporter(total=4, enabled=False)
        reporter.cell_done(self._cell(), 2.0, reused=False)
        reporter.cell_done(self._cell(), 0.0, reused=True)
        assert reporter.eta == 4.0  # 2 remaining × 2.0s mean simulated cost

    def test_eta_divides_across_workers(self):
        reporter = ProgressReporter(total=9, enabled=False, workers=4)
        reporter.cell_done(self._cell(), 2.0, reused=False)
        assert reporter.eta == 4.0  # 8 remaining × 2.0s mean ÷ 4 workers

    def test_eta_worker_division_capped_at_remaining_cells(self):
        reporter = ProgressReporter(total=2, enabled=False, workers=8)
        reporter.cell_done(self._cell(), 3.0, reused=False)
        assert reporter.eta == 3.0  # 1 remaining cell can only use 1 worker

    def test_eta_zero_when_nothing_simulated_yet(self):
        reporter = ProgressReporter(total=2, enabled=False)
        reporter.cell_done(self._cell(), 0.0, reused=True)
        assert reporter.eta == 0.0

    def test_emits_progress_lines_when_enabled(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, enabled=True, stream=stream, label="x")
        reporter.cell_done(self._cell(), 1.0, reused=False)
        reporter.finish()
        output = stream.getvalue()
        assert "[x] 1/1 (100%) Baseline_6_64/mcf simulated" in output
        assert "done: 1 simulated, 0 reused" in output

    def test_cell_started_announces_the_run_with_an_eta(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=2, enabled=True, stream=stream, label="x")
        reporter.cell_started(self._cell())
        reporter.cell_done(self._cell(), 2.0, reused=False)
        reporter.cell_started(self._cell())
        output = stream.getvalue()
        lines = output.splitlines()
        assert "Baseline_6_64/mcf running" in lines[0]
        assert "ETA unknown" in lines[0]  # nothing simulated yet
        assert "Baseline_6_64/mcf running" in lines[2]
        assert "ETA unknown" not in lines[2]  # extrapolated from the first cell

    def test_cell_started_is_silent_when_disabled(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, enabled=False, stream=stream)
        reporter.cell_started(self._cell())
        assert stream.getvalue() == ""

    def test_utilization_accounts_for_the_worker_pool(self):
        reporter = ProgressReporter(total=4, enabled=False, workers=2)
        reporter.cell_done(self._cell(), 10_000.0, reused=False)
        assert reporter.utilization == 1.0  # capped: simulated time >> elapsed

    def test_finish_reports_utilisation_for_pools(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=1, enabled=True, stream=stream, label="x", workers=2
        )
        reporter.cell_done(self._cell(), 0.5, reused=False)
        reporter.finish()
        assert "2 workers" in stream.getvalue()
        assert "utilisation" in stream.getvalue()


class TestHeartbeatErrorAccounting:
    def _cell(self):
        return CampaignCell(baseline_6_64(), "mcf", 1000, 0)

    def test_swallowed_write_errors_are_counted_and_surfaced(self, tmp_path):
        import json

        # A path under a *file* makes every mkdir/open fail with OSError.
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=2,
            enabled=True,
            stream=stream,
            heartbeat_path=str(blocker / "log.jsonl"),
        )
        reporter.cell_done(self._cell(), 1.0, reused=False)
        reporter.cell_done(self._cell(), 1.0, reused=True)
        assert reporter.heartbeat_errors == 2  # swallowed, but not silently
        reporter.finish()
        assert "heartbeat-log writes failed" in stream.getvalue()

        # The counter also rides the structured finish record on a healthy log.
        healthy = tmp_path / "log.jsonl"
        ok = ProgressReporter(
            total=1, enabled=False, heartbeat_path=str(healthy)
        )
        ok.cell_done(self._cell(), 1.0, reused=False)
        ok.finish()
        finish_row = json.loads(healthy.read_text().splitlines()[-1])
        assert finish_row["event"] == "finish"
        assert finish_row["heartbeat_write_errors"] == 0

    def test_healthy_log_reports_no_failures_in_the_summary(self, tmp_path):
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=1,
            enabled=True,
            stream=stream,
            heartbeat_path=str(tmp_path / "log.jsonl"),
        )
        reporter.cell_done(self._cell(), 1.0, reused=False)
        reporter.finish()
        assert reporter.heartbeat_errors == 0
        assert "heartbeat-log" not in stream.getvalue()
