"""Tests for the ``python -m repro.campaign`` command line."""

import pytest

from repro.analysis.runner import run_suite
from repro.campaign.cli import main
from repro.campaign.store import ResultStore
from repro.pipeline.config import named_config
from repro.workloads.suite import FAST_SUBSET, fast_workloads

UOPS, WARMUP = 500, 100
CONFIGS = "Baseline_6_64,Baseline_VP_6_64"


def _run_args(store_path, workers=2):
    return [
        "run",
        "--configs", CONFIGS,
        "--workloads", "subset",
        "--max-uops", str(UOPS),
        "--warmup-uops", str(WARMUP),
        "--store", str(store_path),
        "--workers", str(workers),
        "--quiet",
    ]


@pytest.fixture(autouse=True)
def _no_ambient_store(monkeypatch):
    monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)


class TestRunCommand:
    def test_two_config_fast_subset_campaign_matches_serial_and_resumes(
        self, tmp_path, capsys
    ):
        """Acceptance: 2 configs × fast subset on 2 workers == serial run_suite IPCs,
        results persist, and a second invocation simulates nothing new."""
        store_path = tmp_path / "campaign.jsonl"
        assert main(_run_args(store_path, workers=2)) == 0
        first_out = capsys.readouterr().out
        assert f"{len(FAST_SUBSET) * 2} simulated" in first_out

        store = ResultStore(store_path)
        assert len(store) == len(FAST_SUBSET) * 2

        # Per-cell IPC parity with the serial library path.
        for config_name in CONFIGS.split(","):
            serial = run_suite(
                named_config(config_name), fast_workloads(), UOPS, WARMUP, cache=None
            )
            stored = {
                record["workload"]: record
                for record in store.records()
                if record["config"] == config_name
            }
            for name, result in serial.items():
                cell_stats = stored[name]["result"]["stats"]
                assert cell_stats["committed_uops"] / cell_stats["cycles"] == result.ipc

        # Second invocation: everything comes from the store, zero new simulations.
        assert main(_run_args(store_path, workers=2)) == 0
        second_out = capsys.readouterr().out
        assert "0 simulated" in second_out
        assert f"{len(FAST_SUBSET) * 2} from store" in second_out

    def test_unknown_config_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            ["run", "--configs", "NoSuchMachine", "--workloads", "subset",
             "--max-uops", "500", "--warmup-uops", "0",
             "--store", str(tmp_path / "s.jsonl"), "--quiet"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestStatusCommand:
    def test_status_reports_missing_then_done(self, tmp_path, capsys):
        store_path = tmp_path / "campaign.jsonl"
        status_args = [
            "status",
            "--configs", CONFIGS,
            "--workloads", "subset",
            "--max-uops", str(UOPS),
            "--warmup-uops", str(WARMUP),
            "--store", str(store_path),
        ]
        assert main(status_args) == 1  # nothing simulated yet
        out = capsys.readouterr().out
        assert f"0/{len(FAST_SUBSET) * 2} cells done" in out
        assert "missing Baseline_6_64/wupwise" in out

        main(_run_args(store_path, workers=1))
        capsys.readouterr()
        assert main(status_args) == 0
        out = capsys.readouterr().out
        assert f"{len(FAST_SUBSET) * 2}/{len(FAST_SUBSET) * 2} cells done" in out


class TestReportCommand:
    def test_report_tabulates_ipcs_and_speedups(self, tmp_path, capsys):
        store_path = tmp_path / "campaign.jsonl"
        main(_run_args(store_path, workers=1))
        capsys.readouterr()

        assert main(["report", "--store", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "Baseline_6_64" in out and "Baseline_VP_6_64" in out
        for name in FAST_SUBSET:
            assert name in out

        assert main(
            ["report", "--store", str(store_path), "--baseline", "Baseline_6_64"]
        ) == 0
        assert "speedup over Baseline_6_64" in capsys.readouterr().out

    def test_report_on_empty_store(self, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path / "void.jsonl")]) == 1
        assert "empty" in capsys.readouterr().err

    def test_report_with_unknown_baseline(self, tmp_path, capsys):
        store_path = tmp_path / "campaign.jsonl"
        main(_run_args(store_path, workers=1))
        capsys.readouterr()
        assert main(["report", "--store", str(store_path), "--baseline", "Nope"]) == 1
        assert "not in store" in capsys.readouterr().err

    def test_report_json_format_is_parseable_and_complete(self, tmp_path, capsys):
        import json

        store_path = tmp_path / "campaign.jsonl"
        main(_run_args(store_path, workers=1))
        capsys.readouterr()
        assert main(["report", "--store", str(store_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "ipc"
        assert payload["baseline"] is None
        assert sorted(payload["configs"]) == sorted(CONFIGS.split(","))
        assert set(payload["workloads"]) == set(FAST_SUBSET)
        for name in FAST_SUBSET:
            for config_name in CONFIGS.split(","):
                assert payload["values"][name][config_name] > 0

    def test_report_json_speedups_normalise_against_baseline(self, tmp_path, capsys):
        import json

        store_path = tmp_path / "campaign.jsonl"
        main(_run_args(store_path, workers=1))
        capsys.readouterr()
        assert main(
            ["report", "--store", str(store_path), "--format", "json",
             "--baseline", "Baseline_6_64"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "speedup"
        assert payload["baseline"] == "Baseline_6_64"
        for name in FAST_SUBSET:
            assert payload["values"][name]["Baseline_6_64"] == 1.0

    def test_report_csv_format(self, tmp_path, capsys):
        import csv
        import io

        store_path = tmp_path / "campaign.jsonl"
        main(_run_args(store_path, workers=1))
        capsys.readouterr()
        assert main(["report", "--store", str(store_path), "--format", "csv"]) == 0
        rows = list(csv.reader(io.StringIO(capsys.readouterr().out)))
        assert rows[0] == ["workload"] + sorted(CONFIGS.split(","))
        assert len(rows) == 1 + len(FAST_SUBSET)
        for row in rows[1:]:
            assert row[0] in FAST_SUBSET
            for value in row[1:]:
                assert float(value) > 0


def _compact_cell(max_uops: int = 400):
    from repro.campaign.spec import CampaignCell

    return CampaignCell(
        config=named_config("Baseline_6_64"),
        workload_name="gcc",
        max_uops=max_uops,
        warmup_uops=0,
    )


class TestCompactCommand:
    def test_compact_drops_superseded_rows_and_reports(self, tmp_path, capsys):
        from repro.campaign.cli import main
        from repro.campaign.store import ResultStore
        from repro.pipeline.stats import SimStats, SimulationResult

        store_path = tmp_path / "store.jsonl"
        store = ResultStore(store_path)
        stats = SimStats(cycles=10, committed_uops=5)
        result = SimulationResult(
            config_name="c", workload_name="w", stats=stats, full_stats=stats
        )
        cell = _compact_cell()
        store.put(cell, result)
        store.put(cell, result)  # superseded row
        lines_before = len(store_path.read_text().splitlines())
        assert lines_before == 2
        assert main(["compact", "--store", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "1 superseded" in out
        assert len(store_path.read_text().splitlines()) == 1

    def test_compact_with_max_mb_evicts(self, tmp_path, capsys):
        from repro.campaign.cli import main
        from repro.campaign.store import ResultStore
        from repro.pipeline.stats import SimStats, SimulationResult

        store_path = tmp_path / "store.jsonl"
        store = ResultStore(store_path)
        for index in range(4):
            stats = SimStats(cycles=10 + index, committed_uops=5)
            store.put(
                _compact_cell(max_uops=500 + index),
                SimulationResult(
                    config_name="c", workload_name="w", stats=stats, full_stats=stats
                ),
            )
        per_line = store.size_bytes() / 4
        cap_mb = (per_line * 2 + 2) / (1024 * 1024)
        assert main(["compact", "--store", str(store_path), "--max-mb", str(cap_mb)]) == 0
        assert "2 evicted" in capsys.readouterr().out
        assert len(ResultStore(store_path)) == 2
