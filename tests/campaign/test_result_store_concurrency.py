"""Multi-process durability stress tests for the JSONL result store.

These are regression tests for two lost-update bugs: a compaction racing another
process's append used to rewrite the file from a stale in-memory snapshot
(dropping the other writer's rows), and the auto-compaction fired *inside* an
append made the race routine on any shared store with ``REPRO_RESULT_STORE_MAX_MB``
set.  The fix — an advisory ``fcntl`` lock on a sidecar plus reload-before-rewrite
— must keep every row under real multi-process contention, which in-process unit
tests cannot exercise.
"""

import json
import multiprocessing

from repro.campaign.spec import CampaignCell
from repro.campaign.store import ResultStore
from repro.pipeline.config import PipelineConfig
from repro.pipeline.stats import SimStats, SimulationResult

PROCS = 4
ROUNDS = 8
CELLS_PER_PROC = 3


def _cell(max_uops: int) -> CampaignCell:
    config = PipelineConfig(name="stress", predictor_name="hybrid-small")
    return CampaignCell(config, "gcc", max_uops, 0)


def _stamped_result(proc: int, round_index: int) -> SimulationResult:
    """A result whose counters encode who wrote it and when (for the final audit)."""
    stats = SimStats(cycles=1000 + round_index, committed_uops=100 + proc)
    return SimulationResult(
        config_name="stress", workload_name="gcc", stats=stats, full_stats=stats
    )


def _proc_cells(proc: int) -> list[CampaignCell]:
    return [
        _cell(1000 + proc * CELLS_PER_PROC + k) for k in range(CELLS_PER_PROC)
    ]


def _appender(path: str, proc: int, max_bytes, barrier) -> None:
    """Keep re-putting this process's own cells (superseding its older rows)."""
    store = ResultStore(path, max_bytes=max_bytes)
    barrier.wait()
    for round_index in range(ROUNDS):
        for cell in _proc_cells(proc):
            store.put(cell, _stamped_result(proc, round_index))


def _compactor(path: str, rounds: int, barrier) -> None:
    store = ResultStore(path, max_bytes=None)
    barrier.wait()
    for _ in range(rounds):
        store.compact()


def _run(procs) -> None:
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    assert all(proc.exitcode == 0 for proc in procs)


class TestConcurrentAppenders:
    def test_appenders_racing_auto_compaction_lose_no_rows(self, tmp_path):
        path = tmp_path / "store.jsonl"
        # Measure one row, then cap the store at ~3× the live row count: every
        # process's auto-compaction fires repeatedly, but live rows always fit
        # inside the 80%-of-cap eviction target, so nothing may legally vanish.
        probe = ResultStore(path)
        probe.put(_proc_cells(0)[0], _stamped_result(0, 0))
        row_bytes = probe.size_bytes()
        path.unlink()
        live_rows = PROCS * CELLS_PER_PROC
        max_bytes = row_bytes * live_rows * 3

        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(PROCS)
        _run(
            [
                ctx.Process(
                    target=_appender, args=(str(path), proc, max_bytes, barrier)
                )
                for proc in range(PROCS)
            ]
        )

        final = ResultStore(path)
        assert len(final) == live_rows, "a compaction discarded another process's rows"
        assert final.skipped_lines == 0  # locked appends never tear a line
        for proc in range(PROCS):
            for cell in _proc_cells(proc):
                record = final.get_record(cell.fingerprint)
                assert record is not None
                # The surviving row is each process's *last* write, never an
                # older one resurrected by a concurrent rewrite.
                assert record["result"]["stats"]["cycles"] == 1000 + ROUNDS - 1
                assert record["result"]["stats"]["committed_uops"] == 100 + proc
        # The cap actually bit: far fewer lines than the 96 appends issued.
        appended = PROCS * ROUNDS * CELLS_PER_PROC
        assert len(path.read_text().splitlines()) < appended

    def test_explicit_compactions_racing_appends_lose_no_rows(self, tmp_path):
        """The pre-fix failure mode verbatim: compact() from a stale snapshot."""
        path = tmp_path / "store.jsonl"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(PROCS + 1)
        _run(
            [
                ctx.Process(target=_appender, args=(str(path), proc, None, barrier))
                for proc in range(PROCS)
            ]
            + [ctx.Process(target=_compactor, args=(str(path), 25, barrier))]
        )
        final = ResultStore(path)
        assert len(final) == PROCS * CELLS_PER_PROC
        for proc in range(PROCS):
            for cell in _proc_cells(proc):
                assert cell.fingerprint in final

    def test_compacted_file_is_valid_jsonl(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        _run(
            [
                ctx.Process(target=_appender, args=(str(path), 0, None, barrier)),
                ctx.Process(target=_compactor, args=(str(path), 10, barrier)),
            ]
        )
        for line in path.read_text().splitlines():
            record = json.loads(line)  # no torn/interleaved writes
            assert "fingerprint" in record
