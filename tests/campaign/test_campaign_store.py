"""Tests for the persistent result store and result serialisation."""

import dataclasses
import json

from repro.campaign.spec import CampaignCell
from repro.campaign.store import ResultStore, default_store
from repro.campaign.executor import simulate_cell
from repro.pipeline.config import PipelineConfig
from repro.pipeline.stats import SimStats, SimulationResult


def _fast_config(name="store_test", **kw) -> PipelineConfig:
    return PipelineConfig(name=name, predictor_name="hybrid-small", **kw)


def _cell(name="store_test", workload="gcc", max_uops=400, warmup=0) -> CampaignCell:
    return CampaignCell(_fast_config(name), workload, max_uops, warmup)


def _result(cell: CampaignCell) -> SimulationResult:
    return simulate_cell(cell)


class TestResultSerialisation:
    def test_simstats_round_trip(self):
        stats = SimStats(cycles=123, committed_uops=456, early_executed=7)
        assert SimStats.from_dict(stats.to_dict()) == stats

    def test_simstats_from_dict_ignores_unknown_keys(self):
        data = SimStats(cycles=5).to_dict()
        data["counter_from_the_future"] = 99
        assert SimStats.from_dict(data).cycles == 5

    def test_simulation_result_round_trips_exactly(self):
        result = _result(_cell())
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored == result  # dataclass equality covers every field
        assert restored.ipc == result.ipc

    def test_round_trip_survives_json(self):
        result = _result(_cell())
        restored = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result


class TestResultStore:
    def test_put_get_and_reopen(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cell = _cell()
        result = _result(cell)
        store = ResultStore(path)
        store.put(cell, result)
        assert cell.fingerprint in store
        assert store.get(cell.fingerprint) == result
        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert reopened.get(cell.fingerprint) == result

    def test_missing_fingerprint_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        assert store.get("no-such-fingerprint") is None

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cell = _cell()
        store = ResultStore(path)
        store.put(cell, _result(cell))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "deadbeef", "result": {"config_na')
        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert reopened.skipped_lines == 1
        assert reopened.get(cell.fingerprint) is not None

    def test_newest_duplicate_wins_and_compact_drops_it(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cell = _cell()
        result = _result(cell)
        store = ResultStore(path)
        store.put(cell, result)
        newer = dataclasses.replace(result, predictor_coverage=0.5)
        store.put(cell, newer)
        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert reopened.get(cell.fingerprint).predictor_coverage == 0.5
        assert len(path.read_text().splitlines()) == 2
        reopened.compact()
        assert len(path.read_text().splitlines()) == 1

    def test_merge_adopts_only_missing_cells(self, tmp_path):
        mine, theirs = ResultStore(tmp_path / "a.jsonl"), ResultStore(tmp_path / "b.jsonl")
        shared, private = _cell(), _cell(workload="mcf")
        mine.put(shared, _result(shared))
        theirs.put(shared, _result(shared))
        theirs.put(private, _result(private))
        assert mine.merge(theirs) == 1
        assert len(mine) == 2
        assert private.fingerprint in mine

    def test_invalidate_by_config_and_workload(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        cells = [_cell(), _cell(workload="mcf"), _cell(name="other_config")]
        for cell in cells:
            store.put(cell, _result(cells[0]))
        assert store.invalidate(workload="mcf") == 1
        assert store.invalidate(config="other_config") == 1
        assert len(store) == 1
        assert len(ResultStore(store.path)) == 1  # rewrite persisted

    def test_invalidate_everything(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        cell = _cell()
        store.put(cell, _result(cell))
        assert store.invalidate() == 1
        assert len(store) == 0

    def test_summary_counts(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        for cell in (_cell(), _cell(workload="mcf")):
            store.put(cell, _result(_cell()))
        summary = store.summary()
        assert summary["records"] == 2
        assert summary["configs"] == {"store_test": 2}
        assert summary["workloads"] == {"gcc": 1, "mcf": 1}


class TestDefaultStore:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert default_store() is None

    def test_env_selects_and_caches_the_store(self, tmp_path, monkeypatch):
        path = tmp_path / "env_store.jsonl"
        monkeypatch.setenv("REPRO_RESULT_STORE", str(path))
        store = default_store()
        assert store is not None
        assert store.path == path
        assert default_store() is store


class TestCompaction:
    @staticmethod
    def _fake_result(tag: int) -> SimulationResult:
        stats = SimStats(cycles=100 + tag, committed_uops=50 + tag)
        return SimulationResult(
            config_name="store_test", workload_name="gcc", stats=stats, full_stats=stats
        )

    def _put_grid(self, store, count: int = 4):
        cells = []
        for index in range(count):
            cell = _cell(max_uops=1000 + index)
            store.put(cell, self._fake_result(index))
            cells.append(cell)
        return cells

    def test_superseding_rows_are_counted_and_compacted(self, tmp_path):
        from repro.campaign.store import ResultStore

        store = ResultStore(tmp_path / "store.jsonl")
        cells = self._put_grid(store, count=3)
        store.put(cells[0], self._fake_result(99))  # duplicate fingerprint
        assert store.superseded_lines == 1
        assert len((tmp_path / "store.jsonl").read_text().splitlines()) == 4
        outcome = store.compact()
        assert outcome["superseded_dropped"] == 1
        assert outcome["evicted"] == 0
        assert outcome["bytes_after"] < outcome["bytes_before"]
        assert len((tmp_path / "store.jsonl").read_text().splitlines()) == 3
        reloaded = ResultStore(tmp_path / "store.jsonl")
        assert len(reloaded) == 3 and reloaded.superseded_lines == 0

    def test_size_cap_evicts_oldest_records(self, tmp_path):
        from repro.campaign.store import ResultStore

        store = ResultStore(tmp_path / "store.jsonl")
        self._put_grid(store, count=4)
        line_size = store.size_bytes() // 4
        outcome = store.compact(max_bytes=line_size * 2 + 2)
        assert outcome["evicted"] == 2
        assert store.size_bytes() <= line_size * 2 + 2
        # The two newest records survive (eviction is oldest-saved first).
        kept = {record["max_uops"] for record in store.records()}
        assert kept == {1002, 1003}

    def test_append_auto_compacts_past_the_cap(self, tmp_path, monkeypatch):
        from repro.campaign.store import MAX_MB_ENV_VAR, ResultStore

        probe = ResultStore(tmp_path / "probe.jsonl")
        self._put_grid(probe, count=1)
        line_size = probe.size_bytes()
        # Cap at ~2.5 rows: the store must keep itself within the budget.
        monkeypatch.setenv(MAX_MB_ENV_VAR, str(line_size * 2.5 / (1024 * 1024)))
        store = ResultStore(tmp_path / "capped.jsonl")
        assert store.max_bytes is not None
        self._put_grid(store, count=6)
        assert store.size_bytes() <= store.max_bytes
        assert 1 <= len(store) <= 2

    def test_invalid_cap_env_is_ignored(self, monkeypatch, tmp_path):
        from repro.campaign.store import MAX_MB_ENV_VAR, ResultStore

        monkeypatch.setenv(MAX_MB_ENV_VAR, "not-a-number")
        store = ResultStore(tmp_path / "store.jsonl")
        assert store.max_bytes is None


class TestFailureRows:
    def test_failure_rows_never_satisfy_get_or_contains(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        cell = _cell()
        store.put_failure(cell, {"type": "RuntimeError", "message": "boom"})
        assert cell.fingerprint not in store
        assert store.get(cell.fingerprint) is None
        assert store.get_failure(cell.fingerprint)["error"]["message"] == "boom"
        assert len(store.failures()) == 1
        assert store.summary()["failures"] == 1

    def test_failure_rows_survive_reload_and_compaction(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        cell = _cell()
        store.put_failure(cell, {"type": "RuntimeError", "message": "boom"})
        reloaded = ResultStore(store.path)
        assert reloaded.get_failure(cell.fingerprint) is not None
        reloaded.compact()
        assert ResultStore(store.path).get_failure(cell.fingerprint) is not None

    def test_success_supersedes_failure_and_vice_versa(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        cell = _cell()
        store.put_failure(cell, {"type": "RuntimeError", "message": "boom"})
        result = _result(cell)
        store.put(cell, result)
        assert store.get(cell.fingerprint) == result
        assert store.get_failure(cell.fingerprint) is None
        store.put_failure(cell, {"type": "RuntimeError", "message": "again"})
        assert cell.fingerprint not in store  # newest row wins across kinds
        reloaded = ResultStore(store.path)
        assert reloaded.get(cell.fingerprint) is None
        assert reloaded.get_failure(cell.fingerprint)["error"]["message"] == "again"

    def test_invalidate_drops_matching_failure_rows(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.put_failure(_cell(), {"type": "E", "message": "x"})
        store.put_failure(_cell(workload="mcf"), {"type": "E", "message": "y"})
        store.invalidate(workload="mcf")
        reloaded = ResultStore(store.path)
        assert len(reloaded.failures()) == 1
        assert reloaded.failures()[0]["workload"] == "gcc"
