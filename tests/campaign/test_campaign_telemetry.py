"""Campaign telemetry: per-cell rows in the store, heartbeat log, report --metrics."""

import json

import pytest

from repro.campaign.cli import main
from repro.campaign.executor import run_campaign
from repro.campaign.progress import HEARTBEAT_ENV_VAR
from repro.campaign.spec import Campaign
from repro.campaign.store import ResultStore
from repro.obs.telemetry import TraceCacheSnapshot, cell_telemetry
from repro.pipeline.config import PipelineConfig
from repro.trace.cache import shared_trace_cache

UOPS, WARMUP = 500, 100


@pytest.fixture(autouse=True)
def _clean_shared_cache():
    yield
    shared_trace_cache.clear()


def _fast_config(name, **kw) -> PipelineConfig:
    return PipelineConfig(name=name, predictor_name="hybrid-small", **kw)


def _campaign(workloads=("gcc", "mcf")) -> Campaign:
    return Campaign(
        name="telemetry-test",
        configs=(_fast_config("CfgA"), _fast_config("CfgB", value_prediction=True)),
        workload_names=tuple(workloads),
        max_uops=UOPS,
        warmup_uops=WARMUP,
    )


class TestStoredTelemetry:
    def test_serial_campaign_stores_telemetry_rows(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        run_campaign(_campaign(), store=store, workers=1)
        records = store.records()
        assert len(records) == 4
        for record in records:
            telemetry = record["telemetry"]
            assert telemetry["wall_seconds"] > 0
            assert telemetry["uops_per_second"] > 0
            assert set(telemetry["trace_cache"]) == {"captures", "hits", "store_hits"}
            assert isinstance(telemetry["worker_pid"], int)

    def test_sharded_campaign_stores_telemetry_rows(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        run_campaign(_campaign(), store=store, workers=2)
        for record in store.records():
            assert record["telemetry"]["wall_seconds"] > 0

    def test_multi_replay_campaign_keeps_the_telemetry_schema(self, tmp_path, monkeypatch):
        """REPRO_MULTI_REPLAY=1 groups cells into one pass per workload, yet the
        stored rows keep the serial schema and attribution: one row per cell,
        positive per-plane wall clock, and exactly one trace capture charged per
        workload group (to its first cell, like the serial path charges the
        first cell that triggers the capture)."""
        from repro.pipeline.multi_replay import MULTI_REPLAY_ENV_VAR

        monkeypatch.setenv(MULTI_REPLAY_ENV_VAR, "1")
        shared_trace_cache.clear()
        store = ResultStore(tmp_path / "s.jsonl")
        run_campaign(_campaign(), store=store, workers=1)
        records = store.records()
        assert len(records) == 4
        captures_by_workload: dict[str, int] = {}
        for record in records:
            telemetry = record["telemetry"]
            assert telemetry["wall_seconds"] > 0
            assert telemetry["uops_per_second"] > 0
            assert set(telemetry["trace_cache"]) == {"captures", "hits", "store_hits"}
            assert isinstance(telemetry["worker_pid"], int)
            workload_name = record["workload"]
            captures_by_workload[workload_name] = (
                captures_by_workload.get(workload_name, 0)
                + telemetry["trace_cache"]["captures"]
            )
        assert captures_by_workload == {"gcc": 1, "mcf": 1}

    def test_snapshot_delta_counts_cache_activity(self):
        shared_trace_cache.clear()
        snapshot = TraceCacheSnapshot()
        assert snapshot.delta() == {"captures": 0, "hits": 0, "store_hits": 0}

    def test_cell_telemetry_handles_zero_wall_clock(self):
        class _Result:
            class full_stats:
                committed_uops = 600

        row = cell_telemetry(_Result(), 0.0, TraceCacheSnapshot())
        assert row["uops_per_second"] == 0.0


class TestHeartbeatLog:
    def test_heartbeat_jsonl_covers_the_run(self, tmp_path, monkeypatch):
        heartbeat = tmp_path / "logs" / "heartbeat.jsonl"
        monkeypatch.setenv(HEARTBEAT_ENV_VAR, str(heartbeat))
        run_campaign(_campaign(workloads=("gcc",)), store=None, workers=1)
        rows = [json.loads(line) for line in heartbeat.read_text().splitlines()]
        events = [row["event"] for row in rows]
        assert events.count("cell_started") == 2
        assert events.count("cell_done") == 2
        assert events[-1] == "finish"
        assert 0.0 <= rows[-1]["utilization"] <= 1.0
        done = [row for row in rows if row["event"] == "cell_done"]
        assert all(row["cell"] and row["seconds"] >= 0 for row in done)

    def test_unwritable_heartbeat_path_is_swallowed(self, monkeypatch):
        monkeypatch.setenv(HEARTBEAT_ENV_VAR, "/proc/definitely/not/writable.jsonl")
        outcome = run_campaign(_campaign(workloads=("gcc",)), store=None, workers=1)
        assert outcome.simulated == 2  # the campaign still completed


class TestReportMetrics:
    def _populated_store(self, tmp_path) -> str:
        store = ResultStore(tmp_path / "s.jsonl")
        run_campaign(_campaign(), store=store, workers=1)
        return str(store.path)

    def test_table_has_telemetry_columns(self, tmp_path, capsys):
        store_path = self._populated_store(tmp_path)
        assert main(["report", "--store", store_path, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "wall_seconds" in out and "uops_per_second" in out
        assert "trace_captures" in out and "trace_hits" in out
        assert "CfgA" in out and "gcc" in out

    def test_json_rows_carry_numbers(self, tmp_path, capsys):
        store_path = self._populated_store(tmp_path)
        assert main(
            ["report", "--store", store_path, "--metrics", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["cells"]) == 4
        for row in payload["cells"]:
            assert row["ipc"] > 0
            assert row["wall_seconds"] > 0
            assert row["uops_per_second"] > 0

    def test_pre_telemetry_records_render_as_missing(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "s.jsonl")
        campaign = _campaign(workloads=("gcc",))
        run_campaign(campaign, store=store, workers=1)
        # Strip the telemetry key, emulating a store written before this feature
        # existed — which also predates row stamping, so drop the version/CRC
        # keys too (keeping a stale CRC would make this bit rot, not legacy).
        stripped = []
        for line in store.path.read_text().splitlines():
            record = json.loads(line)
            for key in ("telemetry", "v", "crc"):
                record.pop(key, None)
            stripped.append(json.dumps(record))
        store.path.write_text("\n".join(stripped) + "\n")
        assert main(["report", "--store", str(store.path), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "—" in out

    def test_csv_format(self, tmp_path, capsys):
        store_path = self._populated_store(tmp_path)
        assert main(
            ["report", "--store", store_path, "--metrics", "--format", "csv"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("config,workload,ipc,wall_seconds")
        assert len(lines) == 5
