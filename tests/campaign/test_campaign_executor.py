"""Tests for the campaign executor: parity with the serial path, resume, sharding."""

import pytest

from repro.analysis.runner import ResultCache, run_suite
from repro.campaign.executor import campaign_status, default_workers, run_campaign
from repro.campaign.spec import Campaign
from repro.campaign.store import ResultStore
from repro.pipeline.config import PipelineConfig

UOPS, WARMUP = 500, 100


def _fast_config(name, **kw) -> PipelineConfig:
    return PipelineConfig(name=name, predictor_name="hybrid-small", **kw)


def _campaign(workloads=("gcc", "mcf"), seed=None) -> Campaign:
    return Campaign(
        name="test",
        configs=(_fast_config("CfgA"), _fast_config("CfgB", value_prediction=True)),
        workload_names=tuple(workloads),
        max_uops=UOPS,
        warmup_uops=WARMUP,
        seed=seed,
    )


class TestRunCampaign:
    def test_serial_run_covers_the_grid(self, tmp_path):
        campaign = _campaign()
        outcome = run_campaign(campaign, store=ResultStore(tmp_path / "s.jsonl"), workers=1)
        assert set(outcome.results) == {
            ("CfgA", "gcc"), ("CfgA", "mcf"), ("CfgB", "gcc"), ("CfgB", "mcf"),
        }
        assert outcome.simulated == 4
        assert all(result.ipc > 0 for result in outcome.results.values())

    def test_resumed_campaign_runs_zero_cells(self, tmp_path):
        campaign = _campaign()
        store_path = tmp_path / "s.jsonl"
        first = run_campaign(campaign, store=ResultStore(store_path), workers=1)
        second = run_campaign(campaign, store=ResultStore(store_path), workers=1)
        assert first.simulated == 4
        assert second.simulated == 0
        assert second.from_store == 4
        assert second.ipcs() == first.ipcs()

    def test_interrupted_campaign_resumes_only_missing_cells(self, tmp_path):
        campaign = _campaign()
        store = ResultStore(tmp_path / "s.jsonl")
        run_campaign(campaign, store=store, workers=1)
        store.invalidate(workload="mcf")
        assert campaign_status(campaign, store)["missing"] == 2
        resumed = run_campaign(campaign, store=store, workers=1)
        assert resumed.simulated == 2
        assert campaign_status(campaign, store)["missing"] == 0

    def test_in_memory_cache_short_circuits_the_store(self, tmp_path):
        campaign = _campaign(workloads=("gcc",))
        cache = ResultCache()
        first = run_campaign(campaign, store=None, workers=1, cache=cache)
        second = run_campaign(campaign, store=None, workers=1, cache=cache)
        assert first.simulated == 2 and second.simulated == 0
        assert second.from_cache == 2

    def test_sharded_run_matches_serial_ipcs(self, tmp_path):
        campaign = _campaign()
        sharded = run_campaign(
            campaign, store=ResultStore(tmp_path / "s.jsonl"), workers=2
        )
        serial = run_campaign(_campaign(), store=None, workers=1)
        assert sharded.simulated == 4
        assert sharded.ipcs() == serial.ipcs()

    def test_sharded_run_matches_run_suite(self, tmp_path):
        """Acceptance: campaign IPCs are identical to the serial run_suite path."""
        from repro.workloads.suite import workload

        campaign = _campaign()
        outcome = run_campaign(campaign, store=ResultStore(tmp_path / "s.jsonl"), workers=2)
        for config in campaign.configs:
            expected = run_suite(
                config,
                [workload(name) for name in campaign.workload_names],
                UOPS,
                WARMUP,
                cache=None,
            )
            for name, result in expected.items():
                assert outcome.results[(config.name, name)].ipc == result.ipc
                assert outcome.results[(config.name, name)].stats == result.stats

    def test_seeded_campaign_does_not_reuse_unseeded_cache_entries(self):
        cache = ResultCache()
        unseeded = run_campaign(_campaign(workloads=("gcc",)), workers=1, cache=cache)
        seeded = run_campaign(_campaign(workloads=("gcc",), seed=7), workers=1, cache=cache)
        assert unseeded.simulated == 2
        assert seeded.simulated == 2  # different predictor seeds → no cache hits
        assert seeded.from_cache == 0

    def test_campaign_seed_is_deterministic_across_runs(self):
        seeded_a = run_campaign(_campaign(workloads=("gcc",), seed=3), workers=1)
        seeded_b = run_campaign(_campaign(workloads=("gcc",), seed=3), workers=1)
        assert seeded_a.ipcs() == seeded_b.ipcs()
        cells = _campaign(workloads=("gcc",), seed=3).cells()
        assert {cell.config.predictor_seed for cell in cells} != {
            cell.config.predictor_seed for cell in _campaign(workloads=("gcc",)).cells()
        }


class TestWorkers:
    def test_default_workers_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "3")
        assert default_workers() == 3

    def test_default_workers_falls_back_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_CAMPAIGN_WORKERS", raising=False)
        assert default_workers() == (os.cpu_count() or 1)


class TestStatus:
    def test_status_without_store(self):
        campaign = _campaign()
        status = campaign_status(campaign, None)
        assert status["total"] == status["missing"] == 4
        assert "CfgA/gcc" in status["missing_cells"]


class TestFailureHandling:
    """A raising cell must cost only itself: failure row, grid continues, resume retries."""

    @staticmethod
    def _explode_on_mcf(monkeypatch):
        import repro.campaign.executor as executor

        real = executor.simulate_cell

        def explode(cell, wl=None, trace=None):
            if cell.workload_name == "mcf":
                raise RuntimeError("injected fault")
            return real(cell, wl, trace)

        monkeypatch.setattr(executor, "simulate_cell", explode)
        return real

    def test_raising_cell_is_recorded_and_the_grid_continues(self, tmp_path, monkeypatch):
        self._explode_on_mcf(monkeypatch)
        campaign = _campaign()
        store = ResultStore(tmp_path / "s.jsonl")
        outcome = run_campaign(campaign, store=store, workers=1)
        assert set(outcome.failed) == {("CfgA", "mcf"), ("CfgB", "mcf")}
        assert set(outcome.results) == {("CfgA", "gcc"), ("CfgB", "gcc")}
        assert outcome.failures == 2 and outcome.simulated == 2
        for cell in campaign.cells():
            if cell.workload_name == "mcf":
                assert cell.fingerprint not in store
                failure = store.get_failure(cell.fingerprint)
                assert failure["error"]["type"] == "RuntimeError"
                assert "injected fault" in failure["error"]["traceback"]
            else:
                assert cell.fingerprint in store

    def test_resume_retries_failed_cells_and_success_supersedes(self, tmp_path, monkeypatch):
        real = self._explode_on_mcf(monkeypatch)
        campaign = _campaign()
        store = ResultStore(tmp_path / "s.jsonl")
        run_campaign(campaign, store=store, workers=1)

        import repro.campaign.executor as executor

        monkeypatch.setattr(executor, "simulate_cell", real)
        resumed = run_campaign(campaign, store=ResultStore(store.path), workers=1)
        assert not resumed.failed
        assert resumed.simulated == 2  # only the two mcf cells re-ran
        assert resumed.from_store == 2
        reloaded = ResultStore(store.path)
        for cell in campaign.cells():
            assert cell.fingerprint in reloaded
            assert reloaded.get_failure(cell.fingerprint) is None  # superseded

    def test_sharded_run_survives_a_raising_cell(self, tmp_path, monkeypatch):
        # ProcessPoolExecutor children are forked after the patch, so the
        # injected fault reaches the pool workers too.
        self._explode_on_mcf(monkeypatch)
        outcome = run_campaign(
            _campaign(), store=ResultStore(tmp_path / "s.jsonl"), workers=2
        )
        assert set(outcome.failed) == {("CfgA", "mcf"), ("CfgB", "mcf")}
        assert set(outcome.results) == {("CfgA", "gcc"), ("CfgB", "gcc")}

    def test_failure_payload_shape(self):
        from repro.campaign.executor import failure_payload

        try:
            raise ValueError("boom")
        except ValueError as error:
            payload = failure_payload(error, worker="w1", attempts=2)
        assert payload["type"] == "ValueError"
        assert payload["message"] == "boom"
        assert payload["worker"] == "w1" and payload["attempts"] == 2
        assert "ValueError: boom" in payload["traceback"]
