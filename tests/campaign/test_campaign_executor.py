"""Tests for the campaign executor: parity with the serial path, resume, sharding."""

import pytest

from repro.analysis.runner import ResultCache, run_suite
from repro.campaign.executor import campaign_status, default_workers, run_campaign
from repro.campaign.spec import Campaign
from repro.campaign.store import ResultStore
from repro.pipeline.config import PipelineConfig

UOPS, WARMUP = 500, 100


def _fast_config(name, **kw) -> PipelineConfig:
    return PipelineConfig(name=name, predictor_name="hybrid-small", **kw)


def _campaign(workloads=("gcc", "mcf"), seed=None) -> Campaign:
    return Campaign(
        name="test",
        configs=(_fast_config("CfgA"), _fast_config("CfgB", value_prediction=True)),
        workload_names=tuple(workloads),
        max_uops=UOPS,
        warmup_uops=WARMUP,
        seed=seed,
    )


class TestRunCampaign:
    def test_serial_run_covers_the_grid(self, tmp_path):
        campaign = _campaign()
        outcome = run_campaign(campaign, store=ResultStore(tmp_path / "s.jsonl"), workers=1)
        assert set(outcome.results) == {
            ("CfgA", "gcc"), ("CfgA", "mcf"), ("CfgB", "gcc"), ("CfgB", "mcf"),
        }
        assert outcome.simulated == 4
        assert all(result.ipc > 0 for result in outcome.results.values())

    def test_resumed_campaign_runs_zero_cells(self, tmp_path):
        campaign = _campaign()
        store_path = tmp_path / "s.jsonl"
        first = run_campaign(campaign, store=ResultStore(store_path), workers=1)
        second = run_campaign(campaign, store=ResultStore(store_path), workers=1)
        assert first.simulated == 4
        assert second.simulated == 0
        assert second.from_store == 4
        assert second.ipcs() == first.ipcs()

    def test_interrupted_campaign_resumes_only_missing_cells(self, tmp_path):
        campaign = _campaign()
        store = ResultStore(tmp_path / "s.jsonl")
        run_campaign(campaign, store=store, workers=1)
        store.invalidate(workload="mcf")
        assert campaign_status(campaign, store)["missing"] == 2
        resumed = run_campaign(campaign, store=store, workers=1)
        assert resumed.simulated == 2
        assert campaign_status(campaign, store)["missing"] == 0

    def test_in_memory_cache_short_circuits_the_store(self, tmp_path):
        campaign = _campaign(workloads=("gcc",))
        cache = ResultCache()
        first = run_campaign(campaign, store=None, workers=1, cache=cache)
        second = run_campaign(campaign, store=None, workers=1, cache=cache)
        assert first.simulated == 2 and second.simulated == 0
        assert second.from_cache == 2

    def test_sharded_run_matches_serial_ipcs(self, tmp_path):
        campaign = _campaign()
        sharded = run_campaign(
            campaign, store=ResultStore(tmp_path / "s.jsonl"), workers=2
        )
        serial = run_campaign(_campaign(), store=None, workers=1)
        assert sharded.simulated == 4
        assert sharded.ipcs() == serial.ipcs()

    def test_sharded_run_matches_run_suite(self, tmp_path):
        """Acceptance: campaign IPCs are identical to the serial run_suite path."""
        from repro.workloads.suite import workload

        campaign = _campaign()
        outcome = run_campaign(campaign, store=ResultStore(tmp_path / "s.jsonl"), workers=2)
        for config in campaign.configs:
            expected = run_suite(
                config,
                [workload(name) for name in campaign.workload_names],
                UOPS,
                WARMUP,
                cache=None,
            )
            for name, result in expected.items():
                assert outcome.results[(config.name, name)].ipc == result.ipc
                assert outcome.results[(config.name, name)].stats == result.stats

    def test_seeded_campaign_does_not_reuse_unseeded_cache_entries(self):
        cache = ResultCache()
        unseeded = run_campaign(_campaign(workloads=("gcc",)), workers=1, cache=cache)
        seeded = run_campaign(_campaign(workloads=("gcc",), seed=7), workers=1, cache=cache)
        assert unseeded.simulated == 2
        assert seeded.simulated == 2  # different predictor seeds → no cache hits
        assert seeded.from_cache == 0

    def test_campaign_seed_is_deterministic_across_runs(self):
        seeded_a = run_campaign(_campaign(workloads=("gcc",), seed=3), workers=1)
        seeded_b = run_campaign(_campaign(workloads=("gcc",), seed=3), workers=1)
        assert seeded_a.ipcs() == seeded_b.ipcs()
        cells = _campaign(workloads=("gcc",), seed=3).cells()
        assert {cell.config.predictor_seed for cell in cells} != {
            cell.config.predictor_seed for cell in _campaign(workloads=("gcc",)).cells()
        }


class TestWorkers:
    def test_default_workers_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "3")
        assert default_workers() == 3

    def test_default_workers_falls_back_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_CAMPAIGN_WORKERS", raising=False)
        assert default_workers() == (os.cpu_count() or 1)


class TestStatus:
    def test_status_without_store(self):
        campaign = _campaign()
        status = campaign_status(campaign, None)
        assert status["total"] == status["missing"] == 4
        assert "CfgA/gcc" in status["missing_cells"]
