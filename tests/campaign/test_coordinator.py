"""Tests for the distributed campaign coordinator (leased work queue).

Unit tests drive the lease protocol directly (claim/heartbeat/requeue/expiry);
the integration test at the bottom runs a real two-worker fleet as subprocesses,
SIGKILLs one mid-run, and asserts the campaign still completes with results
byte-identical to the serial ``run_campaign`` path — the PR's acceptance
criterion.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign.coordinator import (
    CampaignService,
    CoordinationError,
    process_lease,
    serve,
    work_loop,
)
from repro.campaign.executor import run_campaign
from repro.campaign.spec import Campaign

UOPS, WARMUP = 400, 100


def _campaign(workloads="gcc,mcf", configs=("Baseline_6_64", "EOLE_4_64"), seed=None):
    return Campaign.from_names(
        configs, workloads, max_uops=UOPS, warmup_uops=WARMUP, seed=seed, name="fleet"
    )


def _service(tmp_path, campaign=None, **submit_kw):
    service = CampaignService(tmp_path / "svc")
    if campaign is not None:
        service.submit(campaign, **submit_kw)
    return service


class TestSubmission:
    def test_submit_creates_one_lease_per_workload(self, tmp_path):
        service = _service(tmp_path)
        count = service.submit(_campaign("gcc,mcf,milc"))
        assert count == 3
        leases = service.leases()
        assert {lease.workload for lease in leases} == {"gcc", "mcf", "milc"}
        assert all(lease.state == "pending" for lease in leases)
        # One lease covers the whole config axis of its workload.
        assert all(len(lease.fingerprints) == 2 for lease in leases)

    def test_lease_width_chunks_the_workload_group(self, tmp_path):
        service = _service(tmp_path)
        assert service.submit(_campaign("gcc"), lease_width=1) == 2

    def test_resubmitting_the_same_grid_is_a_resume(self, tmp_path):
        campaign = _campaign()
        service = _service(tmp_path, campaign)
        assert service.submit(campaign) == 2  # no duplicate leases

    def test_submitting_a_different_grid_raises(self, tmp_path):
        service = _service(tmp_path, _campaign())
        with pytest.raises(CoordinationError):
            service.submit(_campaign("gcc,milc"))

    def test_round_trip_rebuilds_identical_cells(self, tmp_path):
        campaign = _campaign(seed=11)
        service = _service(tmp_path, campaign)
        rebuilt = service.campaign()
        assert [cell.fingerprint for cell in rebuilt.cells()] == [
            cell.fingerprint for cell in campaign.cells()
        ]

    def test_custom_configs_are_rejected(self, tmp_path):
        from repro.errors import ConfigurationError
        from repro.pipeline.config import PipelineConfig

        campaign = Campaign(
            name="adhoc",
            configs=(PipelineConfig(name="NotRegistered"),),
            workload_names=("gcc",),
            max_uops=UOPS,
            warmup_uops=WARMUP,
        )
        with pytest.raises(ConfigurationError):
            _service(tmp_path).submit(campaign)


class TestLeaseProtocol:
    def test_claim_marks_running_with_owner_and_deadline(self, tmp_path):
        service = _service(tmp_path, _campaign(), lease_seconds=30.0)
        lease = service.claim("w1")
        assert lease is not None
        assert lease.state == "running" and lease.owner == "w1"
        assert lease.attempts == 1
        assert lease.deadline_unix > time.time()

    def test_live_leases_are_not_reclaimable(self, tmp_path):
        service = _service(tmp_path, _campaign("gcc"), lease_seconds=30.0)
        assert service.claim("w1") is not None
        assert service.claim("w2") is None

    def test_heartbeat_extends_only_for_the_owner(self, tmp_path):
        service = _service(tmp_path, _campaign("gcc"), lease_seconds=30.0)
        lease = service.claim("w1")
        before = service._read_lease(lease.lease_id).deadline_unix
        time.sleep(0.02)
        assert service.heartbeat(lease, "w1") is True
        assert service._read_lease(lease.lease_id).deadline_unix > before
        assert service.heartbeat(lease, "w2") is False

    def test_lapsed_lease_is_reclaimed_by_another_worker(self, tmp_path):
        service = _service(tmp_path, _campaign("gcc"), lease_seconds=0.05)
        first = service.claim("dead-worker")
        assert first is not None
        time.sleep(0.1)  # deadline lapses with no heartbeat
        second = service.claim("survivor")
        assert second is not None
        assert second.lease_id == first.lease_id
        assert second.owner == "survivor"
        assert second.attempts == 2

    def test_requeue_backs_off_exponentially(self, tmp_path):
        service = _service(
            tmp_path, _campaign("gcc"), max_attempts=5, backoff_seconds=8.0
        )
        lease = service.claim("w1")
        state = service.requeue(lease, "w1", {"type": "Boom", "message": "x"})
        assert state == "pending"
        requeued = service._read_lease(lease.lease_id)
        assert requeued.owner is None
        # attempts == 1 -> backoff 8 * 2**0 = 8 seconds from now.
        assert requeued.not_before_unix == pytest.approx(time.time() + 8.0, abs=2.0)
        assert service.claim("w2") is None  # still inside the backoff window
        assert requeued.errors and requeued.errors[-1]["type"] == "Boom"

    def test_out_of_attempts_marks_failed_with_failure_rows(self, tmp_path):
        campaign = _campaign("gcc")
        service = _service(tmp_path, campaign, max_attempts=1)
        lease = service.claim("w1")
        state = service.requeue(lease, "w1", {"type": "Boom", "message": "x"})
        assert state == "failed"
        assert service.queue_complete()
        store = service.result_store()
        for cell in campaign.cells():
            assert cell.fingerprint not in store
            failure = store.get_failure(cell.fingerprint)
            assert failure is not None
            assert failure["error"]["type"] == "Boom"

    def test_expired_lease_out_of_attempts_fails_at_claim_time(self, tmp_path):
        service = _service(
            tmp_path, _campaign("gcc"), lease_seconds=0.05, max_attempts=1
        )
        assert service.claim("dead") is not None
        time.sleep(0.1)
        assert service.claim("survivor") is None  # nothing left: lease went failed
        states = {lease.state for lease in service.leases()}
        assert states == {"failed"}
        assert service.result_store().failures()

    def test_complete_refuses_a_reassigned_lease(self, tmp_path):
        service = _service(tmp_path, _campaign("gcc"), lease_seconds=0.05)
        lease = service.claim("slow")
        time.sleep(0.1)
        assert service.claim("fast") is not None
        assert service.complete(lease, "slow") is False


class TestWorkLoop:
    def test_fleet_results_match_serial_run(self, tmp_path):
        campaign = _campaign()
        service = _service(tmp_path, campaign)
        counts = work_loop(service, worker_id="w1")
        assert counts["processed"] == 2 and counts["requeued"] == 0
        assert service.queue_complete()
        store = service.result_store()
        serial = run_campaign(campaign, store=None, workers=1)
        for cell in campaign.cells():
            assert store.get(cell.fingerprint) == serial.results[
                (cell.config.name, cell.workload_name)
            ]

    def test_worker_skips_cells_already_in_the_store(self, tmp_path):
        campaign = _campaign("gcc")
        service = _service(tmp_path, campaign)
        store = service.result_store()
        serial = run_campaign(campaign, store=store, workers=1)
        assert serial.simulated == 2
        counts = work_loop(service, worker_id="w1")
        assert counts["processed"] == 1  # lease processed, zero re-simulation
        assert len(service.result_store()) == 2

    def test_worker_telemetry_carries_worker_and_lease_ids(self, tmp_path):
        campaign = _campaign("gcc")
        service = _service(tmp_path, campaign)
        work_loop(service, worker_id="fleet-worker-7")
        store = service.result_store()
        for cell in campaign.cells():
            telemetry = store.get_record(cell.fingerprint)["telemetry"]
            assert telemetry["worker"] == "fleet-worker-7"
            assert telemetry["lease_id"] == "gcc-0"
            assert telemetry["worker_host"]

    def test_failing_cell_is_retried_then_recorded_as_failure(
        self, tmp_path, monkeypatch
    ):
        import repro.campaign.executor as executor

        campaign = _campaign("gcc,mcf")
        service = _service(
            tmp_path, campaign, max_attempts=2, backoff_seconds=0.01
        )
        real = executor.simulate_cell

        def explode_on_mcf(cell, wl=None, trace=None):
            if cell.workload_name == "mcf":
                raise RuntimeError("injected fault")
            return real(cell, wl, trace)

        monkeypatch.setattr(executor, "simulate_cell", explode_on_mcf)
        counts = work_loop(service, worker_id="w1", poll_seconds=0.01)
        assert service.queue_complete()
        assert counts["requeued"] == 1  # first mcf attempt backs off, second fails
        store = service.result_store()
        done = [c for c in campaign.cells() if c.fingerprint in store]
        failed = [c for c in campaign.cells() if store.get_failure(c.fingerprint)]
        assert {c.workload_name for c in done} == {"gcc"}
        assert {c.workload_name for c in failed} == {"mcf"}
        error = store.get_failure(failed[0].fingerprint)["error"]
        assert error["type"] == "RuntimeError"
        assert error["attempts"] == 2

    def test_process_lease_reports_first_error(self, tmp_path, monkeypatch):
        import repro.campaign.executor as executor

        campaign = _campaign("gcc")
        service = _service(tmp_path, campaign)
        lease = service.claim("w1")
        monkeypatch.setattr(
            executor,
            "simulate_cell",
            lambda cell, wl=None, trace=None: (_ for _ in ()).throw(
                ValueError("bad cell")
            ),
        )
        error = process_lease(service, lease, "w1", service.result_store())
        assert error is not None
        assert error["type"] == "ValueError" and error["worker"] == "w1"


class TestServe:
    def test_serve_streams_and_summarises_a_completed_grid(self, tmp_path):
        import threading

        campaign = _campaign("gcc")
        service = _service(tmp_path)
        worker = threading.Thread(
            target=lambda: (
                time.sleep(0.2),
                work_loop(service, worker_id="bg", poll_seconds=0.05),
            ),
            daemon=True,
        )
        worker.start()
        summary = serve(
            service,
            campaign,
            poll_seconds=0.05,
            progress=False,
            timeout_seconds=60.0,
        )
        worker.join(timeout=30)
        assert summary["cells"] == 2
        assert len(summary["results"]) == 2
        assert not summary["failed"] and not summary["missing"]

    def test_serve_times_out_with_no_workers(self, tmp_path):
        with pytest.raises(CoordinationError):
            serve(
                _service(tmp_path),
                _campaign("gcc"),
                poll_seconds=0.02,
                progress=False,
                timeout_seconds=0.1,
            )


class TestKillAWorker:
    """Acceptance: SIGKILL a fleet worker mid-run; the grid still completes,
    byte-identical to the serial path."""

    def _spawn_worker(self, service_dir, worker_id, repo_root):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        env.pop("REPRO_RESULT_STORE", None)
        env.pop("REPRO_TRACE_STORE", None)
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.campaign",
                "work",
                "--service",
                str(service_dir),
                "--worker-id",
                worker_id,
                "--poll-seconds",
                "0.05",
                "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_killed_worker_lease_is_requeued_and_grid_matches_serial(self, tmp_path):
        repo_root = Path(__file__).resolve().parents[2]
        # ~16 × 0.1s of simulation: long enough that the 10ms kill poll below
        # always lands mid-grid, short enough to keep the suite quick.
        campaign = Campaign.from_names(
            ("Baseline_6_64", "Baseline_VP_6_64", "EOLE_4_64", "EOLE_6_64"),
            "gcc,mcf,milc,namd",
            max_uops=8000,
            warmup_uops=2000,
            name="fleet",
        )
        service = CampaignService(tmp_path / "svc")
        # Short leases so the victim's lease lapses quickly after the SIGKILL;
        # lease_width=1 gives 16 small leases, so the kill lands mid-grid.
        service.submit(campaign, lease_seconds=2.0, max_attempts=4, lease_width=1)
        victim = self._spawn_worker(tmp_path / "svc", "victim", repo_root)
        try:
            # Wait until the victim is actually simulating (owns progress), then
            # SIGKILL it — no cleanup, no heartbeat ever again.
            deadline = time.time() + 120
            store = service.result_store()
            while time.time() < deadline:
                store.reload()
                if len(store) >= 2:
                    break
                time.sleep(0.01)
            assert len(store) >= 2, "victim worker never made progress"
            running = [l for l in service.leases() if l.state == "running"]
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10)

            survivor = self._spawn_worker(tmp_path / "svc", "survivor", repo_root)
            try:
                deadline = time.time() + 180
                while time.time() < deadline and not service.queue_complete():
                    time.sleep(0.1)
                assert service.queue_complete(), "fleet never completed the queue"
            finally:
                if survivor.poll() is None:
                    survivor.kill()
                survivor.wait(timeout=10)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=10)

        # The survivor must have picked up work the victim left behind.
        store = service.result_store()
        owners = {
            store.get_record(cell.fingerprint)["telemetry"]["worker"]
            for cell in campaign.cells()
        }
        assert "survivor" in owners
        if running:  # the lease the victim died holding was requeued, not lost
            requeued = service._read_lease(running[0].lease_id)
            assert requeued.state == "done"

        # Byte-identity: every fleet record equals the serial result, down to the
        # JSON encoding of the result dict.
        serial = run_campaign(campaign, store=None, workers=1)
        assert not store.failures()
        for cell in campaign.cells():
            record = store.get_record(cell.fingerprint)
            expected = serial.results[(cell.config.name, cell.workload_name)]
            assert record is not None, f"missing {cell.describe()}"
            assert json.dumps(record["result"], sort_keys=True) == json.dumps(
                expected.to_dict(), sort_keys=True
            ), f"fleet result diverges for {cell.describe()}"


class TestFaultSitesAndPoliteKill:
    """Coordinator fault-injection sites plus the SIGTERM polite-release path."""

    def _armed(self, monkeypatch, spec: str) -> None:
        from repro.faults import reset_faults

        monkeypatch.setenv("REPRO_FAULTS", spec)
        reset_faults()

    def test_dropped_heartbeats_lapse_the_lease(self, tmp_path, monkeypatch):
        service = _service(tmp_path, _campaign(), lease_seconds=0.2)
        lease = service.claim("sick-worker")
        self._armed(monkeypatch, "coord.heartbeat.drop:every=1:n=0")
        deadline_before = service._read_lease(lease.lease_id).deadline_unix
        # The worker believes every beat lands, but none extend the deadline.
        assert service.heartbeat(lease, "sick-worker") is True
        assert service._read_lease(lease.lease_id).deadline_unix == deadline_before
        time.sleep(0.25)
        takeover = service.claim("healthy-worker")
        assert takeover is not None and takeover.lease_id == lease.lease_id
        assert takeover.owner == "healthy-worker"

    def test_clock_skew_site_shifts_this_claimants_clock(self, tmp_path, monkeypatch):
        service = _service(tmp_path, _campaign(), lease_seconds=30.0)
        held = service.claim("owner")
        assert held is not None
        # A claimant whose clock runs far ahead sees live leases as lapsed and
        # steals them — exactly the NTP-drift hazard the site exists to model.
        self._armed(monkeypatch, "coord.clock.skew:every=1:n=0:skew=120")
        stolen = service.claim("fast-clock")
        assert stolen is not None
        assert stolen.owner == "fast-clock"

    def test_release_is_owner_fenced_and_refunds_the_attempt(self, tmp_path):
        service = _service(tmp_path, _campaign())
        lease = service.claim("w1")
        assert lease.attempts == 1
        assert service.release(lease, "imposter") is False
        assert service._read_lease(lease.lease_id).state == "running"
        assert service.release(lease, "w1") is True
        released = service._read_lease(lease.lease_id)
        assert released.state == "pending"
        assert released.owner is None
        assert released.attempts == 0  # the abandoned claim is refunded
        assert released.not_before_unix == 0.0  # immediately claimable, no backoff
        # Releasing twice is a no-op: the lease is no longer ours.
        assert service.release(lease, "w1") is False

    def test_sigterm_mid_lease_releases_and_reports(self, tmp_path, monkeypatch):
        import repro.campaign.coordinator as coordinator

        service = _service(tmp_path, _campaign(), lease_seconds=60.0)

        def _killed_mid_lease(service_, lease_, worker_id_, store_):
            # Deliver a real SIGTERM to ourselves while the lease is held: the
            # handler work_loop installed must unwind to the release path.
            signal.raise_signal(signal.SIGTERM)
            raise AssertionError("the SIGTERM handler should have interrupted us")

        monkeypatch.setattr(coordinator, "process_lease", _killed_mid_lease)
        counts = work_loop(service, worker_id="w1", handle_signals=True)
        assert counts["interrupted"] == "SIGTERM"
        assert counts["released"] == 1
        assert counts["processed"] == 0
        for lease in service.leases():
            assert lease.state == "pending"
            assert lease.attempts == 0  # refunded: no retry budget burned
        # The previous SIGTERM disposition was restored on the way out.
        assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL

    def test_work_loop_without_handlers_leaves_signal_dispositions(self, tmp_path):
        service = _service(tmp_path, _campaign("gcc"))
        before = signal.getsignal(signal.SIGTERM)
        counts = work_loop(service, worker_id="w1", once=True)
        assert counts["processed"] == 1
        assert counts["released"] == 0
        assert signal.getsignal(signal.SIGTERM) is before
