"""Integrity-layer tests for the result store: CRC rows, torn tails, quarantine.

The satellite acceptance case lives here too: a campaign resumed over a store
whose final JSONL line was truncated (the classic SIGKILL artefact) must
quarantine exactly the torn row, keep every intact row, and retry exactly the
torn cell — and appends made *after* the tear must not be corrupted by it.
"""

import json

import pytest

from repro.campaign.executor import run_campaign, simulate_cell
from repro.campaign.spec import Campaign, CampaignCell
from repro.campaign.store import ROW_VERSION, ResultStore, row_crc, stamp_row
from repro.faults import FAULTS_ENV_VAR, InjectedFault, reset_faults
from repro.faults.sites import (
    STORE_APPEND_CORRUPT,
    STORE_APPEND_TORN,
    STORE_REWRITE_CRASH,
)
from repro.pipeline.config import PipelineConfig

UOPS, WARMUP = 400, 100


def _cell(name="integrity_test", workload="gcc") -> CampaignCell:
    config = PipelineConfig(name=name, predictor_name="hybrid-small")
    return CampaignCell(config, workload, UOPS, WARMUP)


def _filled_store(path, cells) -> ResultStore:
    store = ResultStore(path)
    for cell in cells:
        store.put(cell, simulate_cell(cell))
    return store


class TestRowStamping:
    def test_rows_are_stamped_with_version_and_crc(self, tmp_path):
        store = _filled_store(tmp_path / "s.jsonl", [_cell()])
        (line,) = (tmp_path / "s.jsonl").read_text().splitlines()
        record = json.loads(line)
        assert record["v"] == ROW_VERSION
        assert record["crc"] == row_crc(record)

    def test_crc_round_trips_through_json(self):
        record = stamp_row({"fingerprint": "abc", "value": 1.5, "nested": {"x": [1, 2]}})
        reparsed = json.loads(json.dumps(record, sort_keys=True))
        assert row_crc(reparsed) == reparsed["crc"]

    def test_bit_rot_is_quarantined_not_served(self, tmp_path):
        path = tmp_path / "s.jsonl"
        cell = _cell()
        _filled_store(path, [cell])
        text = path.read_text()
        # Flip a digit inside the row body without breaking the JSON syntax.
        rotted = text.replace('"max_uops": 400', '"max_uops": 401', 1)
        assert rotted != text
        path.write_text(rotted)
        reopened = ResultStore(path)
        assert cell.fingerprint not in reopened
        (entry,) = reopened.quarantined()
        assert entry["reason"] == "crc"

    def test_unknown_future_version_is_quarantined(self, tmp_path):
        path = tmp_path / "s.jsonl"
        record = stamp_row({"fingerprint": "future", "result": {}})
        record["v"] = ROW_VERSION + 1
        record.pop("crc")
        record["crc"] = row_crc(record)
        path.write_text(json.dumps(record, sort_keys=True) + "\n")
        store = ResultStore(path)
        assert len(store) == 0
        (entry,) = store.quarantined()
        assert entry["reason"] == "version"

    def test_legacy_unstamped_rows_still_load(self, tmp_path):
        path = tmp_path / "s.jsonl"
        cell = _cell()
        store = _filled_store(path, [cell])
        record = json.loads(path.read_text())
        for key in ("v", "crc"):
            record.pop(key)
        path.write_text(json.dumps(record, sort_keys=True) + "\n")
        reopened = ResultStore(path)
        assert cell.fingerprint in reopened
        assert reopened.unstamped_lines == 1
        assert reopened.get(cell.fingerprint) == store.get(cell.fingerprint)

    def test_compaction_upgrades_legacy_rows(self, tmp_path):
        path = tmp_path / "s.jsonl"
        _filled_store(path, [_cell()])
        record = json.loads(path.read_text())
        for key in ("v", "crc"):
            record.pop(key)
        path.write_text(json.dumps(record, sort_keys=True) + "\n")
        store = ResultStore(path)
        store.compact()
        upgraded = json.loads(path.read_text())
        assert upgraded["v"] == ROW_VERSION
        assert upgraded["crc"] == row_crc(upgraded)
        assert ResultStore(path).unstamped_lines == 0


class TestTornTail:
    def test_later_appends_survive_a_torn_tail(self, tmp_path):
        path = tmp_path / "s.jsonl"
        first, second = _cell(workload="gcc"), _cell(workload="mcf")
        store = _filled_store(path, [first])
        # Tear the tail mid-row, as a crash mid-append would.
        torn = path.read_text()[:-40]
        assert not torn.endswith("\n")
        path.write_text(torn)
        # A fresh handle appends the next row: the heal must put it on its own
        # line instead of gluing it to the torn fragment.
        appender = ResultStore(path)
        appender.put(second, simulate_cell(second))
        reopened = ResultStore(path)
        assert second.fingerprint in reopened
        assert reopened.skipped_lines == 1  # the torn fragment, nothing else
        (entry,) = reopened.quarantined()
        assert entry["reason"] == "parse"

    def test_resume_retries_exactly_the_torn_cell(self, tmp_path):
        campaign = Campaign.from_names(
            ("Baseline_6_64", "EOLE_4_64"),
            "gcc,mcf",
            max_uops=UOPS,
            warmup_uops=WARMUP,
            name="resume",
        )
        path = tmp_path / "campaign.jsonl"
        store = ResultStore(path)
        run_campaign(campaign, store=store, workers=1)
        assert len(store) == 4
        reference = {
            cell.fingerprint: store.get_record(cell.fingerprint)["result"]
            for cell in campaign.cells()
        }
        # Truncate the final line mid-row: exactly one cell is lost.
        lines = path.read_text().splitlines()
        torn_fingerprint = json.loads(lines[-1])["fingerprint"]
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])

        resumed = ResultStore(path)
        assert len(resumed) == 3
        assert torn_fingerprint not in resumed
        outcome = run_campaign(campaign, store=resumed, workers=1)
        # Exactly the torn cell was re-simulated, the other three were reused.
        assert outcome.simulated == 1
        assert outcome.from_store == 3
        final = ResultStore(path)
        assert final.skipped_lines == 1  # the fragment is still quarantined, inert
        for cell in campaign.cells():
            assert final.get_record(cell.fingerprint)["result"] == reference[cell.fingerprint]

    def test_compaction_spills_quarantine_sidecar(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = _filled_store(path, [_cell()])
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "torn-half')
        store = ResultStore(path)
        store.compact()
        sidecar = store.quarantine_path
        assert sidecar.exists()
        (spilled,) = [json.loads(line) for line in sidecar.read_text().splitlines()]
        assert spilled["reason"] == "parse"
        assert spilled["raw"].startswith('{"fingerprint": "torn-half')
        # The data file itself is clean again.
        assert ResultStore(path).skipped_lines == 0


class TestInjectedStoreFaults:
    def test_torn_append_site_tears_and_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, STORE_APPEND_TORN)
        reset_faults()
        path = tmp_path / "s.jsonl"
        cell = _cell()
        store = ResultStore(path)
        with pytest.raises(InjectedFault):
            store.put(cell, simulate_cell(cell))
        monkeypatch.delenv(FAULTS_ENV_VAR)
        reset_faults()
        # The file ends mid-row; a fresh store quarantines the fragment.
        assert not path.read_text().endswith("\n")
        reopened = ResultStore(path)
        assert len(reopened) == 0
        assert reopened.skipped_lines == 1
        # The next append heals the tail (fresh line) and lands intact.
        reopened.put(cell, simulate_cell(cell))
        final = ResultStore(path)
        assert cell.fingerprint in final

    def test_corrupt_append_site_is_silent_but_caught_on_load(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV_VAR, STORE_APPEND_CORRUPT)
        reset_faults()
        path = tmp_path / "s.jsonl"
        cell = _cell()
        store = ResultStore(path)
        store.put(cell, simulate_cell(cell))  # no exception: the worker is fooled
        monkeypatch.delenv(FAULTS_ENV_VAR)
        reset_faults()
        reopened = ResultStore(path)
        assert cell.fingerprint not in reopened
        (entry,) = reopened.quarantined()
        assert entry["reason"] in ("parse", "crc")

    def test_rewrite_crash_site_leaves_data_file_and_tmp_orphan(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "s.jsonl"
        cell = _cell()
        _filled_store(path, [cell])
        before = path.read_text()
        monkeypatch.setenv(FAULTS_ENV_VAR, STORE_REWRITE_CRASH)
        reset_faults()
        with pytest.raises(InjectedFault):
            ResultStore(path).compact()
        monkeypatch.delenv(FAULTS_ENV_VAR)
        reset_faults()
        # The data file is untouched (the rename never ran) and the staged tmp
        # survives, SIGKILL-faithfully, for fsck to sweep.
        assert path.read_text() == before
        orphans = list(tmp_path.glob(".*.tmp"))
        assert len(orphans) == 1
        assert cell.fingerprint in ResultStore(path)
