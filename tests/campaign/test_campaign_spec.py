"""Tests for campaign grid specs, named workload sets and cell fingerprints."""

import pytest

from repro.campaign.spec import (
    BENCH_SUBSET,
    WORKLOAD_SETS,
    Campaign,
    CampaignCell,
    derive_seed,
    resolve_workload_names,
)
from repro.errors import ConfigurationError
from repro.pipeline.config import baseline_6_64, baseline_vp_6_64
from repro.workloads.suite import FAST_SUBSET, SUITE_ORDER


class TestWorkloadSets:
    def test_named_sets_resolve(self):
        assert resolve_workload_names("all") == SUITE_ORDER
        assert resolve_workload_names("subset") == FAST_SUBSET
        assert resolve_workload_names("bench") == BENCH_SUBSET

    def test_int_fp_partition_the_suite(self):
        assert sorted(WORKLOAD_SETS["int"] + WORKLOAD_SETS["fp"]) == sorted(SUITE_ORDER)
        assert len(WORKLOAD_SETS["int"]) == 12
        assert len(WORKLOAD_SETS["fp"]) == 7

    def test_comma_separated_names(self):
        assert resolve_workload_names("mcf, namd") == ("mcf", "namd")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workload_names("mcf,doom")

    def test_empty_selector_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workload_names(" , ")


class TestCampaign:
    def test_cells_cover_the_grid_row_major(self):
        campaign = Campaign(
            name="grid",
            configs=(baseline_6_64(), baseline_vp_6_64()),
            workload_names=("mcf", "namd"),
            max_uops=1000,
            warmup_uops=200,
        )
        assert len(campaign) == 4
        ids = [cell.describe() for cell in campaign.cells()]
        assert ids == [
            "Baseline_6_64/mcf",
            "Baseline_6_64/namd",
            "Baseline_VP_6_64/mcf",
            "Baseline_VP_6_64/namd",
        ]

    def test_from_names_builds_named_configs(self):
        campaign = Campaign.from_names(
            "Baseline_6_64,EOLE_4_64", "subset", max_uops=1000, warmup_uops=0
        )
        assert [config.name for config in campaign.configs] == ["Baseline_6_64", "EOLE_4_64"]
        assert campaign.workload_names == FAST_SUBSET

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Campaign(
                name="bad",
                configs=(baseline_6_64(), baseline_6_64()),
                workload_names=("mcf",),
                max_uops=1000,
                warmup_uops=0,
            )
        with pytest.raises(ConfigurationError):
            Campaign(
                name="bad",
                configs=(baseline_6_64(),),
                workload_names=("doom",),
                max_uops=1000,
                warmup_uops=0,
            )
        with pytest.raises(ConfigurationError):
            Campaign(
                name="bad",
                configs=(baseline_6_64(),),
                workload_names=("mcf",),
                max_uops=100,
                warmup_uops=100,
            )


class TestFingerprints:
    def test_fingerprint_is_stable(self):
        a = CampaignCell(baseline_6_64(), "mcf", 1000, 200)
        b = CampaignCell(baseline_6_64(), "mcf", 1000, 200)
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_varies_with_lengths_and_workload(self):
        base = CampaignCell(baseline_6_64(), "mcf", 1000, 200)
        assert base.fingerprint != CampaignCell(baseline_6_64(), "mcf", 2000, 200).fingerprint
        assert base.fingerprint != CampaignCell(baseline_6_64(), "namd", 1000, 200).fingerprint

    def test_fingerprint_sees_config_parameters_not_just_the_name(self):
        renamed = baseline_vp_6_64().derive(name="Baseline_6_64")
        a = CampaignCell(baseline_6_64(), "mcf", 1000, 200)
        b = CampaignCell(renamed, "mcf", 1000, 200)
        assert a.key == b.key  # same display name and lengths…
        assert a.fingerprint != b.fingerprint  # …but different machines


class TestSeeds:
    def test_no_campaign_seed_keeps_config_seeds(self):
        campaign = Campaign(
            name="grid",
            configs=(baseline_vp_6_64(),),
            workload_names=("mcf",),
            max_uops=1000,
            warmup_uops=0,
        )
        assert campaign.cells()[0].config.predictor_seed == baseline_vp_6_64().predictor_seed

    def test_campaign_seed_derives_distinct_deterministic_cell_seeds(self):
        campaign = Campaign(
            name="grid",
            configs=(baseline_vp_6_64(),),
            workload_names=("mcf", "namd"),
            max_uops=1000,
            warmup_uops=0,
            seed=7,
        )
        seeds = [cell.config.predictor_seed for cell in campaign.cells()]
        assert seeds[0] != seeds[1]
        assert seeds == [cell.config.predictor_seed for cell in campaign.cells()]
        assert seeds[0] == derive_seed(7, "Baseline_VP_6_64", "mcf")
