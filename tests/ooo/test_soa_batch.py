"""Unit tests for the opt-in numpy batch kernels (``repro.ooo.soa_batch``)."""

import pytest

from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.trace import DynInst
from repro.ooo import inflight, soa_batch
from repro.ooo.inflight import ColumnarInflightOpPool
from repro.ooo.soa_batch import (
    batch_available,
    drain_completions_batch,
    record_outcome_counts,
)
from repro.vp.base import PredictorStatistics, VPrediction

pytestmark = pytest.mark.skipif(not batch_available(), reason="numpy unavailable")


def test_flag_constants_mirror_inflight():
    """soa_batch cannot import inflight (layering), so it mirrors the flag bits;
    this is the sync assertion the mirror comment promises."""
    assert soa_batch.F_EXECUTED == inflight.F_EXECUTED
    assert soa_batch.F_SQUASHED == inflight.F_SQUASHED
    assert soa_batch.F2_IN_COMPLETION_WHEEL == inflight.F2_IN_COMPLETION_WHEEL


def _pooled(pool, seq, uop):
    op = pool.acquire(DynInst(seq=seq, pc=seq * 4, uop=uop))
    op.in_completion_wheel = True
    return op


def test_drain_kernel_marks_whole_list_executed():
    pool = ColumnarInflightOpPool()
    ops = [_pooled(pool, seq, MicroOp(Opcode.ADD, dst=1, srcs=(2, 3))) for seq in range(10)]
    assert drain_completions_batch(pool, ops)
    for op in ops:
        assert op.executed
        assert not op.in_completion_wheel


def test_drain_kernel_refuses_stores_and_squashed_untouched():
    pool = ColumnarInflightOpPool()
    with_store = [
        _pooled(pool, 0, MicroOp(Opcode.ADD, dst=1, srcs=(2, 3))),
        _pooled(pool, 1, MicroOp(Opcode.ST, srcs=(1, 2))),
    ]
    assert not drain_completions_batch(pool, with_store)
    squashed = [_pooled(pool, 2, MicroOp(Opcode.ADD, dst=1, srcs=(2, 3)))]
    squashed[0].squashed = True
    assert not drain_completions_batch(pool, squashed)
    # Refusal means *nothing* was mutated — the scalar loop still owns the drain.
    for op in with_store + squashed:
        assert not op.executed
        assert op.in_completion_wheel


def test_outcome_counts_match_scalar_record_outcome():
    predictions = [
        VPrediction(value=7, confident=True, source="t"),
        VPrediction(value=7, confident=False, source="t"),
        VPrediction(value=9, confident=True, source="t"),
        VPrediction(value=9, confident=False, source="t"),
    ]
    actuals = [7, 7, 7, 7]
    counts = record_outcome_counts(actuals, predictions)
    stats = PredictorStatistics()
    for prediction, actual in zip(predictions, actuals):
        stats.record_outcome(prediction, actual)
    assert counts == (stats.correct_used, stats.incorrect_used, stats.unused_correct)


def test_outcome_counts_fall_back_on_none_and_oversized_values():
    good = VPrediction(value=1, confident=True, source="t")
    assert record_outcome_counts([1, 2], [good, None]) is None
    huge = VPrediction(value=1 << 70, confident=True, source="t")
    assert record_outcome_counts([1, 2], [good, huge]) is None
