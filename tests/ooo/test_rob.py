"""Tests for the reorder buffer."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.trace import DynInst
from repro.ooo.inflight import InflightOp
from repro.ooo.rob import ReorderBuffer


def _op(seq: int) -> InflightOp:
    uop = MicroOp(Opcode.ADD, dst=1, srcs=(2, 3))
    return InflightOp(DynInst(seq=seq, pc=seq, uop=uop))


class TestROB:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            ReorderBuffer(capacity=0)

    def test_push_and_pop_in_order(self):
        rob = ReorderBuffer(capacity=4)
        ops = [_op(i) for i in range(3)]
        for op in ops:
            rob.push(op)
        assert rob.occupancy == 3
        assert rob.head() is ops[0]
        assert rob.pop_head() is ops[0]
        assert rob.head() is ops[1]

    def test_has_space(self):
        rob = ReorderBuffer(capacity=2)
        rob.push(_op(0))
        assert rob.has_space(1)
        assert not rob.has_space(2)
        rob.push(_op(1))
        assert not rob.has_space(1)

    def test_overflow_raises(self):
        rob = ReorderBuffer(capacity=1)
        rob.push(_op(0))
        with pytest.raises(SimulationError):
            rob.push(_op(1))

    def test_out_of_order_push_rejected(self):
        rob = ReorderBuffer(capacity=4)
        rob.push(_op(5))
        with pytest.raises(SimulationError):
            rob.push(_op(3))

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            ReorderBuffer().pop_head()

    def test_squash_from_removes_youngest_tail(self):
        rob = ReorderBuffer(capacity=8)
        ops = [_op(i) for i in range(6)]
        for op in ops:
            rob.push(op)
        squashed = rob.squash_from(3)
        assert [op.seq for op in squashed] == [3, 4, 5]
        assert all(op.squashed for op in squashed)
        assert rob.occupancy == 3
        assert [op.seq for op in rob] == [0, 1, 2]

    def test_squash_from_beyond_tail_is_noop(self):
        rob = ReorderBuffer(capacity=4)
        rob.push(_op(0))
        assert rob.squash_from(10) == []
        assert rob.occupancy == 1

    def test_peak_occupancy_tracked(self):
        rob = ReorderBuffer(capacity=4)
        for index in range(3):
            rob.push(_op(index))
        rob.pop_head()
        assert rob.peak_occupancy == 3

    def test_is_empty(self):
        rob = ReorderBuffer(capacity=2)
        assert rob.is_empty
        rob.push(_op(0))
        assert not rob.is_empty
