"""Tests for the load/store queue: forwarding and ordering-violation detection."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.trace import DynInst
from repro.ooo.inflight import InflightOp
from repro.ooo.lsq import LoadStoreQueue


def _load(seq: int, addr: int) -> InflightOp:
    uop = MicroOp(Opcode.LD, dst=1, srcs=(2,), imm=0)
    return InflightOp(DynInst(seq=seq, pc=seq, uop=uop, addr=addr))


def _store(seq: int, addr: int) -> InflightOp:
    uop = MicroOp(Opcode.ST, srcs=(2, 3), imm=0)
    return InflightOp(DynInst(seq=seq, pc=seq, uop=uop, addr=addr))


class TestCapacity:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadStoreQueue(lq_capacity=0)

    def test_space_accounting_per_queue(self):
        lsq = LoadStoreQueue(lq_capacity=1, sq_capacity=1)
        load, store = _load(0, 0x10), _store(1, 0x20)
        assert lsq.has_space(load)
        lsq.insert(load)
        assert not lsq.has_space(_load(2, 0x30))
        assert lsq.has_space(store)  # store queue is separate
        lsq.insert(store)
        assert not lsq.has_space(_store(3, 0x40))

    def test_remove_and_occupancy(self):
        lsq = LoadStoreQueue()
        load = _load(0, 0x10)
        lsq.insert(load)
        assert lsq.load_occupancy == 1
        lsq.remove(load)
        assert lsq.load_occupancy == 0
        lsq.remove(load)  # idempotent

    def test_remove_squashed(self):
        lsq = LoadStoreQueue()
        a, b = _load(0, 0x10), _store(1, 0x20)
        lsq.insert(a)
        lsq.insert(b)
        a.squashed = True
        b.squashed = True
        lsq.remove_squashed()
        assert lsq.load_occupancy == 0 and lsq.store_occupancy == 0


class TestForwarding:
    def test_older_executed_store_forwards_to_load(self):
        lsq = LoadStoreQueue()
        store = _store(1, 0x100)
        store.issued = True
        load = _load(2, 0x100)
        lsq.insert(store)
        lsq.insert(load)
        assert lsq.forwarding_store(load) is store

    def test_unexecuted_store_does_not_forward(self):
        lsq = LoadStoreQueue()
        store = _store(1, 0x100)
        load = _load(2, 0x100)
        lsq.insert(store)
        lsq.insert(load)
        assert lsq.forwarding_store(load) is None
        assert lsq.oldest_conflicting_unissued_store(load) is store

    def test_younger_store_never_forwards(self):
        lsq = LoadStoreQueue()
        load = _load(1, 0x100)
        store = _store(2, 0x100)
        store.issued = True
        lsq.insert(load)
        lsq.insert(store)
        assert lsq.forwarding_store(load) is None

    def test_youngest_older_matching_store_wins(self):
        lsq = LoadStoreQueue()
        old, newer = _store(1, 0x100), _store(2, 0x100)
        old.issued = newer.issued = True
        load = _load(3, 0x100)
        for op in (old, newer, load):
            lsq.insert(op)
        assert lsq.forwarding_store(load) is newer

    def test_different_address_does_not_forward(self):
        lsq = LoadStoreQueue()
        store = _store(1, 0x200)
        store.issued = True
        load = _load(2, 0x100)
        lsq.insert(store)
        lsq.insert(load)
        assert lsq.forwarding_store(load) is None


class TestViolations:
    def test_store_detects_younger_executed_load_to_same_address(self):
        lsq = LoadStoreQueue()
        store = _store(1, 0x300)
        load = _load(2, 0x300)
        load.issued = True
        lsq.insert(store)
        lsq.insert(load)
        assert lsq.detect_violation(store) is load
        assert lsq.violations == 1

    def test_unexecuted_younger_load_is_safe(self):
        lsq = LoadStoreQueue()
        store = _store(1, 0x300)
        load = _load(2, 0x300)
        lsq.insert(store)
        lsq.insert(load)
        assert lsq.detect_violation(store) is None

    def test_forwarded_load_is_not_a_violation(self):
        lsq = LoadStoreQueue()
        store = _store(1, 0x300)
        load = _load(2, 0x300)
        load.issued = True
        load.load_forwarded = True
        lsq.insert(store)
        lsq.insert(load)
        assert lsq.detect_violation(store) is None

    def test_oldest_violating_load_returned(self):
        lsq = LoadStoreQueue()
        store = _store(1, 0x300)
        first, second = _load(2, 0x300), _load(3, 0x300)
        first.issued = second.issued = True
        for op in (store, first, second):
            lsq.insert(op)
        assert lsq.detect_violation(store) is first

    def test_older_load_is_not_flagged(self):
        lsq = LoadStoreQueue()
        load = _load(1, 0x300)
        load.issued = True
        store = _store(2, 0x300)
        lsq.insert(load)
        lsq.insert(store)
        assert lsq.detect_violation(store) is None
