"""Tests for the Store Sets memory-dependence predictor."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.trace import DynInst
from repro.ooo.inflight import InflightOp
from repro.ooo.store_sets import StoreSets

LOAD_PC = 0x100
STORE_PC = 0x200


def _load(seq: int, pc: int = LOAD_PC) -> InflightOp:
    return InflightOp(DynInst(seq=seq, pc=pc, uop=MicroOp(Opcode.LD, dst=1, srcs=(2,), imm=0)))


def _store(seq: int, pc: int = STORE_PC) -> InflightOp:
    return InflightOp(DynInst(seq=seq, pc=pc, uop=MicroOp(Opcode.ST, srcs=(2, 3), imm=0)))


class TestStoreSets:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StoreSets(ssit_entries=0)

    def test_untrained_load_is_unconstrained(self):
        sets = StoreSets()
        assert sets.dependence_for_load(_load(1)) is None

    def test_trained_dependence_is_enforced(self):
        sets = StoreSets()
        sets.train_violation(LOAD_PC, STORE_PC)
        store = _store(5)
        sets.register_store(store)
        dependence = sets.dependence_for_load(_load(6))
        assert dependence is store
        assert sets.predicted_dependences == 1

    def test_dependence_cleared_once_store_executes(self):
        sets = StoreSets()
        sets.train_violation(LOAD_PC, STORE_PC)
        store = _store(5)
        sets.register_store(store)
        store.issued = True
        assert sets.dependence_for_load(_load(6)) is None

    def test_store_executed_clears_lfst_entry(self):
        sets = StoreSets()
        sets.train_violation(LOAD_PC, STORE_PC)
        store = _store(5)
        sets.register_store(store)
        sets.store_executed(store)
        assert sets.dependence_for_load(_load(6)) is None

    def test_squashed_store_is_ignored(self):
        sets = StoreSets()
        sets.train_violation(LOAD_PC, STORE_PC)
        store = _store(5)
        sets.register_store(store)
        store.squashed = True
        assert sets.dependence_for_load(_load(6)) is None

    def test_unrelated_store_does_not_constrain_load(self):
        sets = StoreSets()
        sets.train_violation(LOAD_PC, STORE_PC)
        other_store = _store(5, pc=0x999)
        sets.register_store(other_store)
        assert sets.dependence_for_load(_load(6)) is None

    def test_merging_store_sets(self):
        sets = StoreSets()
        sets.train_violation(LOAD_PC, STORE_PC)
        sets.train_violation(LOAD_PC, 0x300)  # second store joins the load's set
        store_a = _store(1, pc=STORE_PC)
        store_b = _store(2, pc=0x300)
        sets.register_store(store_a)
        sets.register_store(store_b)
        # The LFST entry for the (merged) set now names the most recent store.
        assert sets.dependence_for_load(_load(3)) is store_b

    def test_flush_lfst(self):
        sets = StoreSets()
        sets.train_violation(LOAD_PC, STORE_PC)
        sets.register_store(_store(5))
        sets.flush_lfst()
        assert sets.dependence_for_load(_load(6)) is None

    def test_trained_violation_counter(self):
        sets = StoreSets()
        sets.train_violation(LOAD_PC, STORE_PC)
        sets.train_violation(LOAD_PC, STORE_PC)
        assert sets.trained_violations == 2
