"""Tests for the functional-unit pool."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.opcode import OpClass
from repro.ooo.functional_units import FunctionalUnitConfig, FunctionalUnitPool


class TestConfig:
    def test_defaults_match_table1(self):
        config = FunctionalUnitConfig()
        assert config.alu == 6
        assert config.mul_div == 4
        assert config.fp == 6
        assert config.fp_mul_div == 4
        assert config.mem_ports == 4

    def test_units_for_lookup(self):
        config = FunctionalUnitConfig()
        assert config.units_for(OpClass.INT_ALU) == 6
        assert config.units_for(OpClass.LOAD) == 4
        assert config.units_for(OpClass.FP_MUL) == 4

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            FunctionalUnitPool(FunctionalUnitConfig(alu=0))


class TestIssueLimits:
    def test_per_cycle_alu_limit(self):
        pool = FunctionalUnitPool(FunctionalUnitConfig(alu=2))
        assert pool.try_issue(OpClass.INT_ALU, cycle=1, latency=1)
        assert pool.try_issue(OpClass.INT_ALU, cycle=1, latency=1)
        assert not pool.try_issue(OpClass.INT_ALU, cycle=1, latency=1)
        assert pool.structural_rejects == 1

    def test_counters_reset_each_cycle(self):
        pool = FunctionalUnitPool(FunctionalUnitConfig(alu=1))
        assert pool.try_issue(OpClass.INT_ALU, cycle=1, latency=1)
        assert pool.try_issue(OpClass.INT_ALU, cycle=2, latency=1)

    def test_branches_share_alu_pool(self):
        pool = FunctionalUnitPool(FunctionalUnitConfig(alu=1))
        assert pool.try_issue(OpClass.BR_COND, cycle=3, latency=1)
        assert not pool.try_issue(OpClass.INT_ALU, cycle=3, latency=1)

    def test_memory_port_limit(self):
        pool = FunctionalUnitPool(FunctionalUnitConfig(mem_ports=2))
        assert pool.try_issue(OpClass.LOAD, cycle=0, latency=1)
        assert pool.try_issue(OpClass.STORE, cycle=0, latency=1)
        assert not pool.try_issue(OpClass.LOAD, cycle=0, latency=1)

    def test_unpipelined_divider_blocks_for_full_latency(self):
        pool = FunctionalUnitPool(FunctionalUnitConfig(mul_div=1))
        assert pool.try_issue(OpClass.INT_DIV, cycle=0, latency=25)
        # Pipelined multiplies share the group per-cycle limit, but the single divider
        # stays busy: another divide cannot start before cycle 25.
        assert not pool.try_issue(OpClass.INT_DIV, cycle=10, latency=25)
        assert pool.try_issue(OpClass.INT_DIV, cycle=25, latency=25)

    def test_pipelined_multiplies_issue_back_to_back(self):
        pool = FunctionalUnitPool(FunctionalUnitConfig(mul_div=2))
        assert pool.try_issue(OpClass.INT_MUL, cycle=0, latency=3)
        assert pool.try_issue(OpClass.INT_MUL, cycle=1, latency=3)
        assert pool.try_issue(OpClass.INT_MUL, cycle=2, latency=3)

    def test_fp_divider_unpipelined(self):
        pool = FunctionalUnitPool(FunctionalUnitConfig(fp_mul_div=1))
        assert pool.try_issue(OpClass.FP_DIV, cycle=0, latency=10)
        assert not pool.try_issue(OpClass.FP_DIV, cycle=5, latency=10)
