"""Tests for the in-flight µ-op record."""

from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.trace import DynInst
from repro.ooo.inflight import InflightOp, UNKNOWN_CYCLE
from repro.vp.base import VPrediction


def _op(opcode: Opcode = Opcode.ADD) -> InflightOp:
    dst = 1 if opcode is Opcode.ADD else None
    srcs = (2, 3) if opcode is Opcode.ADD else ()
    return InflightOp(DynInst(seq=0, pc=0, uop=MicroOp(opcode, dst=dst, srcs=srcs)))


class TestInflightOp:
    def test_initial_timing_fields_unknown(self):
        op = _op()
        assert op.dispatch_cycle == UNKNOWN_CYCLE
        assert op.issue_cycle == UNKNOWN_CYCLE
        assert op.complete_cycle == UNKNOWN_CYCLE
        assert not op.issued and not op.executed and not op.squashed

    def test_result_availability_for_normal_execution(self):
        op = _op()
        assert op.result_available_cycle() == UNKNOWN_CYCLE
        op.dispatch_cycle = 5
        op.complete_cycle = 12
        assert op.result_available_cycle() == 12

    def test_result_availability_for_predicted_op(self):
        op = _op()
        op.dispatch_cycle = 5
        op.pred_used = True
        op.prediction = VPrediction(42, True, "test")
        assert op.result_available_cycle() == 5

    def test_result_availability_for_early_executed_op(self):
        op = _op()
        op.dispatch_cycle = 7
        op.early_executed = True
        assert op.result_available_cycle() == 7

    def test_bypasses_ooo_engine(self):
        op = _op()
        assert not op.bypasses_ooo_engine()
        op.early_executed = True
        assert op.bypasses_ooo_engine()
        op.early_executed = False
        op.late_executed = True
        assert op.bypasses_ooo_engine()

    def test_wraps_dynamic_instruction_fields(self):
        op = _op(Opcode.NOP)
        assert op.seq == 0
        assert op.pc == 0
        assert op.uop.opcode is Opcode.NOP
