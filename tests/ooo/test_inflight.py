"""Tests for the in-flight µ-op record."""

from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.trace import DynInst
from repro.ooo.inflight import InflightOp, UNKNOWN_CYCLE
from repro.vp.base import VPrediction


def _op(opcode: Opcode = Opcode.ADD) -> InflightOp:
    dst = 1 if opcode is Opcode.ADD else None
    srcs = (2, 3) if opcode is Opcode.ADD else ()
    return InflightOp(DynInst(seq=0, pc=0, uop=MicroOp(opcode, dst=dst, srcs=srcs)))


class TestInflightOp:
    def test_initial_timing_fields_unknown(self):
        op = _op()
        assert op.dispatch_cycle == UNKNOWN_CYCLE
        assert op.issue_cycle == UNKNOWN_CYCLE
        assert op.complete_cycle == UNKNOWN_CYCLE
        assert not op.issued and not op.executed and not op.squashed

    def test_result_availability_for_normal_execution(self):
        op = _op()
        assert op.result_available_cycle() == UNKNOWN_CYCLE
        op.dispatch_cycle = 5
        op.complete_cycle = 12
        assert op.result_available_cycle() == 12

    def test_result_availability_for_predicted_op(self):
        op = _op()
        op.dispatch_cycle = 5
        op.pred_used = True
        op.prediction = VPrediction(42, True, "test")
        assert op.result_available_cycle() == 5

    def test_result_availability_for_early_executed_op(self):
        op = _op()
        op.dispatch_cycle = 7
        op.early_executed = True
        assert op.result_available_cycle() == 7

    def test_bypasses_ooo_engine(self):
        op = _op()
        assert not op.bypasses_ooo_engine()
        op.early_executed = True
        assert op.bypasses_ooo_engine()
        op.early_executed = False
        op.late_executed = True
        assert op.bypasses_ooo_engine()

    def test_wraps_dynamic_instruction_fields(self):
        op = _op(Opcode.NOP)
        assert op.seq == 0
        assert op.pc == 0
        assert op.uop.opcode is Opcode.NOP


class TestInflightOpPool:
    def _dyn(self, seq: int = 0) -> DynInst:
        return DynInst(seq=seq, pc=seq, uop=MicroOp(Opcode.ADD, dst=1, srcs=(2, 3)))

    def test_acquire_grows_arena_then_recycles(self):
        from repro.ooo.inflight import InflightOpPool

        pool = InflightOpPool()
        first = pool.acquire(self._dyn(0))
        second = pool.acquire(self._dyn(1))
        assert pool.allocated == 2 and first.slot == 0 and second.slot == 1
        pool.release(first)
        assert pool.free_count == 1
        recycled = pool.acquire(self._dyn(2))
        assert recycled is first  # LIFO reuse of the released record
        assert pool.allocated == 2 and pool.free_count == 0

    def test_recycled_record_matches_a_fresh_one(self):
        from repro.ooo.inflight import InflightOpPool

        pool = InflightOpPool()
        op = pool.acquire(self._dyn(0))
        # Dirty every mutable field a pipeline stage touches.
        op.dispatch_cycle = op.complete_cycle = op.avail_cycle = 9
        op.wait_until = 5
        op.iq_waiters = 3
        op.pred_used = op.early_executed = op.late_executed = True
        op.in_issue_queue = op.issued = op.executed = op.squashed = True
        op.dest_bank = 2
        op.load_forwarded = True
        op.producers = (op,)
        op.mem_dependence = op
        pool.release(op)
        dyn = self._dyn(1)
        recycled = pool.acquire(dyn)
        fresh = InflightOp(dyn)
        for name in InflightOp.__slots__:
            if name in ("slot", "fetch_cycle", "dispatch_ready_cycle",
                        "history_snapshot", "issue_cycle", "commit_cycle"):
                continue  # pool-owned / fetch-assigned before any read
            if name in ("dispatch_cycle", "complete_cycle", "wait_until",
                        "unknown_producers", "mem_blocked", "producers",
                        "mem_dependence", "branch_outcome"):
                # Deliberately stale on recycling: a later stage overwrites each
                # of these before any read (see the invariant note in _init).
                continue
            if name == "wake_gen":
                # The wake-up generation deliberately differs on recycling: it is
                # what invalidates stale consumer-list registrations.
                assert recycled.wake_gen > fresh.wake_gen
                continue
            assert getattr(recycled, name) == getattr(fresh, name), name

    def test_retire_defers_until_barrier_drains(self):
        from repro.ooo.inflight import InflightOpPool

        pool = InflightOpPool()
        op = pool.acquire(self._dyn(0))
        pool.retire(op, barrier_seq=7)
        assert pool.deferred_count == 1 and pool.free_count == 0
        pool.promote(oldest_inflight_seq=5)  # ops <= 7 may still read the record
        assert pool.deferred_count == 1 and pool.free_count == 0
        pool.promote(oldest_inflight_seq=8)  # everything <= 7 has drained
        assert pool.deferred_count == 0 and pool.free_count == 1

    def test_promote_with_empty_rob_releases_everything(self):
        from repro.ooo.inflight import InflightOpPool

        pool = InflightOpPool()
        for seq in range(3):
            pool.retire(pool.acquire(self._dyn(seq)), barrier_seq=seq)
        pool.promote(oldest_inflight_seq=None)
        assert pool.deferred_count == 0 and pool.free_count == 3

    def test_simulation_working_set_is_bounded(self):
        from repro.ooo.inflight import InflightOpPool
        from repro.pipeline.config import named_config
        from repro.pipeline.simulator import Simulator
        from repro.workloads.suite import workload

        wl = workload("gcc")
        simulator = Simulator(
            named_config("EOLE_4_64"),
            wl.program,
            max_uops=2000,
            arch_state=wl.make_state(),
            workload_name=wl.name,
        )
        result = simulator.run()
        assert isinstance(simulator.pool, InflightOpPool)
        # Far more µ-ops were fetched than records ever created: the pool recycles.
        assert result.full_stats.fetched_uops >= 2000
        assert simulator.pool.allocated < result.full_stats.fetched_uops / 2
