"""Property test: dependency-driven wake-up selection ≡ the reference full scan.

The :class:`WakeupIssueQueue` must be observably indistinguishable from the
scan-based :class:`IssueQueue` — same selections, in the same order, at the same
cycles, with the same functional-unit interactions — over arbitrary dependence
graphs, including store-set memory dependences, pipeline squashes and replays
with **recycled records** (the pool reuses a squashed µ-op's record for its
re-fetched incarnation, which is exactly what the ``wake_gen`` token guards).

The driver replays one randomly generated scenario twice — once against each
queue implementation — mirroring the simulator's responsibilities (producer
availability resolution at issue, record recycling on squash/replay) and
compares the complete issue trace.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.trace import DynInst
from repro.ooo.functional_units import FunctionalUnitPool
from repro.ooo.inflight import InflightOp, UNKNOWN_CYCLE
from repro.ooo.issue_queue import IssueQueue, WakeupIssueQueue

#: Opcodes used by generated µ-ops: plain ALU, an unpipelined one (exercises the
#: functional-unit busy model), loads and stores (exercise store-set release).
_OPCODES = (Opcode.ADD, Opcode.DIV, Opcode.LD, Opcode.ST)


def _uop_for(opcode: Opcode) -> MicroOp:
    if opcode is Opcode.LD:
        return MicroOp(opcode, dst=1, srcs=(2,), imm=0)
    if opcode is Opcode.ST:
        return MicroOp(opcode, srcs=(2, 3), imm=0)
    if opcode is Opcode.DIV:
        return MicroOp(opcode, dst=1, srcs=(2, 3))
    return MicroOp(opcode, dst=1, srcs=(2, 3))


@st.composite
def scenarios(draw):
    """A scripted stream of dispatch groups, squashes and replays."""
    d2i = draw(st.integers(min_value=0, max_value=3))
    capacity = draw(st.sampled_from([3, 8, 64]))
    issue_width = draw(st.integers(min_value=1, max_value=4))
    cycles = draw(st.integers(min_value=4, max_value=28))
    events = []
    seq = 0
    for _ in range(cycles):
        group = []
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            opcode = draw(st.sampled_from(_OPCODES))
            # Producer/memory dependences reference older seqs; whether each is
            # live, issued or recycled is decided at replay time.
            producers = draw(
                st.lists(
                    st.integers(min_value=max(0, seq - 6), max_value=max(0, seq - 1)),
                    min_size=0,
                    max_size=2,
                    unique=True,
                )
                if seq
                else st.just([])
            )
            mem_dep = (
                draw(st.integers(min_value=max(0, seq - 6), max_value=seq - 1))
                if opcode is Opcode.LD and seq and draw(st.booleans())
                else None
            )
            pred_used = draw(st.booleans()) and opcode is Opcode.ADD
            group.append((seq, opcode, tuple(producers), mem_dep, pred_used))
            seq += 1
        squash_from = (
            draw(st.integers(min_value=0, max_value=seq - 1))
            if seq and draw(st.integers(min_value=0, max_value=9)) == 0
            else None
        )
        events.append((group, squash_from))
    return d2i, capacity, issue_width, events


def _replay(queue, d2i: int, issue_width: int, events) -> list[tuple[int, int, int]]:
    """Drive one queue implementation through the scenario; return the issue trace.

    The driver mirrors the simulator: records recycle through a free list on
    squash (same object, `_init` bumps ``wake_gen``), producers resolve their
    availability at issue, and squashed seqs are re-dispatched (replayed) with
    fresh timing, exactly like a post-squash re-fetch.
    """
    wake = isinstance(queue, WakeupIssueQueue)
    fu_pool = FunctionalUnitPool()
    records: dict[int, InflightOp] = {}
    free: list[InflightOp] = []
    pending: list[tuple[int, Opcode, tuple, int | None, bool]] = []
    trace: list[tuple[int, int, int]] = []
    cycle = 0
    for group, squash_from in events:
        cycle += 1
        # Issue stage first, as in the pipeline.
        selected = queue.select_ready(cycle, issue_width, fu_pool, d2i)
        for op in selected:
            op.complete_cycle = cycle + op.uop.latency
            if not op.pred_used:
                op.avail_cycle = op.complete_cycle
                if wake and op.wake_consumers is not None:
                    queue.producer_available(op)
            trace.append((op.seq, op.issue_cycle, op.complete_cycle))
        # Dispatch stage: replayed (squashed) µ-ops first, then the new group.
        dispatchable = [item for item in pending if item[0] not in records] + list(group)
        pending = [item for item in pending if item[0] in records]
        for item in dispatchable:
            item_seq, opcode, producer_seqs, mem_dep, pred_used = item
            if not queue.has_space():
                pending.append(item)
                continue
            record = free.pop() if free else None
            dyn = DynInst(seq=item_seq, pc=item_seq % 7, uop=_uop_for(opcode))
            if record is None:
                record = InflightOp(dyn)
            else:
                record._init(dyn)  # recycled: same object, bumped wake_gen
            record.dispatch_cycle = cycle
            record.producers = tuple(
                records[p] for p in producer_seqs if p in records
            ) or ()
            if pred_used:
                record.avail_cycle = cycle
                record.pred_used = True
            if mem_dep is not None:
                dependence = records.get(mem_dep)
                if (
                    dependence is not None
                    and dependence.uop.is_store
                    and not dependence.squashed
                    and not dependence.issued
                ):
                    record.mem_dependence = dependence
                else:
                    record.mem_dependence = None
            else:
                record.mem_dependence = None
            records[item_seq] = record
            queue.insert(record)
        # Optional squash: a seq-suffix dies and is replayed later.
        if squash_from is not None:
            replayed = []
            for item_seq in sorted(records):
                if item_seq < squash_from:
                    continue
                record = records.pop(item_seq)
                record.squashed = True
                if record.in_issue_queue:
                    replayed.append(
                        (
                            item_seq,
                            record.uop.opcode,
                            (),
                            None,
                            record.pred_used,
                        )
                    )
                free.append(record)
            queue.remove_squashed()
            # Replays re-enter the front of the pending stream, oldest first.
            pending = replayed + pending
    # Drain: keep scanning until nothing is left or progress stops.
    for _ in range(600):
        if not len(queue):
            break
        cycle += 1
        selected = queue.select_ready(cycle, issue_width, fu_pool, d2i)
        for op in selected:
            op.complete_cycle = cycle + op.uop.latency
            if not op.pred_used:
                op.avail_cycle = op.complete_cycle
                if wake and op.wake_consumers is not None:
                    queue.producer_available(op)
            trace.append((op.seq, op.issue_cycle, op.complete_cycle))
    trace.append(("peak", queue.peak_occupancy, len(queue)))
    trace.append(("rejects", fu_pool.structural_rejects, 0))
    return trace


@given(scenarios())
@settings(max_examples=120, deadline=None)
def test_wakeup_selection_equals_reference_scan(scenario):
    d2i, capacity, issue_width, events = scenario
    reference = _replay(IssueQueue(capacity), d2i, issue_width, events)
    wakeup = _replay(WakeupIssueQueue(capacity, d2i), d2i, issue_width, events)
    assert wakeup == reference


def test_wakeup_env_switch(monkeypatch):
    from repro.ooo.issue_queue import WAKEUP_ENV_VAR, wakeup_lists_enabled

    monkeypatch.delenv(WAKEUP_ENV_VAR, raising=False)
    assert wakeup_lists_enabled()
    monkeypatch.setenv(WAKEUP_ENV_VAR, "0")
    assert not wakeup_lists_enabled()
    monkeypatch.setenv(WAKEUP_ENV_VAR, "1")
    assert wakeup_lists_enabled()


def test_simulator_constructs_requested_queue(monkeypatch):
    from repro.ooo.issue_queue import WAKEUP_ENV_VAR
    from repro.pipeline.config import named_config
    from repro.pipeline.simulator import Simulator
    from repro.workloads.suite import workload

    wl = workload("gcc")
    monkeypatch.setenv(WAKEUP_ENV_VAR, "0")
    sim = Simulator(named_config("Baseline_6_64"), wl.program, max_uops=10)
    assert type(sim.iq) is IssueQueue
    monkeypatch.delenv(WAKEUP_ENV_VAR, raising=False)
    sim = Simulator(named_config("Baseline_6_64"), wl.program, max_uops=10)
    assert type(sim.iq) is WakeupIssueQueue
