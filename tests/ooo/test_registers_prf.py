"""Tests for the banked physical register file and its port budgets."""

import pytest

from repro.errors import ConfigurationError
from repro.ooo.registers import BankedRegisterFile, PRFPortBudget, register_file_area_cost


class TestAreaCost:
    def test_formula_matches_paper_example(self):
        """Section 6.2: EOLE_4_64 without banking needs (24R,12W) ≈ 4x the (20R,8W)-ish baseline."""
        baseline = register_file_area_cost(12, 6)  # 6-issue baseline: 12R, 6W
        eole_unbanked = register_file_area_cost(24, 12)
        assert eole_unbanked / baseline == pytest.approx(4.0, rel=0.05)

    def test_formula_monotone_in_ports(self):
        assert register_file_area_cost(10, 5) < register_file_area_cost(12, 6)


class TestAllocation:
    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            BankedRegisterFile(num_banks=0)
        with pytest.raises(ConfigurationError):
            BankedRegisterFile(num_banks=3, total_registers=256)
        with pytest.raises(ConfigurationError):
            BankedRegisterFile(num_banks=1, total_registers=64, architectural_registers=65)

    def test_round_robin_bank_allocation(self):
        prf = BankedRegisterFile(num_banks=4, total_registers=256)
        banks = [prf.allocate() for _ in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_ops_without_destination_still_advance_the_pointer(self):
        prf = BankedRegisterFile(num_banks=4, total_registers=256)
        prf.allocate()
        prf.advance_without_allocation()
        assert prf.next_bank() == 2

    def test_release_frees_bank_register(self):
        prf = BankedRegisterFile(num_banks=2, total_registers=128)
        bank = prf.allocate()
        occupancy = prf.occupancy(bank)
        prf.release(bank)
        assert prf.occupancy(bank) == occupancy - 1

    def test_bank_exhaustion_detected(self):
        prf = BankedRegisterFile(num_banks=2, total_registers=72, architectural_registers=65)
        # Bank 0 reserves 33 architectural entries out of 36; 3 free registers.
        free_in_bank0 = prf.registers_per_bank - prf.occupancy(0)
        for _ in range(free_in_bank0):
            assert prf.can_allocate()
            prf.allocate()
            prf.advance_without_allocation()  # come back to bank 0
        assert not prf.can_allocate()
        prf.record_bank_full_stall()
        assert prf.bank_full_stalls == 1


class TestPortBudgets:
    def test_unconstrained_budget_always_grants(self):
        prf = BankedRegisterFile(num_banks=4, total_registers=256)
        assert all(prf.try_ee_write(0, cycle=1) for _ in range(100))
        assert prf.try_levt_reads([0, 0, 0, 0, 0], cycle=1)

    def test_ee_write_ports_limited_per_bank_per_cycle(self):
        budget = PRFPortBudget(ee_write_ports_per_bank=2)
        prf = BankedRegisterFile(num_banks=4, total_registers=256, budget=budget)
        assert prf.try_ee_write(0, cycle=5)
        assert prf.try_ee_write(0, cycle=5)
        assert not prf.try_ee_write(0, cycle=5)
        assert prf.try_ee_write(1, cycle=5)  # other bank unaffected
        assert prf.try_ee_write(0, cycle=6)  # next cycle resets
        assert prf.ee_write_port_stalls == 1

    def test_levt_reads_are_all_or_nothing(self):
        budget = PRFPortBudget(levt_read_ports_per_bank=2)
        prf = BankedRegisterFile(num_banks=4, total_registers=256, budget=budget)
        assert prf.try_levt_reads([0, 0], cycle=3)
        # A request needing one more port on bank 0 must not partially consume bank 1.
        assert not prf.try_levt_reads([0, 1], cycle=3)
        assert prf.try_levt_reads([1, 1], cycle=3)
        assert prf.levt_read_port_stalls == 1

    def test_levt_reads_empty_request_granted(self):
        budget = PRFPortBudget(levt_read_ports_per_bank=1)
        prf = BankedRegisterFile(num_banks=2, total_registers=128, budget=budget)
        assert prf.try_levt_reads([], cycle=0)

    def test_port_counters_reset_per_cycle(self):
        budget = PRFPortBudget(levt_read_ports_per_bank=1)
        prf = BankedRegisterFile(num_banks=2, total_registers=128, budget=budget)
        assert prf.try_levt_reads([0], cycle=0)
        assert not prf.try_levt_reads([0], cycle=0)
        assert prf.try_levt_reads([0], cycle=1)
