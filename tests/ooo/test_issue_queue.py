"""Tests for the unified issue queue (scheduler)."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.trace import DynInst
from repro.ooo.functional_units import FunctionalUnitConfig, FunctionalUnitPool
from repro.ooo.inflight import InflightOp
from repro.ooo.issue_queue import IssueQueue


def _op(seq: int, opcode: Opcode = Opcode.ADD) -> InflightOp:
    dst = 1 if opcode not in (Opcode.ST,) else None
    uop = MicroOp(opcode, dst=dst, srcs=(2,) if opcode is not Opcode.ST else (2, 3), imm=0)
    op = InflightOp(DynInst(seq=seq, pc=seq, uop=uop))
    op.dispatch_cycle = 0
    return op


def _always_ready(op, cycle):
    return True


def _latency(op):
    return op.uop.latency


class TestCapacity:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            IssueQueue(capacity=0)

    def test_has_space_and_occupancy(self):
        iq = IssueQueue(capacity=2)
        iq.insert(_op(0))
        assert iq.occupancy == 1
        assert iq.has_space()
        iq.insert(_op(1))
        assert not iq.has_space()
        assert iq.peak_occupancy == 2


class TestSelect:
    def test_issue_width_respected(self):
        iq = IssueQueue(capacity=16)
        for seq in range(10):
            iq.insert(_op(seq))
        pool = FunctionalUnitPool()
        selected = iq.select(5, 4, pool, _always_ready, _latency)
        assert len(selected) == 4
        assert iq.occupancy == 6  # entries released at issue

    def test_oldest_first_selection(self):
        iq = IssueQueue(capacity=16)
        ops = [_op(seq) for seq in range(6)]
        for op in ops:
            iq.insert(op)
        selected = iq.select(1, 3, FunctionalUnitPool(), _always_ready, _latency)
        assert [op.seq for op in selected] == [0, 1, 2]

    def test_not_ready_entries_are_skipped_but_kept(self):
        iq = IssueQueue(capacity=16)
        ops = [_op(seq) for seq in range(4)]
        for op in ops:
            iq.insert(op)
        ready = lambda op, cycle: op.seq % 2 == 1
        selected = iq.select(1, 4, FunctionalUnitPool(), ready, _latency)
        assert [op.seq for op in selected] == [1, 3]
        assert [op.seq for op in iq] == [0, 2]

    def test_functional_unit_limit_blocks_issue(self):
        iq = IssueQueue(capacity=16)
        for seq in range(6):
            iq.insert(_op(seq, Opcode.MUL))
        pool = FunctionalUnitPool(FunctionalUnitConfig(mul_div=2))
        selected = iq.select(1, 6, pool, _always_ready, _latency)
        assert len(selected) == 2

    def test_issue_marks_timing_fields(self):
        iq = IssueQueue(capacity=4)
        op = _op(0)
        iq.insert(op)
        iq.select(7, 1, FunctionalUnitPool(), _always_ready, _latency)
        assert op.issued
        assert op.issue_cycle == 7
        assert not op.in_issue_queue

    def test_squashed_entries_dropped_during_select(self):
        iq = IssueQueue(capacity=8)
        keep, squash = _op(0), _op(1)
        squash.squashed = True
        iq.insert(keep)
        iq.insert(squash)
        selected = iq.select(1, 4, FunctionalUnitPool(), _always_ready, _latency)
        assert selected == [keep]
        assert iq.occupancy == 0

    def test_remove_squashed(self):
        iq = IssueQueue(capacity=8)
        ops = [_op(seq) for seq in range(4)]
        for op in ops:
            iq.insert(op)
        ops[1].squashed = True
        ops[3].squashed = True
        iq.remove_squashed()
        assert [op.seq for op in iq] == [0, 2]

    def test_empty_select(self):
        iq = IssueQueue(capacity=8)
        assert iq.select(1, 4, FunctionalUnitPool(), _always_ready, _latency) == []
