"""Property test: the columnar pool tracks the object-record pool in lockstep.

Hypothesis drives one random alloc/mutate/squash/retire/promote schedule into
both an :class:`InflightOpPool` (object records, the reference) and a
:class:`ColumnarInflightOpPool` (slot-view records over parallel columns).
After every step, every live record pair must agree on every field that the
columnar backend relocated into a column — which pins down the property/bit
mapping, the recycle reset discipline (``_init``), the ``wake_gen`` bump
parity, and the free-list/retirement-barrier bookkeeping shared through the
base class.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.trace import DynInst
from repro.ooo.inflight import (
    COLUMN_FIELDS,
    FLAG_FIELDS,
    ColumnarInflightOpPool,
    InflightOpPool,
)

_OPCODES = (Opcode.ADD, Opcode.LD, Opcode.ST, Opcode.BEQ, Opcode.NOP)

_acquire = st.tuples(
    st.just("acquire"), st.sampled_from(range(len(_OPCODES))), st.integers(0, 2**20)
)
_set_int = st.tuples(
    st.just("set_int"),
    st.sampled_from(sorted(COLUMN_FIELDS)),
    st.integers(-1, 2**40),
    st.integers(0, 2**32),  # live-record selector
)
_set_flag = st.tuples(
    st.just("set_flag"),
    st.sampled_from(sorted(FLAG_FIELDS)),
    st.booleans(),
    st.integers(0, 2**32),
)
_squash = st.tuples(st.just("squash"), st.integers(0, 2**32))
_retire = st.tuples(st.just("retire"), st.integers(0, 2**32))
_promote = st.tuples(st.just("promote"), st.booleans())

_schedule = st.lists(
    st.one_of(_acquire, _set_int, _set_flag, _squash, _retire, _promote),
    min_size=1,
    max_size=60,
)


def _uop(opcode_index: int) -> MicroOp:
    opcode = _OPCODES[opcode_index]
    if opcode is Opcode.ADD:
        return MicroOp(opcode, dst=1, srcs=(2, 3))
    if opcode is Opcode.LD:
        return MicroOp(opcode, dst=1, srcs=(2,))
    if opcode is Opcode.ST:
        return MicroOp(opcode, srcs=(1, 2))
    if opcode is Opcode.BEQ:
        return MicroOp(opcode, srcs=(1, 2), target="loop")
    return MicroOp(opcode)


def _assert_lockstep(reference: InflightOpPool, columnar: ColumnarInflightOpPool, live):
    assert columnar.allocated == reference.allocated
    assert columnar.free_count == reference.free_count
    assert columnar.deferred_count == reference.deferred_count
    pool = columnar
    for ref_op, col_op in live:
        assert col_op.slot == ref_op.slot
        for field in COLUMN_FIELDS:
            assert getattr(col_op, field) == getattr(ref_op, field), field
        for field in FLAG_FIELDS:
            assert getattr(col_op, field) == getattr(ref_op, field), field
        # The tracer/metrics/batch-kernel mirror columns track the record.
        slot = col_op.slot
        assert pool.c_seq[slot] == ref_op.seq
        assert pool.c_pc[slot] == ref_op.pc
        assert pool.c_hot[slot] == ref_op.uop.hot_mask


@settings(max_examples=60, deadline=None)
@given(schedule=_schedule)
def test_columnar_pool_tracks_object_pool_in_lockstep(schedule):
    reference = InflightOpPool()
    columnar = ColumnarInflightOpPool()
    live: list[tuple] = []  # (reference record, columnar record) pairs
    seq = 0
    max_seq = 0
    for command in schedule:
        kind = command[0]
        if kind == "acquire":
            _, opcode_index, pc = command
            dyn = DynInst(seq=seq, pc=pc, uop=_uop(opcode_index))
            max_seq = seq
            seq += 1
            live.append((reference.acquire(dyn), columnar.acquire(dyn)))
        elif kind == "set_int" and live:
            _, field, value, selector = command
            ref_op, col_op = live[selector % len(live)]
            setattr(ref_op, field, value)
            setattr(col_op, field, value)
        elif kind == "set_flag" and live:
            _, field, value, selector = command
            ref_op, col_op = live[selector % len(live)]
            setattr(ref_op, field, value)
            setattr(col_op, field, value)
        elif kind == "squash" and live:
            _, selector = command
            ref_op, col_op = live.pop(selector % len(live))
            ref_op.squashed = True
            col_op.squashed = True
            reference.release(ref_op)
            columnar.release(col_op)
        elif kind == "retire" and live:
            _, selector = command
            ref_op, col_op = live.pop(selector % len(live))
            reference.retire(ref_op, max_seq)
            columnar.retire(col_op, max_seq)
        elif kind == "promote":
            _, drain_all = command
            oldest = None if (drain_all or not live) else min(p[0].seq for p in live)
            reference.promote(oldest)
            columnar.promote(oldest)
        _assert_lockstep(reference, columnar, live)
