"""The event-wheel scheduler: cycle skipping must be real *and* invisible.

The byte-identity of whole-grid results is enforced by
``tests/trace/test_simulation_determinism.py``; these tests pin down the mechanism:
dead cycles are actually skipped (the scheduler is not a no-op), bulk stall
crediting matches per-cycle counting on stall-heavy machines, and the
``REPRO_EVENT_DRIVEN`` switch selects the loop.
"""

import pytest

from repro.pipeline.config import named_config
from repro.pipeline.simulator import (
    EVENT_DRIVEN_ENV_VAR,
    Simulator,
    event_driven_enabled,
)
from repro.workloads.suite import workload

MAX_UOPS, WARMUP = 1500, 300


class _CountingSimulator(Simulator):
    """Counts how many cycles were actually stepped (vs. jumped over)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.stepped_cycles = 0

    def _step(self):
        self.stepped_cycles += 1
        super()._step()


def _run(config, wl, simulator_cls=Simulator, **kwargs):
    simulator = simulator_cls(
        config,
        wl.program,
        max_uops=MAX_UOPS,
        warmup_uops=WARMUP,
        arch_state=wl.make_state(),
        workload_name=wl.name,
        **kwargs,
    )
    return simulator, simulator.run()


def test_event_driven_enabled_env_switch(monkeypatch):
    monkeypatch.delenv(EVENT_DRIVEN_ENV_VAR, raising=False)
    assert event_driven_enabled()
    monkeypatch.setenv(EVENT_DRIVEN_ENV_VAR, "0")
    assert not event_driven_enabled()
    monkeypatch.setenv(EVENT_DRIVEN_ENV_VAR, "1")
    assert event_driven_enabled()


@pytest.mark.parametrize("workload_name", ["milc", "gcc"])
def test_event_wheel_skips_dead_cycles(monkeypatch, workload_name):
    """Stall-heavy runs must step strictly fewer cycles than they simulate."""
    monkeypatch.delenv(EVENT_DRIVEN_ENV_VAR, raising=False)
    simulator, result = _run(named_config("EOLE_4_64"), workload(workload_name),
                             simulator_cls=_CountingSimulator)
    assert simulator.stepped_cycles < result.full_stats.cycles
    assert result.full_stats.cycles > 0


def test_cycle_stepping_reference_steps_every_cycle(monkeypatch):
    monkeypatch.setenv(EVENT_DRIVEN_ENV_VAR, "0")
    simulator, result = _run(named_config("EOLE_4_64"), workload("milc"),
                             simulator_cls=_CountingSimulator)
    assert simulator.stepped_cycles == result.full_stats.cycles


@pytest.mark.parametrize("config_name", ["Baseline_6_64", "Baseline_VP_6_64", "EOLE_4_64"])
@pytest.mark.parametrize("workload_name", ["gcc", "mcf", "milc"])
def test_event_driven_matches_stepping(monkeypatch, config_name, workload_name):
    config = named_config(config_name)
    wl = workload(workload_name)
    monkeypatch.delenv(EVENT_DRIVEN_ENV_VAR, raising=False)
    _, event = _run(config, wl)
    monkeypatch.setenv(EVENT_DRIVEN_ENV_VAR, "0")
    _, stepped = _run(config, wl)
    assert event.to_dict() == stepped.to_dict()


def test_bulk_stall_crediting_on_tiny_rob(monkeypatch):
    """A machine whose ROB fills constantly exercises the skipped-span crediting:
    per-cycle dispatch-stall counters must match the reference loop exactly."""
    config = named_config("Baseline_VP_6_64").derive(rob_size=12, iq_size=8)
    wl = workload("milc")
    monkeypatch.delenv(EVENT_DRIVEN_ENV_VAR, raising=False)
    _, event = _run(config, wl)
    monkeypatch.setenv(EVENT_DRIVEN_ENV_VAR, "0")
    _, stepped = _run(config, wl)
    assert event.full_stats.rob_full_stalls == stepped.full_stats.rob_full_stalls
    assert event.full_stats.rob_full_stalls > 0
    assert event.to_dict() == stepped.to_dict()
