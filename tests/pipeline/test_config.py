"""Tests for pipeline configurations, including the paper's named machines (Table 1)."""

import pytest

from repro.core.eole import EOLEVariant, eole_config
from repro.errors import ConfigurationError
from repro.pipeline.config import (
    NAMED_CONFIGS,
    PipelineConfig,
    baseline_6_64,
    baseline_vp_4_64,
    baseline_vp_6_48,
    baseline_vp_6_64,
    eoe_4_64,
    eole_4_64,
    eole_4_64_4ports_4banks,
    eole_4_64_banked,
    eole_6_48,
    eole_6_64,
    named_config,
    ole_4_64,
)
from repro.vp.hybrid import VTAGE2DStrideHybrid


class TestTable1Defaults:
    """Structural reproduction of Table 1's baseline machine parameters."""

    def test_widths(self):
        config = baseline_6_64()
        assert config.fetch_width == 8
        assert config.rename_width == 8
        assert config.commit_width == 8
        assert config.issue_width == 6
        assert config.max_taken_branches_per_cycle == 2

    def test_window_sizes(self):
        config = baseline_6_64()
        assert config.rob_size == 192
        assert config.iq_size == 64
        assert config.lq_size == 48 and config.sq_size == 48

    def test_functional_units(self):
        fu = baseline_6_64().functional_units
        assert (fu.alu, fu.mul_div, fu.fp, fu.fp_mul_div, fu.mem_ports) == (6, 4, 6, 4, 4)

    def test_memory_hierarchy_latencies(self):
        memory = baseline_6_64().memory
        assert memory.l1d_latency == 2
        assert memory.l2_latency == 12
        assert memory.dram_min_latency == 75
        assert memory.dram_max_latency == 185
        assert memory.prefetch_degree == 8

    def test_front_end_depth_gives_19_cycle_fetch_to_commit(self):
        config = baseline_6_64()
        fetch_to_commit = (
            config.fetch_to_dispatch_latency
            + config.dispatch_to_issue_latency
            + 1  # execute
            + config.writeback_to_commit_latency
        )
        assert fetch_to_commit == 19
        assert not config.has_levt_stage

    def test_vp_configs_add_the_levt_stage(self):
        assert baseline_vp_6_64().has_levt_stage
        assert eole_4_64().has_levt_stage


class TestNamedConfigs:
    def test_all_paper_labels_present(self):
        for label in (
            "Baseline_6_64",
            "Baseline_VP_6_64",
            "Baseline_VP_4_64",
            "Baseline_VP_6_48",
            "EOLE_6_64",
            "EOLE_4_64",
            "EOLE_6_48",
            "EOLE_4_64_4ports_4banks",
            "OLE_4_64",
            "EOE_4_64",
        ):
            assert label in NAMED_CONFIGS
            assert named_config(label).name == label

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            named_config("EOLE_128_wide")

    def test_issue_width_and_iq_variants(self):
        assert baseline_vp_4_64().issue_width == 4
        assert baseline_vp_6_48().iq_size == 48
        assert eole_4_64().issue_width == 4
        assert eole_6_48().iq_size == 48
        assert eole_6_64().issue_width == 6

    def test_eole_variants(self):
        assert eole_4_64().eole.variant is EOLEVariant.EOLE
        assert ole_4_64().eole.variant is EOLEVariant.OLE
        assert eoe_4_64().eole.variant is EOLEVariant.EOE

    def test_banked_design_point(self):
        config = eole_4_64_4ports_4banks()
        assert config.prf_banks == 4
        assert config.levt_read_ports_per_bank == 4
        assert config.ee_write_ports_per_bank == 2

    def test_banked_factory_naming(self):
        config = eole_4_64_banked(banks=8, levt_ports_per_bank=3)
        assert "8banks" in config.name and "3ports" in config.name


class TestValidationAndFactories:
    def test_eole_requires_value_prediction(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(value_prediction=False, eole=eole_config(EOLEVariant.EOLE))

    def test_invalid_widths_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(issue_width=0)

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(value_prediction=True, predictor_name="oracle")

    def test_make_predictor_returns_hybrid_by_default(self):
        predictor = baseline_vp_6_64().make_predictor()
        assert isinstance(predictor, VTAGE2DStrideHybrid)

    def test_derive_creates_modified_copy(self):
        base = baseline_6_64()
        derived = base.derive(issue_width=4, name="custom")
        assert derived.issue_width == 4 and derived.name == "custom"
        assert base.issue_width == 6

    def test_frontend_capacity(self):
        config = baseline_6_64()
        assert config.frontend_capacity == config.fetch_to_dispatch_latency * config.fetch_width
