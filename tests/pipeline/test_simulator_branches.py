"""Branch handling in the timing simulator: penalties, redirects, calls and returns."""

from repro.isa.builder import ProgramBuilder
from repro.workloads.kernels import RANDOM_BASE
from tests.conftest import build_counted_loop, run_simulation, small_config


def _predictable_branch_loop():
    def body(b: ProgramBuilder) -> None:
        for index in range(6):
            b.movi(f"r{10 + index}", index)

    return build_counted_loop(body, name="predictable_branches")


def _unpredictable_branch_loop():
    """Branches on pseudo-random memory content: frequent mispredictions."""
    b = ProgramBuilder("unpredictable_branches")
    b.movi("r1", 0)
    b.movi("r2", 0)
    b.label("loop")
    b.addi("r2", "r2", 8)
    b.and_("r2", "r2", imm=(1 << 12) - 1)
    b.ld("r3", "r2", RANDOM_BASE)
    b.and_("r4", "r3", imm=1)
    b.cmp("r4", imm=0)
    b.beq("skip")
    b.addi("r5", "r5", 1)
    b.label("skip")
    for index in range(6):
        b.movi(f"r{10 + index}", index)
    b.addi("r1", "r1", 1)
    b.cmp("r1", imm=1 << 40)
    b.bne("loop")
    return b.build()


def _call_loop():
    b = ProgramBuilder("calls")
    b.jmp("main")
    b.label("leaf")
    b.addi("r3", "r3", 1)
    b.ret()
    b.label("main")
    b.movi("r1", 0)
    b.label("loop")
    b.call("leaf")
    b.addi("r1", "r1", 1)
    b.cmp("r1", imm=1 << 40)
    b.bne("loop")
    return b.build()


class TestConditionalBranches:
    def test_predictable_loop_has_few_mispredictions(self):
        result = run_simulation(small_config(), _predictable_branch_loop(), max_uops=1500)
        assert result.stats.branch_mispredictions < 10
        assert result.tage_misprediction_rate < 0.05

    def test_unpredictable_branches_cost_performance(self):
        good = run_simulation(small_config(), _predictable_branch_loop(), max_uops=1500)
        bad = run_simulation(small_config(), _unpredictable_branch_loop(), max_uops=1500)
        assert bad.stats.branch_mispredictions > 20
        assert bad.ipc < good.ipc * 0.8

    def test_misprediction_penalty_scale(self):
        """Each misprediction should cost roughly the front-end refill (~20 cycles)."""
        result = run_simulation(small_config(), _unpredictable_branch_loop(), max_uops=2000)
        stats = result.stats
        minimum_cycles = stats.committed_uops / small_config().commit_width
        extra_cycles = stats.cycles - minimum_cycles
        assert extra_cycles > stats.branch_mispredictions * 10

    def test_decode_redirects_counted_for_first_taken_encounter(self):
        result = run_simulation(small_config(), _predictable_branch_loop(), max_uops=800)
        assert result.stats.decode_redirects >= 1


class TestCallsAndReturns:
    def test_call_return_loop_runs_at_reasonable_ipc(self):
        result = run_simulation(small_config(), _call_loop(), max_uops=1200)
        assert result.stats.committed_branches > 300
        assert result.ipc > 1.0

    def test_branch_mispredictions_rare_with_ras(self):
        result = run_simulation(small_config(), _call_loop(), max_uops=1200)
        assert result.stats.branch_mispredictions < 10
