"""Basic timing-simulator behaviour: termination, determinism, IPC bounds."""

import pytest

from repro.errors import SimulationError
from repro.isa.builder import ProgramBuilder
from repro.pipeline.simulator import Simulator
from tests.conftest import build_counted_loop, predictable_chain_loop, run_simulation, small_config


def _serial_chain_loop(chain_ops: int = 8):
    def body(b: ProgramBuilder) -> None:
        for _ in range(chain_ops):
            b.addi("r10", "r10", 1)

    return build_counted_loop(body, name="serial")


def _independent_ops_loop(ops: int = 12):
    def body(b: ProgramBuilder) -> None:
        for index in range(ops):
            b.movi(f"r{8 + index % 16}", index)

    return build_counted_loop(body, name="independent")


class TestTermination:
    def test_commits_exactly_requested_uops(self, simple_loop):
        result = run_simulation(small_config(), simple_loop, max_uops=500)
        assert result.stats.committed_uops == 500

    def test_short_program_drains_completely(self):
        b = ProgramBuilder("short")
        for index in range(10):
            b.movi(f"r{index + 1}", index)
        result = run_simulation(small_config(), b.build(), max_uops=1000)
        assert result.stats.committed_uops == 10

    def test_warmup_window_excluded_from_stats(self, simple_loop):
        full = run_simulation(small_config(), simple_loop, max_uops=1000, warmup_uops=0)
        windowed = run_simulation(small_config(), simple_loop, max_uops=1000, warmup_uops=400)
        assert windowed.stats.committed_uops == 600
        assert windowed.full_stats.committed_uops == 1000
        assert windowed.stats.cycles < full.stats.cycles

    def test_warmup_must_be_smaller_than_run(self, simple_loop):
        with pytest.raises(SimulationError):
            Simulator(small_config(), simple_loop, max_uops=100, warmup_uops=100)


class TestDeterminism:
    def test_identical_runs_produce_identical_cycle_counts(self, simple_loop):
        first = run_simulation(small_config(), simple_loop, max_uops=800)
        second = run_simulation(small_config(), simple_loop, max_uops=800)
        assert first.stats.cycles == second.stats.cycles
        assert first.stats.early_executed == second.stats.early_executed


class TestIPCBounds:
    def test_ipc_never_exceeds_commit_width(self, simple_loop):
        result = run_simulation(small_config(), simple_loop, max_uops=1000)
        assert 0 < result.ipc <= small_config().commit_width

    def test_serial_chain_is_dependence_bound(self):
        result = run_simulation(small_config(), _serial_chain_loop(8), max_uops=1200)
        # 8 chained adds + 3 loop-control µ-ops per iteration over ~8 serial cycles.
        assert 1.0 < result.ipc < 2.0

    def test_independent_ops_are_issue_width_bound(self):
        narrow = run_simulation(small_config(issue_width=2), _independent_ops_loop(), max_uops=1500)
        wide = run_simulation(small_config(issue_width=6), _independent_ops_loop(), max_uops=1500)
        assert narrow.ipc <= 2.05
        assert wide.ipc > narrow.ipc * 1.5

    def test_smaller_iq_never_helps(self):
        big = run_simulation(small_config(iq_size=64), _independent_ops_loop(), max_uops=1500)
        tiny = run_simulation(small_config(iq_size=4), _independent_ops_loop(), max_uops=1500)
        assert tiny.ipc <= big.ipc + 1e-9

    def test_smaller_rob_never_helps(self):
        big = run_simulation(small_config(rob_size=192), _serial_chain_loop(), max_uops=1200)
        tiny = run_simulation(small_config(rob_size=16), _serial_chain_loop(), max_uops=1200)
        assert tiny.ipc <= big.ipc + 1e-9


class TestAccounting:
    def test_committed_class_counts_are_consistent(self, simple_loop):
        result = run_simulation(small_config(), simple_loop, max_uops=900)
        stats = result.stats
        assert stats.committed_branches > 0
        assert stats.committed_cond_branches <= stats.committed_branches
        assert stats.committed_vp_eligible <= stats.committed_uops
        assert stats.fetched_uops >= stats.committed_uops

    def test_architectural_event_counts_identical_across_configs(self, simple_loop):
        """The simulator is trace-driven: committed instruction mix is config-invariant."""
        narrow = run_simulation(small_config(issue_width=1), simple_loop, max_uops=800)
        wide = run_simulation(small_config(issue_width=8), simple_loop, max_uops=800)
        assert narrow.stats.committed_branches == wide.stats.committed_branches
        assert narrow.stats.committed_loads == wide.stats.committed_loads
        assert narrow.stats.committed_stores == wide.stats.committed_stores

    def test_result_carries_structure_metadata(self, simple_loop):
        result = run_simulation(small_config(), simple_loop, max_uops=500)
        assert result.extra["rob_peak_occupancy"] > 0
        assert result.config_name == "test_config"
        assert result.workload_name == "predictable_chain"

    def test_no_vp_machine_reports_no_predictions(self, simple_loop):
        result = run_simulation(small_config(value_prediction=False), simple_loop, max_uops=500)
        assert result.stats.predictions_used == 0
        assert result.predictor_coverage == 0.0
