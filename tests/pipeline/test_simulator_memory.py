"""Memory behaviour in the timing simulator: cache latencies, forwarding, violations."""

from repro.isa.builder import ProgramBuilder
from repro.isa.emulator import ArchState
from tests.conftest import build_counted_loop, run_simulation, small_config


def _l1_resident_load_loop():
    def body(b: ProgramBuilder) -> None:
        b.addi("r2", "r2", 8)
        b.and_("r2", "r2", imm=(1 << 9) - 1)  # 512-byte footprint
        b.ld("r3", "r2", 0x1000)
        b.add("r4", "r4", "r3")

    return build_counted_loop(body, name="l1_loads")


def _dram_pointer_chase(words: int = 1 << 16):
    b = ProgramBuilder("chase")
    b.movi("r1", 0)
    b.movi("r4", 0x100000)
    b.label("loop")
    b.ld("r4", "r4", 0)
    b.addi("r1", "r1", 1)
    b.cmp("r1", imm=1 << 40)
    b.bne("loop")
    program = b.build()
    state = ArchState()
    step = (words // 2) + 1
    for index in range(words):
        successor = (index * 5 + step) % words
        state.write_mem(0x100000 + 8 * index, 0x100000 + 8 * successor)
    return program, state


def _store_load_same_address_loop():
    """A store immediately followed by a load of the same address: forwarding territory."""

    def body(b: ProgramBuilder) -> None:
        b.addi("r2", "r2", 8)
        b.and_("r2", "r2", imm=(1 << 10) - 1)
        b.addi("r5", "r5", 3)
        b.st("r2", "r5", 0x2000)
        b.ld("r6", "r2", 0x2000)
        b.add("r7", "r7", "r6")

    return build_counted_loop(body, name="store_load")


class TestCacheLatency:
    def test_l1_resident_loop_is_fast(self):
        result = run_simulation(small_config(), _l1_resident_load_loop(), max_uops=1400)
        assert result.ipc > 1.5
        assert result.l1d_miss_rate < 0.2

    def test_dram_chase_is_memory_latency_bound(self):
        program, state = _dram_pointer_chase()
        result = run_simulation(
            small_config(), program, max_uops=800, arch_state=state
        )
        assert result.ipc < 0.25
        assert result.l2_miss_rate > 0.5

    def test_committed_loads_counted(self):
        result = run_simulation(small_config(), _l1_resident_load_loop(), max_uops=700)
        assert result.stats.committed_loads > 90


class TestStoreToLoadInteraction:
    def test_forwarding_happens_for_read_after_write(self):
        result = run_simulation(small_config(), _store_load_same_address_loop(), max_uops=1800)
        assert result.stats.forwarded_loads > 0

    def test_memory_order_violations_are_bounded_by_store_sets(self):
        result = run_simulation(small_config(), _store_load_same_address_loop(), max_uops=1800)
        stats = result.stats
        # Early violations may occur, after which Store Sets serialises the pair.
        assert stats.memory_order_violations < stats.committed_loads * 0.2
        assert stats.committed_uops == 1800

    def test_store_counts(self):
        result = run_simulation(small_config(), _store_load_same_address_loop(), max_uops=900)
        assert result.stats.committed_stores > 80
