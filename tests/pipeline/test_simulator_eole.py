"""EOLE behaviour in the pipeline: offload, issue-width reduction, port constraints."""

import pytest

from repro.core.eole import EOLEVariant, eole_config
from repro.isa.builder import ProgramBuilder
from tests.conftest import build_counted_loop, run_simulation, small_config


def _offload_friendly_loop(chain_ops: int = 8, immediates: int = 6):
    """Predictable chain (Late Execution) plus immediate-fed work (Early Execution)."""

    def body(b: ProgramBuilder) -> None:
        for _ in range(chain_ops):
            b.addi("r10", "r10", 5)
        previous = None
        for index in range(immediates):
            dst = f"r{16 + index % 8}"
            if previous is None or index % 2 == 0:
                b.movi(dst, 0x40 + index)
            else:
                b.addi(dst, previous, 1)
            previous = dst

    return build_counted_loop(body, name="offload_friendly")


def _eole(variant=EOLEVariant.EOLE, **overrides):
    return small_config(
        value_prediction=True,
        eole=eole_config(variant),
        **overrides,
    )


class TestOffload:
    def test_early_and_late_execution_both_occur(self):
        result = run_simulation(_eole(), _offload_friendly_loop(), max_uops=2500)
        stats = result.stats
        assert stats.early_executed > 0
        assert stats.late_executed_alu > 0
        assert stats.late_resolved_branches > 0
        assert 0.1 < stats.offload_ratio < 0.9

    def test_offloaded_uops_do_not_enter_the_issue_queue(self):
        result = run_simulation(_eole(), _offload_friendly_loop(), max_uops=2500)
        stats = result.stats
        offloaded = stats.early_executed + stats.late_executed_alu + stats.late_resolved_branches
        # Offloaded µ-ops never take an IQ slot; re-dispatch after the (rare) squashes is
        # the only reason the two sides may not add up exactly to the committed count.
        assert offloaded > 0
        assert stats.dispatched_to_iq < stats.committed_uops
        assert stats.dispatched_to_iq + offloaded <= stats.fetched_uops + stats.squashed_uops

    def test_baseline_vp_machine_offloads_nothing(self):
        result = run_simulation(
            small_config(value_prediction=True), _offload_friendly_loop(), max_uops=1500
        )
        assert result.stats.offload_ratio == 0.0

    def test_eole_share_tracks_value_predictability(self):
        def unpredictable_body(b: ProgramBuilder) -> None:
            # A serial chain through pseudo-random memory: not predictable, not EE-able.
            for _ in range(4):
                b.and_("r5", "r4", imm=(1 << 11) - 8)
                b.ld("r4", "r5", 0x80000)
                b.add("r6", "r6", "r4")

        unpredictable = build_counted_loop(unpredictable_body, name="unpredictable")
        predictable = run_simulation(_eole(), _offload_friendly_loop(8, 6), max_uops=2500)
        hostile = run_simulation(_eole(), unpredictable, max_uops=2500)
        # Offload is driven by value predictability (Section 3.4: 10%-60% across SPEC).
        assert predictable.stats.offload_ratio > hostile.stats.offload_ratio + 0.2


class TestIssueWidthReduction:
    def test_eole_4_matches_vp_6_on_offload_friendly_code(self):
        """The paper's headline claim at test scale (Section 5.2)."""
        program = _offload_friendly_loop()
        vp6 = run_simulation(
            small_config(value_prediction=True, issue_width=6), program, max_uops=3000
        )
        vp4 = run_simulation(
            small_config(value_prediction=True, issue_width=4), program, max_uops=3000
        )
        eole4 = run_simulation(_eole(issue_width=4), program, max_uops=3000)
        assert eole4.ipc >= vp4.ipc - 1e-9
        assert eole4.ipc >= vp6.ipc * 0.95

    def test_eole_variants_all_run(self):
        program = _offload_friendly_loop()
        full = run_simulation(_eole(EOLEVariant.EOLE, issue_width=4), program, max_uops=2000)
        ole = run_simulation(_eole(EOLEVariant.OLE, issue_width=4), program, max_uops=2000)
        eoe = run_simulation(_eole(EOLEVariant.EOE, issue_width=4), program, max_uops=2000)
        assert ole.stats.early_executed == 0 and ole.stats.late_executed_alu > 0
        assert eoe.stats.late_executed_alu == 0 and eoe.stats.early_executed > 0
        assert full.stats.offload_ratio >= max(
            ole.stats.offload_ratio, eoe.stats.offload_ratio
        )


class TestPortAndBankConstraints:
    def test_unconstrained_and_generous_ports_are_equivalent_or_close(self):
        program = _offload_friendly_loop()
        free = run_simulation(_eole(issue_width=4), program, max_uops=2000)
        banked = run_simulation(
            _eole(issue_width=4, prf_banks=4, levt_read_ports_per_bank=4,
                  ee_write_ports_per_bank=2),
            program,
            max_uops=2000,
        )
        assert banked.ipc >= free.ipc * 0.95

    def test_severely_limited_levt_ports_cost_performance(self):
        program = _offload_friendly_loop()
        generous = run_simulation(
            _eole(issue_width=4, prf_banks=4, levt_read_ports_per_bank=4), program, max_uops=2000
        )
        starved = run_simulation(
            _eole(issue_width=4, prf_banks=1, levt_read_ports_per_bank=1), program, max_uops=2000
        )
        assert starved.stats.levt_port_stalls > 0
        assert starved.ipc <= generous.ipc

    def test_late_execution_alu_budget_enforced(self):
        program = _offload_friendly_loop()
        config = small_config(
            value_prediction=True,
            issue_width=4,
            eole=eole_config(EOLEVariant.EOLE, le_alus=1),
        )
        result = run_simulation(config, program, max_uops=2000)
        assert result.stats.committed_uops == 2000
        assert result.stats.late_alu_stalls > 0

    def test_banked_prf_with_many_banks_still_correct(self):
        program = _offload_friendly_loop()
        result = run_simulation(_eole(issue_width=4, prf_banks=8), program, max_uops=1500)
        assert result.stats.committed_uops == 1500


class TestHighConfidenceBranchOffload:
    def test_branch_offload_can_be_disabled(self):
        program = _offload_friendly_loop()
        with_branches = run_simulation(_eole(), program, max_uops=2000)
        config = small_config(
            value_prediction=True,
            eole=eole_config(EOLEVariant.EOLE, resolve_high_confidence_branches=False),
        )
        without_branches = run_simulation(config, program, max_uops=2000)
        assert with_branches.stats.late_resolved_branches > 0
        assert without_branches.stats.late_resolved_branches == 0
