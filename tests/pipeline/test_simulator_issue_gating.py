"""The event-gated issue scan must be invisible: results identical to scanning
every cycle, for any dispatch-to-issue latency.

Regression guard for the wake-loss bug where a no-op scan discarded the known
maturity deadline of entries still inside ``dispatch_to_issue_latency`` (>= 2),
delaying their issue to the next unrelated pipeline event.
"""

import pytest

from repro.pipeline.config import named_config
from repro.pipeline.simulator import Simulator
from repro.workloads.suite import workload

MAX_UOPS, WARMUP = 1500, 300


class _UngatedSimulator(Simulator):
    """Reference: force the IQ scan on every cycle (the pre-gating behaviour)."""

    def _issue(self):
        self._iq_scan_from = self.cycle
        super()._issue()


def _run(simulator_cls, config, wl):
    return simulator_cls(
        config,
        wl.program,
        max_uops=MAX_UOPS,
        warmup_uops=WARMUP,
        arch_state=wl.make_state(),
        workload_name=wl.name,
    ).run()


@pytest.mark.parametrize("dispatch_to_issue_latency", [1, 2, 3, 5])
@pytest.mark.parametrize("workload_name", ["gcc", "mcf", "hmmer"])
def test_gated_scan_matches_every_cycle_scan(dispatch_to_issue_latency, workload_name):
    config = named_config("Baseline_VP_6_64").derive(
        dispatch_to_issue_latency=dispatch_to_issue_latency
    )
    wl = workload(workload_name)
    gated = _run(Simulator, config, wl)
    ungated = _run(_UngatedSimulator, config, wl)
    assert gated.to_dict() == ungated.to_dict()


@pytest.mark.parametrize("config_name", ["Baseline_6_64", "EOLE_4_64"])
def test_gated_scan_matches_on_named_configs(config_name):
    wl = workload("gcc")
    config = named_config(config_name)
    assert _run(Simulator, config, wl).to_dict() == _run(
        _UngatedSimulator, config, wl
    ).to_dict()
