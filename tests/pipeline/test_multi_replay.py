"""MultiSimulator unit behaviour + hypothesis lockstep against the serial engine.

The determinism grid (tests/trace/test_simulation_determinism.py) covers the
hand-written suite; here hypothesis drives one config plane of the multi engine
against a serial :class:`Simulator` on *random* programs, and the unit tests pin
the engine's contract: plane ordering, scheduler windows, the resumable
``advance`` API, and the env switches.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.pipeline.config import PipelineConfig, named_config
from repro.pipeline.multi_replay import (
    MULTI_REPLAY_ENV_VAR,
    MULTI_REPLAY_WIDTH_ENV_VAR,
    MultiSimulator,
    PlaneSpec,
    multi_replay_enabled,
    multi_replay_width,
)
from repro.pipeline.simulator import SimulationError, Simulator
from repro.trace.cache import shared_trace_cache
from repro.workloads.generator import RandomProgramGenerator
from repro.workloads.suite import workload

SEEDS = st.integers(min_value=0, max_value=10_000)
WINDOWS = st.integers(min_value=1, max_value=2_000)


def _small_config(**overrides) -> PipelineConfig:
    defaults = dict(name="multi_prop", predictor_name="hybrid-small")
    defaults.update(overrides)
    return PipelineConfig(**defaults)


@settings(max_examples=8, deadline=None)
@given(SEEDS, WINDOWS)
def test_lockstep_plane_matches_serial_simulator_on_random_programs(seed, window):
    """One plane of the multi engine, advanced in arbitrary windows, is
    byte-identical to a serial run of the same configuration — the resumable
    loops re-enter without losing or double-counting any state."""
    program = RandomProgramGenerator(seed).generate(body_ops=25)
    config = _small_config(value_prediction=True)
    serial = Simulator(config, program, max_uops=600).run()
    multi = MultiSimulator(
        [PlaneSpec(config, 600)], program, window=window
    )
    (plane_result,) = multi.run()
    assert plane_result.to_dict() == serial.to_dict()


@settings(max_examples=6, deadline=None)
@given(SEEDS, WINDOWS)
def test_lockstep_planes_are_independent_on_random_programs(seed, window):
    """Two differently shaped planes interleaved over one pass each match their
    own serial twin — no cross-plane state leaks through the scheduler."""
    program = RandomProgramGenerator(seed).generate(body_ops=20)
    narrow = _small_config(name="narrow", issue_width=2, iq_size=16)
    wide = _small_config(name="wide", value_prediction=True, issue_width=6)
    serial = [
        Simulator(config, program, max_uops=500).run().to_dict()
        for config in (narrow, wide)
    ]
    multi = MultiSimulator(
        [PlaneSpec(narrow, 500), PlaneSpec(wide, 500)], program, window=window
    )
    assert [result.to_dict() for result in multi.run()] == serial


def test_results_keep_plane_order():
    wl = workload("gcc")
    configs = [named_config(name) for name in ("EOLE_4_64", "Baseline_6_64")]
    trace = shared_trace_cache.trace_for_many(wl, [(800, c) for c in configs])
    multi = MultiSimulator(
        [PlaneSpec(config, 800) for config in configs],
        wl.program,
        workload_name=wl.name,
        trace=trace,
    )
    results = multi.run()
    assert [result.config_name for result in results] == [
        "EOLE_4_64",
        "Baseline_6_64",
    ]
    assert all(result.workload_name == "gcc" for result in results)
    assert all(seconds > 0 for seconds in multi.plane_seconds)
    shared_trace_cache.clear()


def test_advance_is_resumable_and_result_guards_completion(simple_loop):
    config = _small_config()
    reference = Simulator(config, simple_loop, max_uops=400).run()
    sim = Simulator(config, simple_loop, max_uops=400)
    with pytest.raises(SimulationError):
        sim.result()  # nothing has run yet
    finished = sim.advance(stop_cycle=50)
    assert not finished and sim.cycle >= 50
    while not sim.advance(sim.cycle + 64):
        pass
    assert sim.result().to_dict() == reference.to_dict()


def test_constructor_rejects_empty_and_bad_window(simple_loop):
    with pytest.raises(ValueError):
        MultiSimulator([], simple_loop)
    with pytest.raises(ValueError):
        MultiSimulator([PlaneSpec(_small_config(), 200)], simple_loop, window=0)


def test_env_switches(monkeypatch):
    monkeypatch.delenv(MULTI_REPLAY_ENV_VAR, raising=False)
    monkeypatch.delenv(MULTI_REPLAY_WIDTH_ENV_VAR, raising=False)
    assert not multi_replay_enabled()
    assert multi_replay_width() == 0
    monkeypatch.setenv(MULTI_REPLAY_ENV_VAR, "1")
    monkeypatch.setenv(MULTI_REPLAY_WIDTH_ENV_VAR, "4")
    assert multi_replay_enabled()
    assert multi_replay_width() == 4
    monkeypatch.setenv(MULTI_REPLAY_ENV_VAR, "0")
    assert not multi_replay_enabled()
