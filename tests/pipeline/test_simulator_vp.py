"""Value-prediction behaviour in the pipeline: speedups, validation, squash recovery."""

from repro.isa.builder import ProgramBuilder
from tests.conftest import build_counted_loop, run_simulation, small_config


def _predictable_serial_chain(chain_ops: int = 10, fillers: int = 8):
    """A loop-carried, stride-predictable chain plus filler ILP: VP's best case."""

    def body(b: ProgramBuilder) -> None:
        for _ in range(chain_ops):
            b.addi("r10", "r10", 5)
        for index in range(fillers):
            b.movi(f"r{16 + index % 8}", index)

    return build_counted_loop(body, name="vp_friendly")


def _unpredictable_serial_chain():
    """A loop-carried chain through pseudo-random memory: VP cannot help."""
    b = ProgramBuilder("vp_hostile")
    b.movi("r1", 0)
    b.movi("r4", 0)
    b.label("loop")
    for _ in range(3):
        b.and_("r5", "r4", imm=(1 << 11) - 8)
        b.ld("r4", "r5", 0x40000)
    for index in range(6):
        b.movi(f"r{16 + index}", index)
    b.addi("r1", "r1", 1)
    b.cmp("r1", imm=1 << 40)
    b.bne("loop")
    return b.build()


def _phase_change_loop():
    """Values stay constant long enough to saturate confidence, then change."""
    b = ProgramBuilder("phase_change")
    b.movi("r1", 0)
    b.movi("r9", 7)
    b.label("loop")
    b.and_("r2", "r1", imm=0xFF)
    b.cmp("r2", imm=0xFF)
    b.bne("steady")
    b.addi("r9", "r9", 1)  # the "constant" changes every 256 iterations
    b.label("steady")
    b.mov("r10", "r9")
    b.add("r11", "r10", "r9")
    for index in range(4):
        b.movi(f"r{16 + index}", index)
    b.addi("r1", "r1", 1)
    b.cmp("r1", imm=1 << 40)
    b.bne("loop")
    return b.build()


class TestValuePredictionBenefit:
    def test_vp_speeds_up_predictable_chains(self):
        program = _predictable_serial_chain()
        base = run_simulation(small_config(value_prediction=False), program, max_uops=2500)
        vp = run_simulation(small_config(value_prediction=True), program, max_uops=2500)
        assert vp.ipc > base.ipc * 1.15
        assert vp.stats.predictions_used > 0
        assert vp.predictor_accuracy > 0.99

    def test_vp_does_not_slow_down_unpredictable_code(self):
        program = _unpredictable_serial_chain()
        base = run_simulation(small_config(value_prediction=False), program, max_uops=2000)
        vp = run_simulation(small_config(value_prediction=True), program, max_uops=2000)
        assert vp.ipc > base.ipc * 0.95

    def test_coverage_reported(self):
        vp = run_simulation(
            small_config(value_prediction=True), _predictable_serial_chain(), max_uops=2500
        )
        assert 0.0 < vp.predictor_coverage <= 1.0


class TestValidationAndSquash:
    def test_value_mispredictions_trigger_squashes_but_preserve_correctness(self):
        program = _phase_change_loop()
        result = run_simulation(small_config(value_prediction=True), program, max_uops=4000)
        assert result.stats.committed_uops == 4000
        assert result.full_stats.value_mispredictions >= 1
        assert result.full_stats.pipeline_squashes >= result.full_stats.value_mispredictions
        assert result.full_stats.squashed_uops > 0

    def test_mispredictions_are_rare_thanks_to_fpc(self):
        result = run_simulation(
            small_config(value_prediction=True), _phase_change_loop(), max_uops=4000
        )
        used = result.full_stats.predictions_used
        wrong = result.full_stats.value_mispredictions
        assert used > 100
        assert wrong / used < 0.05

    def test_squash_refetches_instructions(self):
        result = run_simulation(
            small_config(value_prediction=True), _phase_change_loop(), max_uops=4000
        )
        assert result.full_stats.fetched_uops >= result.full_stats.committed_uops
