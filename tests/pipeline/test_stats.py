"""Tests for simulation statistics and result containers."""

import pytest

from repro.pipeline.stats import SimStats, SimulationResult


def _stats(**kwargs) -> SimStats:
    stats = SimStats()
    for key, value in kwargs.items():
        setattr(stats, key, value)
    return stats


class TestSimStats:
    def test_ipc(self):
        assert _stats(cycles=100, committed_uops=250).ipc == 2.5
        assert SimStats().ipc == 0.0

    def test_offload_ratios(self):
        stats = _stats(
            committed_uops=100,
            early_executed=20,
            late_executed_alu=10,
            late_resolved_branches=5,
        )
        assert stats.early_executed_ratio == pytest.approx(0.20)
        assert stats.late_executed_ratio == pytest.approx(0.15)
        assert stats.offload_ratio == pytest.approx(0.35)

    def test_prediction_ratio_and_mpki(self):
        stats = _stats(committed_uops=1000, predictions_used=300, branch_mispredictions=5)
        assert stats.prediction_used_ratio == pytest.approx(0.3)
        assert stats.branch_mpki == pytest.approx(5.0)

    def test_delta_subtracts_counterwise(self):
        early = _stats(cycles=100, committed_uops=200, early_executed=50)
        late = _stats(cycles=300, committed_uops=900, early_executed=80)
        window = late.delta(early)
        assert window.cycles == 200
        assert window.committed_uops == 700
        assert window.early_executed == 30

    def test_copy_is_independent(self):
        stats = _stats(cycles=10)
        clone = stats.copy()
        clone.cycles = 99
        assert stats.cycles == 10

    def test_empty_ratios_are_zero(self):
        stats = SimStats()
        assert stats.offload_ratio == 0.0
        assert stats.branch_mpki == 0.0


class TestSimulationResult:
    def _result(self, ipc: float, name: str = "cfg") -> SimulationResult:
        stats = _stats(cycles=1000, committed_uops=int(ipc * 1000))
        return SimulationResult(
            config_name=name, workload_name="wl", stats=stats, full_stats=stats
        )

    def test_ipc_and_speedup(self):
        fast = self._result(2.0)
        slow = self._result(1.0)
        assert fast.ipc == pytest.approx(2.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_speedup_over_zero_baseline(self):
        assert self._result(2.0).speedup_over(self._result(0.0)) == 0.0

    def test_summary_mentions_key_fields(self):
        text = self._result(1.5, name="EOLE_4_64").summary()
        assert "EOLE_4_64" in text and "IPC=1.500" in text
