"""The fused commit fast path vs the kept reference methods.

``Simulator._commit`` inlines :meth:`Simulator._retire` and
:meth:`Simulator._validate_and_train` and batches commit-side predictor
training.  Those two methods are kept as the reference implementations; this
test enforces the "kept in sync" contract by reconstructing the pre-fusion
commit loop from them and comparing whole-run results — so a drift in either
copy (or an unsound training deferral) shows up as a result mismatch instead
of silently rotting.
"""

import pytest

from repro.pipeline.config import named_config
from repro.pipeline.simulator import Simulator
from repro.workloads.suite import workload

MAX_UOPS, WARMUP = 2000, 400


class _ReferenceCommitSimulator(Simulator):
    """The pre-fusion commit loop, composed from the reference methods."""

    def _commit(self) -> None:
        committed = 0
        late_alus_used = 0
        cycle = self.cycle
        commit_extra = self._commit_extra
        late_alu_limit = self.late_block.config.alus
        rob_entries = self.rob._entries
        while committed < self.config.commit_width:
            if not rob_entries:
                break
            op = rob_entries[0]
            if not op.executed:
                break
            if cycle < op.complete_cycle + commit_extra:
                break
            if op.late_executed and late_alus_used >= late_alu_limit:
                self.stats.late_alu_stalls += 1
                break
            if self._levt_ports_limited:
                banks = self.late_block.levt_read_banks(op)
                if not self.prf.try_levt_reads(banks, cycle):
                    self.stats.levt_port_stalls += 1
                    break
            rob_entries.popleft()
            op.commit_cycle = cycle
            committed += 1
            if op.late_executed:
                late_alus_used += 1
            self._retire(op)
            if self._finished:
                return
            if self._validate_and_train(op):
                break


def _run(simulator_cls, config_name, workload_name):
    config = named_config(config_name)
    wl = workload(workload_name)
    simulator = simulator_cls(
        config,
        wl.program,
        max_uops=MAX_UOPS,
        warmup_uops=WARMUP,
        arch_state=wl.make_state(),
        workload_name=wl.name,
    )
    return simulator.run()


@pytest.mark.parametrize(
    "config_name",
    ["Baseline_6_64", "Baseline_VP_6_64", "EOLE_4_64", "EOLE_4_64_4ports_4banks"],
)
@pytest.mark.parametrize("workload_name", ["gcc", "milc", "mcf"])
def test_fused_commit_matches_reference_methods(config_name, workload_name):
    fused = _run(Simulator, config_name, workload_name)
    reference = _run(_ReferenceCommitSimulator, config_name, workload_name)
    assert fused.to_dict() == reference.to_dict()
