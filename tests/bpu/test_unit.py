"""Tests for the combined branch prediction unit (TAGE + BTB + RAS)."""

from repro.bpu.unit import BranchPredictionUnit
from repro.isa.builder import ProgramBuilder
from repro.isa.emulator import collect_trace


def _loop_trace(iterations_uops=400):
    b = ProgramBuilder("bpu_loop")
    b.movi("r1", 0)
    b.label("loop")
    b.addi("r1", "r1", 1)
    b.cmp("r1", imm=1 << 30)
    b.bne("loop")
    return collect_trace(b.build(), iterations_uops)


def _call_ret_trace(uops=200):
    b = ProgramBuilder("calls")
    b.jmp("main")
    b.label("leaf")
    b.addi("r2", "r2", 1)
    b.ret()
    b.label("main")
    b.movi("r1", 0)
    b.label("loop")
    b.call("leaf")
    b.addi("r1", "r1", 1)
    b.cmp("r1", imm=1 << 30)
    b.bne("loop")
    return collect_trace(b.build(), uops)


class TestConditionalBranches:
    def test_backward_loop_branch_quickly_predicted(self):
        unit = BranchPredictionUnit()
        mispredictions = 0
        for inst in _loop_trace():
            if not inst.uop.is_branch:
                continue
            outcome = unit.predict(inst)
            if outcome.mispredicted:
                mispredictions += 1
            unit.train(inst, outcome)
        assert mispredictions < 10

    def test_history_updated_with_actual_outcomes(self):
        unit = BranchPredictionUnit()
        trace = _loop_trace(40)
        for inst in trace:
            if inst.uop.is_branch:
                unit.predict(inst)
        assert unit.history.bits != 0

    def test_high_confidence_emerges_for_stable_branches(self):
        unit = BranchPredictionUnit()
        saw_high_confidence = False
        for inst in _loop_trace(600):
            if not inst.uop.is_conditional_branch:
                continue
            outcome = unit.predict(inst)
            saw_high_confidence |= outcome.high_confidence
            unit.train(inst, outcome)
        assert saw_high_confidence

    def test_btb_miss_on_first_taken_encounter_resolves_at_decode(self):
        unit = BranchPredictionUnit()
        decode_redirects = 0
        for inst in _loop_trace(60):
            if not inst.uop.is_conditional_branch:
                continue
            outcome = unit.predict(inst)
            decode_redirects += outcome.resolved_at_decode
            unit.train(inst, outcome)
        # Only the very first taken encounter should miss the BTB.
        assert decode_redirects <= 2


class TestCallsAndReturns:
    def test_returns_predicted_by_ras(self):
        unit = BranchPredictionUnit()
        ret_mispredictions = 0
        rets = 0
        for inst in _call_ret_trace(400):
            if not inst.uop.is_branch:
                continue
            outcome = unit.predict(inst)
            if inst.uop.opcode.value == "ret":
                rets += 1
                ret_mispredictions += outcome.mispredicted
            unit.train(inst, outcome)
        assert rets > 10
        assert ret_mispredictions == 0

    def test_direct_jumps_and_calls_are_never_direction_mispredicted(self):
        unit = BranchPredictionUnit()
        for inst in _call_ret_trace(200):
            if inst.uop.is_branch and not inst.uop.is_conditional_branch:
                outcome = unit.predict(inst)
                assert not outcome.direction_mispredicted
                assert outcome.predicted_taken

    def test_counters_track_branch_kinds(self):
        unit = BranchPredictionUnit()
        for inst in _call_ret_trace(200):
            if inst.uop.is_branch:
                unit.predict(inst)
        assert unit.conditional_branches > 0
        assert unit.unconditional_branches > 0


class TestIndirectBranches:
    def test_stable_indirect_target_learned_after_first_miss(self):
        b = ProgramBuilder("indirect")
        b.movi("r1", 0)
        b.la("r2", "target")
        b.label("loop")
        b.jmpi("r2")
        b.label("target")
        b.addi("r1", "r1", 1)
        b.cmp("r1", imm=1 << 30)
        b.bne("loop")
        trace = collect_trace(b.build(), 300)
        unit = BranchPredictionUnit()
        indirect_mispredictions = 0
        indirects = 0
        for inst in trace:
            if not inst.uop.is_branch:
                continue
            outcome = unit.predict(inst)
            if inst.uop.opcode.value == "jmpi":
                indirects += 1
                indirect_mispredictions += outcome.mispredicted
            unit.train(inst, outcome)
        assert indirects > 10
        assert indirect_mispredictions <= 1
