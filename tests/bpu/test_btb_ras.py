"""Tests for the branch target buffer and return-address stack."""

import pytest

from repro.bpu.btb import BranchTargetBuffer, ReturnAddressStack
from repro.errors import ConfigurationError


class TestBTB:
    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            BranchTargetBuffer(entries=7, associativity=2)

    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, associativity=2)
        assert btb.lookup(0x10) is None
        btb.update(0x10, 0x99)
        assert btb.lookup(0x10) == 0x99
        assert btb.hits == 1 and btb.misses == 1

    def test_update_refreshes_target(self):
        btb = BranchTargetBuffer(entries=64, associativity=2)
        btb.update(0x10, 1)
        btb.update(0x10, 2)
        assert btb.lookup(0x10) == 2

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(entries=8, associativity=2)  # 4 sets
        sets = btb.num_sets
        a, b, c = 0x1, 0x1 + sets, 0x1 + 2 * sets  # all map to the same set
        btb.update(a, 10)
        btb.update(b, 20)
        btb.update(c, 30)  # evicts a (LRU)
        assert btb.lookup(a) is None
        assert btb.lookup(b) == 20
        assert btb.lookup(c) == 30

    def test_lookup_refreshes_recency(self):
        btb = BranchTargetBuffer(entries=8, associativity=2)
        sets = btb.num_sets
        a, b, c = 0x2, 0x2 + sets, 0x2 + 2 * sets
        btb.update(a, 10)
        btb.update(b, 20)
        btb.lookup(a)  # a becomes MRU
        btb.update(c, 30)  # evicts b
        assert btb.lookup(a) == 10
        assert btb.lookup(b) is None

    def test_hit_rate(self):
        btb = BranchTargetBuffer(entries=64, associativity=2)
        btb.update(1, 2)
        btb.lookup(1)
        btb.lookup(3)
        assert btb.hit_rate == 0.5


class TestRAS:
    def test_push_pop_round_trip(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(entries=4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(entries=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_depth(self):
        ras = ReturnAddressStack(entries=8)
        ras.push(1)
        assert ras.depth == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ReturnAddressStack(entries=0)
