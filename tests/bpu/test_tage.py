"""Tests for the TAGE conditional-branch predictor and its confidence estimation."""

import pytest

from repro.bpu.history import GlobalHistory
from repro.bpu.tage import TAGEBranchPredictor
from repro.errors import ConfigurationError


def _make(**kwargs):
    kwargs.setdefault("bimodal_entries", 1024)
    kwargs.setdefault("tagged_entries", 256)
    kwargs.setdefault("num_components", 6)
    return TAGEBranchPredictor(**kwargs)


def _run_pattern(predictor, pattern, pc=0x400, rounds=400, history=None):
    """Feed a repeating taken/not-taken pattern; returns late-phase accuracy."""
    history = history if history is not None else GlobalHistory()
    correct_late = 0
    total_late = 0
    for index in range(rounds):
        outcome = pattern[index % len(pattern)]
        prediction = predictor.predict(pc, history)
        if index >= rounds - 100:
            total_late += 1
            if prediction.taken == outcome:
                correct_late += 1
        predictor.update(pc, outcome, prediction)
        history.push(outcome)
    return correct_late / total_late


class TestPrediction:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            TAGEBranchPredictor(bimodal_entries=1000)

    def test_always_taken_branch_learned(self):
        assert _run_pattern(_make(), [True]) == 1.0

    def test_always_not_taken_branch_learned(self):
        assert _run_pattern(_make(), [False]) == 1.0

    def test_short_periodic_pattern_learned_via_history(self):
        accuracy = _run_pattern(_make(), [True, True, False])
        assert accuracy > 0.95

    def test_longer_pattern_learned(self):
        pattern = [True] * 5 + [False] * 3
        assert _run_pattern(_make(), pattern, rounds=800) > 0.9

    def test_distinct_branches_tracked_independently(self):
        predictor = _make()
        history = GlobalHistory()
        for _ in range(200):
            p1 = predictor.predict(0x10, history)
            predictor.update(0x10, True, p1)
            history.push(True)
            p2 = predictor.predict(0x20, history)
            predictor.update(0x20, False, p2)
            history.push(False)
        assert predictor.predict(0x10, history).taken
        assert not predictor.predict(0x20, history).taken


class TestConfidence:
    def test_stable_branch_becomes_high_confidence(self):
        predictor = _make()
        history = GlobalHistory()
        for _ in range(200):
            prediction = predictor.predict(0x30, history)
            predictor.update(0x30, True, prediction)
            history.push(True)
        assert predictor.predict(0x30, history).high_confidence

    def test_high_confidence_mispredictions_are_rare(self):
        """Section 3.3: very-high-confidence branches mispredict well below 0.5%-ish."""
        predictor = _make()
        history = GlobalHistory()
        patterns = {0x10: [True], 0x20: [False], 0x30: [True, True, False, True]}
        for round_index in range(600):
            for pc, pattern in patterns.items():
                outcome = pattern[round_index % len(pattern)]
                prediction = predictor.predict(pc, history)
                predictor.update(pc, outcome, prediction)
                history.push(outcome)
        assert predictor.high_confidence_lookups > 0
        assert predictor.high_confidence_misprediction_rate < 0.02

    def test_random_branch_has_low_overall_accuracy_but_few_confident_predictions(self):
        from repro.vp.confidence import DeterministicRandom

        predictor = _make()
        history = GlobalHistory()
        rng = DeterministicRandom(0xDEAD)
        high_confidence = 0
        for _ in range(600):
            outcome = bool(rng.next_u64() & 1)
            prediction = predictor.predict(0x99, history)
            if prediction.high_confidence:
                high_confidence += 1
            predictor.update(0x99, outcome, prediction)
            history.push(outcome)
        assert high_confidence < 300

    def test_statistics_track_lookups_and_mispredictions(self):
        predictor = _make()
        _run_pattern(predictor, [True, False], rounds=200)
        assert predictor.lookups == 200
        assert 0 <= predictor.misprediction_rate <= 1

    def test_storage_accounting(self):
        assert _make().storage_bits() > 0
