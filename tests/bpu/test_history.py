"""Tests for the global branch-history register and history folding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bpu.history import GlobalHistory, fold_bits
from repro.vp.vtage import geometric_history_lengths


class TestGlobalHistory:
    def test_push_shifts_in_youngest_bit(self):
        history = GlobalHistory(capacity=8)
        history.push(True)
        history.push(False)
        history.push(True)
        assert history.bits == 0b101

    def test_capacity_bounds_history(self):
        history = GlobalHistory(capacity=4)
        for _ in range(10):
            history.push(True)
        assert history.bits == 0b1111

    def test_snapshot_restore_round_trip(self):
        history = GlobalHistory()
        for outcome in (True, False, True, True):
            history.push(outcome)
        saved = history.snapshot()
        history.push(False)
        history.push(False)
        history.restore(saved)
        assert history.bits == saved

    def test_clear(self):
        history = GlobalHistory()
        history.push(True)
        history.clear()
        assert history.bits == 0

    def test_slice_returns_youngest_bits(self):
        history = GlobalHistory()
        for outcome in (True, True, False, True):  # bits = 0b1101 (youngest last push)
            history.push(outcome)
        assert history.slice(2) == 0b01
        assert history.slice(4) == 0b1101

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            GlobalHistory(capacity=0)


class TestFolding:
    def test_fold_of_short_history_is_identity(self):
        assert fold_bits(0b101, 3, 8) == 0b101

    def test_fold_xors_chunks(self):
        # 10 bits folded into 4: chunks 0b1111, 0b0000, 0b11 -> 0b1100... compute directly
        value = 0b11_0000_1111
        expected = (value & 0xF) ^ ((value >> 4) & 0xF) ^ ((value >> 8) & 0xF)
        assert fold_bits(value, 10, 4) == expected

    def test_zero_width_or_length(self):
        assert fold_bits(0b111, 0, 4) == 0
        assert fold_bits(0b111, 3, 0) == 0

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=16),
    )
    def test_fold_stays_within_width(self, value, length, width):
        assert 0 <= fold_bits(value, length, width) < (1 << width)

    @given(st.integers(min_value=1, max_value=16))
    def test_fold_is_deterministic(self, width):
        history = GlobalHistory()
        for index in range(40):
            history.push(index % 3 == 0)
        assert history.fold(32, width) == history.fold(32, width)


class TestIncrementalFoldedRegisters:
    """The incremental circular-shift registers must always equal re-folding the raw
    history with :func:`fold_bits` — including across arbitrary squash/restore
    sequences, for the TAGE and VTAGE geometries up to 256 history bits."""

    TAGE_LENGTHS = geometric_history_lengths(4, 256, 12)
    TAGE_WIDTHS = [10] * 12 + [11] * 12
    VTAGE_LENGTHS = geometric_history_lengths(2, 64, 6)
    VTAGE_WIDTHS = [10] * 6 + [12 + rank for rank in range(6)]

    def _attach(self, history: GlobalHistory):
        tage = history.folded_registers(self.TAGE_LENGTHS * 2, self.TAGE_WIDTHS)
        vtage = history.folded_registers(self.VTAGE_LENGTHS * 2, self.VTAGE_WIDTHS)
        return tage, vtage

    def _check(self, history: GlobalHistory, registers) -> None:
        for file in registers:
            for index, (length, width) in enumerate(zip(file.lengths, file.widths)):
                assert file.folds[index] == fold_bits(
                    history.slice(length), length, width
                ), (length, width)

    def test_push_tracks_reference_folding(self):
        history = GlobalHistory()
        registers = self._attach(history)
        for step in range(600):
            history.push(step % 3 == 0)
            self._check(history, registers)

    def test_snapshot_carries_folds_and_restore_reinstates_them(self):
        history = GlobalHistory()
        registers = self._attach(history)
        for outcome in (True, False, True, True, False):
            history.push(outcome)
        saved = history.snapshot()
        assert saved == history.bits  # int contract preserved
        for outcome in (False, False, True):
            history.push(outcome)
        history.restore(saved)
        assert history.bits == int(saved)
        self._check(history, registers)

    def test_restore_from_raw_bits_refolds(self):
        history = GlobalHistory()
        registers = self._attach(history)
        for _ in range(40):
            history.push(True)
        history.restore(0b1011)  # plain int (e.g. a pre-pool record's default)
        self._check(history, registers)

    def test_registers_attached_after_snapshot_survive_restore(self):
        history = GlobalHistory()
        for _ in range(20):
            history.push(True)
        saved = history.snapshot()  # taken before any registers exist
        registers = self._attach(history)
        history.push(False)
        history.restore(saved)
        self._check(history, registers)

    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.booleans()),
                st.tuples(st.just("snapshot"), st.booleans()),
                st.tuples(st.just("restore"), st.integers(min_value=0, max_value=7)),
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_random_squash_restore_sequences_match_reference(self, operations):
        """Property (ISSUE 3): any interleaving of pushes, snapshots and restores
        leaves every incremental register equal to recomputing fold_bits from the
        raw history bits."""
        history = GlobalHistory()
        registers = self._attach(history)
        snapshots = [history.snapshot()]
        for action, argument in operations:
            if action == "push":
                history.push(argument)
            elif action == "snapshot":
                snapshots.append(history.snapshot())
            else:
                history.restore(snapshots[argument % len(snapshots)])
        self._check(history, registers)
