"""Tests for the global branch-history register and history folding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bpu.history import GlobalHistory, fold_bits


class TestGlobalHistory:
    def test_push_shifts_in_youngest_bit(self):
        history = GlobalHistory(capacity=8)
        history.push(True)
        history.push(False)
        history.push(True)
        assert history.bits == 0b101

    def test_capacity_bounds_history(self):
        history = GlobalHistory(capacity=4)
        for _ in range(10):
            history.push(True)
        assert history.bits == 0b1111

    def test_snapshot_restore_round_trip(self):
        history = GlobalHistory()
        for outcome in (True, False, True, True):
            history.push(outcome)
        saved = history.snapshot()
        history.push(False)
        history.push(False)
        history.restore(saved)
        assert history.bits == saved

    def test_clear(self):
        history = GlobalHistory()
        history.push(True)
        history.clear()
        assert history.bits == 0

    def test_slice_returns_youngest_bits(self):
        history = GlobalHistory()
        for outcome in (True, True, False, True):  # bits = 0b1101 (youngest last push)
            history.push(outcome)
        assert history.slice(2) == 0b01
        assert history.slice(4) == 0b1101

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            GlobalHistory(capacity=0)


class TestFolding:
    def test_fold_of_short_history_is_identity(self):
        assert fold_bits(0b101, 3, 8) == 0b101

    def test_fold_xors_chunks(self):
        # 10 bits folded into 4: chunks 0b1111, 0b0000, 0b11 -> 0b1100... compute directly
        value = 0b11_0000_1111
        expected = (value & 0xF) ^ ((value >> 4) & 0xF) ^ ((value >> 8) & 0xF)
        assert fold_bits(value, 10, 4) == expected

    def test_zero_width_or_length(self):
        assert fold_bits(0b111, 0, 4) == 0
        assert fold_bits(0b111, 3, 0) == 0

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=16),
    )
    def test_fold_stays_within_width(self, value, length, width):
        assert 0 <= fold_bits(value, length, width) < (1 << width)

    @given(st.integers(min_value=1, max_value=16))
    def test_fold_is_deterministic(self, width):
        history = GlobalHistory()
        for index in range(40):
            history.push(index % 3 == 0)
        assert history.fold(32, width) == history.fold(32, width)
