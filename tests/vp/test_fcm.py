"""Tests for the order-k FCM context-based predictor."""

import pytest

from repro.bpu.history import GlobalHistory
from repro.errors import ConfigurationError
from repro.vp.confidence import DETERMINISTIC_3BIT_VECTOR
from repro.vp.fcm import FCMPredictor

PC = 0x55


def _make(**kwargs):
    kwargs.setdefault("first_level_entries", 256)
    kwargs.setdefault("second_level_entries", 1024)
    kwargs.setdefault("fpc_vector", DETERMINISTIC_3BIT_VECTOR)
    return FCMPredictor(**kwargs)


class TestFCM:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            FCMPredictor(first_level_entries=100)
        with pytest.raises(ConfigurationError):
            FCMPredictor(order=0)

    def test_cold_lookup_returns_none(self):
        assert _make().predict(PC, GlobalHistory()) is None

    def test_repeating_value_pattern_learned(self):
        """FCM's strength: periodic patterns that last-value/stride predictors miss."""
        predictor = _make()
        history = GlobalHistory()
        pattern = [3, 1, 4, 1, 5]
        correct_late = 0
        total_late = 0
        for index in range(600):
            value = pattern[index % len(pattern)]
            prediction = predictor.predict(PC, history)
            if index >= 400:
                total_late += 1
                if prediction is not None and prediction.value == value:
                    correct_late += 1
            predictor.train(PC, value, prediction)
        assert correct_late / total_late > 0.9

    def test_constant_value_learned(self):
        predictor = _make()
        history = GlobalHistory()
        for _ in range(30):
            predictor.train(PC, 7, predictor.predict(PC, history))
        prediction = predictor.predict(PC, history)
        assert prediction is not None and prediction.value == 7

    def test_storage_accounting(self):
        assert _make().storage_bits() > 0
