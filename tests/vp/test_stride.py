"""Tests for the Stride and 2-Delta Stride value predictors."""

import pytest

from repro.bpu.history import GlobalHistory
from repro.errors import ConfigurationError
from repro.vp.confidence import DETERMINISTIC_3BIT_VECTOR
from repro.vp.stride import StridePredictor, TwoDeltaStridePredictor

PC = 0x40


def _make(two_delta: bool = True, **kwargs):
    cls = TwoDeltaStridePredictor if two_delta else StridePredictor
    kwargs.setdefault("entries", 256)
    kwargs.setdefault("fpc_vector", DETERMINISTIC_3BIT_VECTOR)
    return cls(**kwargs)


def _train_sequence(predictor, values, pc=PC):
    """Feed a committed value sequence, predicting before each training update."""
    history = GlobalHistory()
    predictions = []
    for value in values:
        predictions.append(predictor.predict(pc, history))
        predictor.train(pc, value, predictions[-1])
    return predictions


class TestBasics:
    def test_entry_count_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            StridePredictor(entries=100)

    def test_first_encounter_gives_no_prediction(self):
        predictor = _make()
        assert predictor.predict(PC, GlobalHistory()) is None

    def test_constant_sequence_predicted_with_confidence(self):
        predictor = _make()
        _train_sequence(predictor, [7] * 20)
        prediction = predictor.predict(PC, GlobalHistory())
        assert prediction is not None
        assert prediction.value == 7
        assert prediction.confident

    def test_strided_sequence_predicted(self):
        predictor = _make()
        _train_sequence(predictor, list(range(0, 200, 5)))
        prediction = predictor.predict(PC, GlobalHistory())
        assert prediction.value == 200
        assert prediction.confident

    def test_storage_accounting_positive(self):
        assert _make().storage_bits() > 0
        assert _make(two_delta=False).storage_bits() > 0

    def test_two_delta_has_more_storage_than_single_delta(self):
        assert _make().storage_bits() > _make(two_delta=False).storage_bits()


class TestTwoDeltaFiltering:
    def test_transient_stride_change_does_not_update_prediction_delta(self):
        predictor = _make(two_delta=True)
        # Regular stride of 4, then a single glitch, then stride of 4 again.
        values = [0, 4, 8, 12, 16, 100, 104, 108, 112]
        _train_sequence(predictor, values)
        entry = predictor._table[predictor._index(PC)]
        assert entry.stride2 == 4

    def test_single_delta_follows_every_change(self):
        predictor = _make(two_delta=False)
        values = [0, 4, 8, 100]
        _train_sequence(predictor, values)
        entry = predictor._table[predictor._index(PC)]
        assert entry.stride2 == (100 - 8)

    def test_repeated_new_stride_is_adopted(self):
        predictor = _make(two_delta=True)
        _train_sequence(predictor, [0, 4, 8, 12, 20, 28, 36, 44])
        entry = predictor._table[predictor._index(PC)]
        assert entry.stride2 == 8


class TestSpeculativeChain:
    def test_back_to_back_predictions_chain_speculatively(self):
        predictor = _make()
        _train_sequence(predictor, list(range(0, 120, 3)))  # stride 3, last value 117
        history = GlobalHistory()
        first = predictor.predict(PC, history)
        second = predictor.predict(PC, history)
        assert first.value == 120
        assert second.value == 123

    def test_recover_collapses_speculative_state(self):
        predictor = _make()
        _train_sequence(predictor, list(range(0, 120, 3)))
        history = GlobalHistory()
        predictor.predict(PC, history)
        predictor.predict(PC, history)
        predictor.recover()
        assert predictor.predict(PC, history).value == 120

    def test_misprediction_repairs_speculative_chain(self):
        predictor = _make()
        history = GlobalHistory()
        # Build up several stale in-flight predictions before any training.
        stale = [predictor.predict(PC, history) for _ in range(4)]
        actuals = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        for actual, prediction in zip(actuals[:4], stale):
            predictor.train(PC, actual, prediction)
        # Continue with a normal predict/train rhythm: the chain must resynchronise and
        # eventually produce correct, confident predictions.
        correct = 0
        for actual in actuals[4:]:
            prediction = predictor.predict(PC, history)
            if prediction is not None and prediction.value == actual:
                correct += 1
            predictor.train(PC, actual, prediction)
        assert correct >= 4

    def test_inflight_counter_never_negative(self):
        predictor = _make()
        history = GlobalHistory()
        predictor.train(PC, 5, None)
        predictor.train(PC, 10, None)
        entry = predictor._table[predictor._index(PC)]
        assert entry.inflight == 0
        predictor.predict(PC, history)
        assert entry.inflight == 1


class TestStatistics:
    def test_lookup_and_outcome_accounting(self):
        predictor = _make()
        history = GlobalHistory()
        for value in range(0, 300, 5):
            prediction = predictor.lookup(PC, history)
            predictor.validate_and_train(PC, value, prediction)
        stats = predictor.stats
        assert stats.lookups == 60
        assert stats.confident_predictions > 0
        assert stats.accuracy > 0.9
