"""Tests for Forward Probabilistic Counters and the deterministic PRNG."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.vp.confidence import (
    DETERMINISTIC_3BIT_VECTOR,
    DeterministicRandom,
    FPCPolicy,
    ForwardProbabilisticCounter,
    PAPER_FPC_VECTOR,
    SCALED_FPC_VECTOR,
)


class TestVectors:
    def test_paper_vector_matches_section_4_2(self):
        assert PAPER_FPC_VECTOR == (
            Fraction(1),
            Fraction(1, 32),
            Fraction(1, 32),
            Fraction(1, 32),
            Fraction(1, 32),
            Fraction(1, 64),
            Fraction(1, 64),
        )

    def test_vectors_describe_3bit_counters(self):
        assert len(PAPER_FPC_VECTOR) == 7
        assert len(DETERMINISTIC_3BIT_VECTOR) == 7
        assert len(SCALED_FPC_VECTOR) == 7

    def test_scaled_vector_is_easier_to_saturate_than_paper(self):
        expected_paper = sum(1 / p for p in PAPER_FPC_VECTOR)
        expected_scaled = sum(1 / p for p in SCALED_FPC_VECTOR)
        assert expected_scaled < expected_paper


class TestPolicy:
    def test_empty_vector_rejected(self):
        with pytest.raises(ConfigurationError):
            FPCPolicy(vector=())

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            FPCPolicy(vector=(Fraction(2),))

    def test_saturation_equals_vector_length(self):
        assert FPCPolicy(PAPER_FPC_VECTOR).saturation == 7

    def test_probability_one_always_allows(self):
        policy = FPCPolicy(DETERMINISTIC_3BIT_VECTOR)
        assert all(policy.allows_increment(level) for level in range(7))

    def test_saturated_level_never_advances(self):
        policy = FPCPolicy(DETERMINISTIC_3BIT_VECTOR)
        assert not policy.allows_increment(7)


class TestCounter:
    def test_deterministic_counter_saturates_in_seven_steps(self):
        counter = ForwardProbabilisticCounter(FPCPolicy(DETERMINISTIC_3BIT_VECTOR))
        for _ in range(7):
            assert not counter.saturated
            counter.on_correct()
        assert counter.saturated

    def test_incorrect_resets(self):
        counter = ForwardProbabilisticCounter(FPCPolicy(DETERMINISTIC_3BIT_VECTOR))
        for _ in range(7):
            counter.on_correct()
        counter.on_incorrect()
        assert counter.value == 0
        assert not counter.saturated

    def test_probabilistic_counter_needs_many_correct_outcomes(self):
        policy = FPCPolicy(PAPER_FPC_VECTOR, seed=0x1234)
        counter = ForwardProbabilisticCounter(policy)
        steps = 0
        while not counter.saturated and steps < 10_000:
            counter.on_correct()
            steps += 1
        assert counter.saturated
        # Expected number of correct outcomes is 1 + 4*32 + 2*64 = 257; allow slack.
        assert steps > 50

    def test_reset(self):
        counter = ForwardProbabilisticCounter(FPCPolicy(DETERMINISTIC_3BIT_VECTOR), value=5)
        counter.reset()
        assert counter.value == 0


class TestDeterministicRandom:
    def test_sequences_are_reproducible(self):
        a = DeterministicRandom(42)
        b = DeterministicRandom(42)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert DeterministicRandom(1).next_u64() != DeterministicRandom(2).next_u64()

    def test_zero_seed_is_valid(self):
        assert DeterministicRandom(0).next_u64() != 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=63))
    def test_chance_frequency_tracks_probability(self, denominator):
        rng = DeterministicRandom(99)
        probability = Fraction(1, denominator)
        trials = 4000
        hits = sum(rng.chance(probability) for _ in range(trials))
        expected = trials / denominator
        assert abs(hits - expected) < max(12.0, 5 * (expected**0.5))

    def test_chance_half_is_roughly_fair(self):
        rng = DeterministicRandom(7)
        hits = sum(rng.chance_half() for _ in range(2000))
        assert 800 < hits < 1200

    def test_chance_extremes(self):
        rng = DeterministicRandom(1)
        assert rng.chance(Fraction(1))
        assert not rng.chance(Fraction(0))
