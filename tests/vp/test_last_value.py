"""Tests for the Last-Value Predictor."""

import pytest

from repro.bpu.history import GlobalHistory
from repro.errors import ConfigurationError
from repro.vp.confidence import DETERMINISTIC_3BIT_VECTOR
from repro.vp.last_value import LastValuePredictor

PC = 0x123


def _make(**kwargs):
    kwargs.setdefault("entries", 256)
    kwargs.setdefault("fpc_vector", DETERMINISTIC_3BIT_VECTOR)
    return LastValuePredictor(**kwargs)


class TestLastValue:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            LastValuePredictor(entries=300)

    def test_cold_lookup_returns_none(self):
        assert _make().predict(PC, GlobalHistory()) is None

    def test_repeated_value_becomes_confident(self):
        predictor = _make()
        history = GlobalHistory()
        for _ in range(10):
            prediction = predictor.predict(PC, history)
            predictor.train(PC, 42, prediction)
        prediction = predictor.predict(PC, history)
        assert prediction.value == 42
        assert prediction.confident

    def test_changing_value_resets_confidence(self):
        predictor = _make()
        history = GlobalHistory()
        for _ in range(10):
            predictor.train(PC, 42, predictor.predict(PC, history))
        predictor.train(PC, 43, predictor.predict(PC, history))
        prediction = predictor.predict(PC, history)
        assert not prediction.confident
        assert prediction.value == 43

    def test_strided_values_never_become_confident(self):
        predictor = _make()
        history = GlobalHistory()
        for value in range(0, 500, 7):
            predictor.train(PC, value, predictor.predict(PC, history))
        prediction = predictor.predict(PC, history)
        assert prediction is None or not prediction.confident

    def test_distinct_pcs_do_not_interfere(self):
        predictor = _make()
        history = GlobalHistory()
        for _ in range(10):
            predictor.train(0x10, 1, predictor.predict(0x10, history))
            predictor.train(0x11, 2, predictor.predict(0x11, history))
        assert predictor.predict(0x10, history).value == 1
        assert predictor.predict(0x11, history).value == 2

    def test_storage_accounting(self):
        predictor = _make(entries=256, tag_bits=12)
        assert predictor.storage_bits() == 256 * (12 + 64 + 3 + 1)
