"""Tests for the VTAGE context-based value predictor."""

import pytest

from repro.bpu.history import GlobalHistory
from repro.errors import ConfigurationError
from repro.vp.confidence import DETERMINISTIC_3BIT_VECTOR
from repro.vp.vtage import VTAGEPredictor, geometric_history_lengths

PC = 0x200


def _make(**kwargs):
    kwargs.setdefault("base_entries", 512)
    kwargs.setdefault("tagged_entries", 128)
    kwargs.setdefault("num_components", 4)
    kwargs.setdefault("fpc_vector", DETERMINISTIC_3BIT_VECTOR)
    return VTAGEPredictor(**kwargs)


class TestGeometricLengths:
    def test_lengths_are_increasing(self):
        lengths = geometric_history_lengths(2, 64, 6)
        assert lengths == sorted(lengths)
        assert len(set(lengths)) == 6
        assert lengths[0] == 2
        assert lengths[-1] == 64

    def test_single_component(self):
        assert geometric_history_lengths(2, 64, 1) == [64]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            geometric_history_lengths(0, 64, 4)
        with pytest.raises(ConfigurationError):
            geometric_history_lengths(8, 4, 4)
        with pytest.raises(ConfigurationError):
            geometric_history_lengths(2, 64, 0)


class TestVTAGE:
    def test_table_sizes_must_be_powers_of_two(self):
        with pytest.raises(ConfigurationError):
            VTAGEPredictor(base_entries=1000)

    def test_constant_value_learned_by_base_component(self):
        predictor = _make()
        history = GlobalHistory()
        for _ in range(12):
            prediction = predictor.predict(PC, history)
            predictor.train(PC, 99, prediction)
        prediction = predictor.predict(PC, history)
        assert prediction.value == 99
        assert prediction.confident

    def test_history_correlated_values_learned_by_tagged_components(self):
        """A value alternating with the branch history is exactly VTAGE's target case."""
        predictor = _make()
        history = GlobalHistory()
        patterns = [(True, 1111), (False, 2222)]
        correct_late = 0
        rounds = 120
        for index in range(rounds):
            taken, value = patterns[index % 2]
            history.push(taken)
            prediction = predictor.predict(PC, history)
            if index > rounds - 40 and prediction is not None and prediction.value == value:
                correct_late += 1
            predictor.train(PC, value, prediction)
        assert correct_late >= 30

    def test_strided_values_are_not_confidently_predicted(self):
        predictor = _make()
        history = GlobalHistory()
        confident_wrong = 0
        value = 0
        for _ in range(200):
            prediction = predictor.predict(PC, history)
            if prediction is not None and prediction.confident and prediction.value != value:
                confident_wrong += 1
            predictor.train(PC, value, prediction)
            value += 17
        assert confident_wrong == 0

    def test_no_speculative_state_to_recover(self):
        predictor = _make()
        history = GlobalHistory()
        for _ in range(5):
            predictor.train(PC, 5, predictor.predict(PC, history))
        before = predictor.predict(PC, history).value
        predictor.recover()
        assert predictor.predict(PC, history).value == before

    def test_storage_accounting_scales_with_components(self):
        small = _make(num_components=2)
        large = _make(num_components=6)
        assert large.storage_bits() > small.storage_bits()

    def test_paper_sizing_storage_in_expected_range(self):
        predictor = VTAGEPredictor()  # Table 2 sizing
        kilobytes = predictor.storage_kilobytes()
        # Table 2 reports ~64.1KB + 68.6KB across components; our accounting should be
        # in the same order of magnitude (tens of KB).
        assert 50 < kilobytes < 200

    def test_meta_carries_provider_information(self):
        predictor = _make()
        history = GlobalHistory()
        prediction = predictor.predict(PC, history)
        assert prediction.meta is not None
        assert prediction.meta.provider == -1  # cold: base component provides
        # The meta's fold snapshot re-derives exactly the lookup's indices/tags.
        # Folds are lazily activated: a dormant register snapshots as None and the
        # re-derivation falls back to folding the meta's raw history bits.
        assert len(prediction.meta.folds) == 2 * predictor.num_components
        for rank in range(predictor.num_components):
            assert prediction.meta.folds[rank] in (
                None,
                history.fold(predictor.history_lengths[rank], predictor._index_width),
            )
            index = predictor._meta_index(prediction.meta, rank)
            tag = predictor._meta_tag(prediction.meta, rank)
            assert index == predictor._tagged_index(PC, history, rank)
            assert tag == predictor._tagged_tag(PC, history, rank)
