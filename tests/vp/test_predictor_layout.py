"""Table 2 reproduction: predictor layout and storage budget accounting."""

from repro.vp.hybrid import default_paper_predictor
from repro.vp.stride import TwoDeltaStridePredictor
from repro.vp.vtage import VTAGEPredictor


class TestTable2Layout:
    """Checks the structural parameters reported in Table 2 of the paper."""

    def test_2dstride_layout(self):
        stride = TwoDeltaStridePredictor()
        assert stride.entries == 8192
        assert stride.tag_bits == 51  # "Full (51)" in Table 2

    def test_2dstride_storage_band(self):
        # Table 2 reports 251.9 KB for the 2D-Stride component (full tags, two strides).
        kilobytes = TwoDeltaStridePredictor().storage_kilobytes()
        assert 200 < kilobytes < 300

    def test_vtage_layout(self):
        vtage = VTAGEPredictor()
        assert vtage.base_entries == 8192
        assert vtage.num_components == 6
        assert vtage.tagged_entries == 1024
        assert vtage.tag_bits == 12  # "12 + rank" in Table 2

    def test_vtage_tag_widths_grow_with_rank(self):
        vtage = VTAGEPredictor()
        widths = [vtage.tag_bits + rank for rank in range(vtage.num_components)]
        assert widths == sorted(widths)
        assert widths[0] == 12 and widths[-1] == 17

    def test_vtage_storage_band(self):
        # Table 2 reports 64.1 KB (base) + 68.6 KB (tagged) ≈ 133 KB for VTAGE.
        kilobytes = VTAGEPredictor().storage_kilobytes()
        assert 100 < kilobytes < 170

    def test_hybrid_total_storage_band(self):
        # Total hybrid budget in the paper is ≈ 385 KB; allow a generous band since the
        # per-entry field widths are approximations.
        kilobytes = default_paper_predictor().storage_kilobytes()
        assert 300 < kilobytes < 500

    def test_vtage_history_lengths_span_requested_range(self):
        vtage = VTAGEPredictor()
        assert vtage.history_lengths[0] == 2
        assert vtage.history_lengths[-1] == 64
        assert len(vtage.history_lengths) == 6
