"""Tests for the VTAGE-2DStride hybrid predictor."""

from repro.bpu.history import GlobalHistory
from repro.vp.base import PredictorStatistics, VPrediction
from repro.vp.confidence import DETERMINISTIC_3BIT_VECTOR
from repro.vp.hybrid import VTAGE2DStrideHybrid, default_paper_predictor
from repro.vp.stride import TwoDeltaStridePredictor
from repro.vp.vtage import VTAGEPredictor

PC = 0x321


def _make() -> VTAGE2DStrideHybrid:
    return VTAGE2DStrideHybrid(
        vtage=VTAGEPredictor(
            base_entries=512,
            tagged_entries=128,
            num_components=4,
            fpc_vector=DETERMINISTIC_3BIT_VECTOR,
        ),
        stride=TwoDeltaStridePredictor(entries=256, fpc_vector=DETERMINISTIC_3BIT_VECTOR),
    )


class TestArbitration:
    def test_strided_values_fall_back_to_stride_component(self):
        predictor = _make()
        history = GlobalHistory()
        value = 0
        for _ in range(40):
            prediction = predictor.predict(PC, history)
            predictor.train(PC, value, prediction)
            value += 9
        prediction = predictor.predict(PC, history)
        assert prediction.confident
        assert prediction.value == value
        assert prediction.meta.chosen == "stride"

    def test_constant_values_predicted_confidently(self):
        predictor = _make()
        history = GlobalHistory()
        for _ in range(20):
            predictor.train(PC, 1234, predictor.predict(PC, history))
        prediction = predictor.predict(PC, history)
        assert prediction.confident and prediction.value == 1234

    def test_history_correlated_values_use_vtage(self):
        predictor = _make()
        history = GlobalHistory()
        patterns = [(True, 10), (False, 20)]
        for index in range(200):
            taken, value = patterns[index % 2]
            history.push(taken)
            predictor.train(PC, value, predictor.predict(PC, history))
        taken, value = patterns[0]
        history.push(taken)
        prediction = predictor.predict(PC, history)
        assert prediction.value == value
        assert prediction.meta.chosen == "vtage"

    def test_cold_prediction_is_not_confident(self):
        prediction = _make().predict(PC, GlobalHistory())
        assert prediction is not None
        assert not prediction.confident


class TestTrainingAndRecovery:
    def test_train_without_prediction_still_learns(self):
        predictor = _make()
        history = GlobalHistory()
        for _ in range(20):
            predictor.train(PC, 5, None)
        assert predictor.predict(PC, history).value == 5

    def test_recover_delegates_to_stride_component(self):
        predictor = _make()
        history = GlobalHistory()
        for value in range(0, 200, 4):
            predictor.train(PC, value, predictor.predict(PC, history))
        predictor.predict(PC, history)
        predictor.predict(PC, history)
        predictor.recover()
        assert predictor.predict(PC, history).value == 200

    def test_storage_is_sum_of_components(self):
        predictor = _make()
        expected = predictor.vtage.storage_bits() + predictor.stride.storage_bits()
        assert predictor.storage_bits() == expected

    def test_validate_and_train_reports_correctness(self):
        predictor = _make()
        history = GlobalHistory()
        for _ in range(20):
            predictor.validate_and_train(PC, 42, predictor.lookup(PC, history))
        good = predictor.lookup(PC, history)
        assert predictor.validate_and_train(PC, 42, good) is True
        bad = predictor.lookup(PC, history)
        assert predictor.validate_and_train(PC, 43, bad) is False


class TestDefaults:
    def test_default_paper_predictor_uses_table2_sizing(self):
        predictor = default_paper_predictor()
        assert predictor.vtage.base_entries == 8192
        assert predictor.vtage.tagged_entries == 1024
        assert predictor.vtage.num_components == 6
        assert predictor.stride.entries == 8192
        assert predictor.stride.tag_bits == 51

    def test_statistics_object_present(self):
        assert isinstance(_make().stats, PredictorStatistics)

    def test_prediction_statistics_accounting(self):
        stats = PredictorStatistics()
        confident = VPrediction(5, True, "x")
        unused = VPrediction(7, False, "x")
        stats.record_lookup(confident)
        stats.record_lookup(unused)
        stats.record_lookup(None)
        stats.record_outcome(confident, 5)
        stats.record_outcome(unused, 7)
        assert stats.lookups == 3
        assert stats.confident_predictions == 1
        assert stats.correct_used == 1
        assert stats.unused_correct == 1
        assert stats.coverage == 1 / 3
        assert stats.accuracy == 1.0
