"""Trace cache and on-disk trace store behaviour."""

import pytest

from repro.pipeline.config import baseline_6_64
from repro.trace.cache import TRACE_CACHE_ENV_VAR, TraceCache, trace_cache_enabled
from repro.trace.capture import capture_workload_trace
from repro.trace.store import TRACE_STORE_ENV_VAR, TraceStore, default_trace_store
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import Workload, workload


class _NoStore:
    """Sentinel disabling the disk-store fallback regardless of the environment."""

    def load(self, program):
        return None

    def save(self, trace):
        return None


_NO_STORE = _NoStore()


class TestTraceCache:
    def test_capture_happens_once_per_workload(self):
        cache = TraceCache(store=_NO_STORE)
        config = baseline_6_64()
        first = cache.trace_for(workload("gcc"), 1000, config)
        second = cache.trace_for(workload("gcc"), 1000, config)
        assert first is second
        assert cache.captures == 1
        assert cache.hits == 1

    def test_longer_requirement_triggers_recapture(self):
        cache = TraceCache(store=_NO_STORE)
        config = baseline_6_64()
        short = cache.trace_for(workload("gcc"), 500, config)
        longer = cache.trace_for(workload("gcc"), 20_000, config)
        assert longer.length > short.length
        assert cache.captures == 2
        # The longer capture replaces the entry and serves smaller requests too.
        assert cache.trace_for(workload("gcc"), 500, config) is longer

    def test_trace_for_many_captures_once_for_the_deepest_plane(self):
        """A mixed batch costs ONE capture sized for its deepest fetch-ahead
        window — the serial path would capture for the shallow config first and
        re-capture when the deeper one arrived."""
        from repro.pipeline.config import baseline_8_64
        from repro.trace.capture import required_length

        cache = TraceCache(store=_NO_STORE)
        shallow, deep = baseline_6_64(), baseline_8_64()
        requests = [(1000, shallow), (9000, deep)]
        trace = cache.trace_for_many(workload("gcc"), requests)
        assert cache.captures == 1
        assert trace.covers(max(required_length(m, c) for m, c in requests))
        # Per-plane trace_for calls now all hit the shared capture.
        assert cache.trace_for(workload("gcc"), 1000, shallow) is trace
        assert cache.trace_for(workload("gcc"), 9000, deep) is trace
        assert cache.captures == 1

    def test_trace_for_many_rejects_an_empty_batch(self):
        cache = TraceCache(store=_NO_STORE)
        with pytest.raises(ValueError):
            cache.trace_for_many(workload("gcc"), [])

    def test_impostor_workload_does_not_reuse_registry_trace(self):
        cache = TraceCache(store=_NO_STORE)
        config = baseline_6_64()
        registry = cache.trace_for(workload("gcc"), 500, config)
        impostor = Workload(WorkloadSpec(name="gcc", paper_benchmark="403.gcc"))
        other = cache.trace_for(impostor, 500, config)
        assert other is not registry
        assert other.program is impostor.program

    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv(TRACE_CACHE_ENV_VAR, raising=False)
        assert trace_cache_enabled()
        monkeypatch.setenv(TRACE_CACHE_ENV_VAR, "0")
        assert not trace_cache_enabled()
        monkeypatch.setenv(TRACE_CACHE_ENV_VAR, "off")
        assert not trace_cache_enabled()
        monkeypatch.setenv(TRACE_CACHE_ENV_VAR, "1")
        assert trace_cache_enabled()


class TestTraceStore:
    def test_save_and_load_roundtrip(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        wl = workload("mcf")
        trace = capture_workload_trace(wl, 800)
        store.save(trace)
        assert len(store) == 1
        loaded = store.load(wl.program)
        assert loaded is not None
        assert loaded.length == trace.length
        assert [d.result for d in loaded.replay()] == [d.result for d in trace.replay()]

    def test_missing_and_corrupt_files_return_none(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        wl = workload("mcf")
        assert store.load(wl.program) is None
        store.save(capture_workload_trace(wl, 100))
        path = next((tmp_path / "traces").glob("*.trace"))
        path.write_bytes(b"garbage, no header")
        assert store.load(wl.program) is None

    def test_stale_trace_for_other_program_is_ignored(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        store.save(capture_workload_trace(workload("gcc"), 100))
        assert store.load(workload("mcf").program) is None

    def test_cache_pulls_from_store_instead_of_recapturing(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        config = baseline_6_64()
        warm = TraceCache(store=store)
        warm.trace_for(workload("gcc"), 700, config)
        assert warm.captures == 1
        cold = TraceCache(store=store)
        cold.trace_for(workload("gcc"), 700, config)
        assert cold.captures == 0
        assert cold.store_hits == 1

    def test_default_store_follows_environment(self, monkeypatch, tmp_path):
        monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
        assert default_trace_store() is None
        monkeypatch.setenv(TRACE_STORE_ENV_VAR, str(tmp_path / "traces"))
        store = default_trace_store()
        assert store is not None
        assert store.directory == tmp_path / "traces"
        assert default_trace_store() is store  # cached per path
