"""Bit-identity of simulation results across execution strategies.

Three hard invariants are enforced here:

* **trace subsystem** — every ``SimulationResult`` must be *byte identical* whether
  the simulator emulates inline (``REPRO_TRACE_CACHE=0``), replays a shared
  in-process capture, or replays a capture decoded from the on-disk store;
* **event-driven scheduler** — the cycle-skipping event wheel
  (``REPRO_EVENT_DRIVEN``, default on) must produce results byte-identical to the
  retained cycle-stepping reference loop (``REPRO_EVENT_DRIVEN=0``) across the full
  4-configuration × 4-workload grid the throughput harness measures;
* **dependency-driven wake-up** — the consumer-list issue-queue
  (``REPRO_WAKEUP_LISTS``, default on) must produce results byte-identical to the
  scan-based reference IQ (``REPRO_WAKEUP_LISTS=0``) across the same full grid;
* **structure-of-arrays backend** — the columnar pool + SoA stage loops
  (``REPRO_SOA=1``, opt-in) and the numpy batch kernels on top of them
  (``REPRO_SOA_BATCH=1``) must produce results byte-identical to the default
  object-record backend across the same full grid;
* **multi-config replay** — the single-pass replay engine
  (``REPRO_MULTI_REPLAY=1``, opt-in) routing each workload's configuration
  group through one :class:`MultiSimulator` pass must produce results
  byte-identical to per-cell serial replay across the same full grid, at any
  ``REPRO_MULTI_REPLAY_WIDTH`` chunking.
"""

import json

import pytest

from repro.campaign.executor import simulate_cell, simulate_cells
from repro.campaign.spec import CampaignCell
from repro.ooo.inflight import SOA_BATCH_ENV_VAR, SOA_ENV_VAR
from repro.ooo.issue_queue import WAKEUP_ENV_VAR
from repro.pipeline.config import named_config
from repro.pipeline.multi_replay import (
    MULTI_REPLAY_ENV_VAR,
    MULTI_REPLAY_WIDTH_ENV_VAR,
)
from repro.pipeline.simulator import EVENT_DRIVEN_ENV_VAR
from repro.trace.cache import TRACE_CACHE_ENV_VAR, shared_trace_cache
from repro.trace.capture import capture_workload_trace, required_length
from repro.trace.encoding import CapturedTrace
from repro.trace.store import TRACE_STORE_ENV_VAR
from repro.workloads.suite import workload

GRID_CONFIGS = ("Baseline_6_64", "Baseline_VP_6_64", "EOLE_4_64")
GRID_WORKLOADS = ("gcc", "mcf")
MAX_UOPS, WARMUP_UOPS = 2500, 500

#: The throughput harness's grid (benchmarks/perf/throughput.py): the event-driven
#: determinism gate runs the full 4 × 4 cross product.
EVENT_GRID_CONFIGS = (
    "Baseline_6_64",
    "Baseline_VP_6_64",
    "EOLE_4_64",
    "EOLE_4_64_4ports_4banks",
)
EVENT_GRID_WORKLOADS = ("wupwise", "bzip2", "gcc", "milc")


def _grid_dicts(monkeypatch, *, cache_enabled: bool) -> dict[str, dict]:
    if cache_enabled:
        monkeypatch.delenv(TRACE_CACHE_ENV_VAR, raising=False)
    else:
        monkeypatch.setenv(TRACE_CACHE_ENV_VAR, "0")
    shared_trace_cache.clear()
    out = {}
    for config_name in GRID_CONFIGS:
        for workload_name in GRID_WORKLOADS:
            cell = CampaignCell(
                config=named_config(config_name),
                workload_name=workload_name,
                max_uops=MAX_UOPS,
                warmup_uops=WARMUP_UOPS,
            )
            out[cell.describe()] = simulate_cell(cell).to_dict()
    return out


def test_grid_with_trace_cache_is_byte_identical_to_cold_run(monkeypatch):
    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    cached = _grid_dicts(monkeypatch, cache_enabled=True)
    cold = _grid_dicts(monkeypatch, cache_enabled=False)
    assert json.dumps(cached, sort_keys=True) == json.dumps(cold, sort_keys=True)


def test_explicit_trace_matches_inline_emulation():
    config = named_config("Baseline_VP_6_64")
    wl = workload("gcc")
    trace = capture_workload_trace(wl, required_length(MAX_UOPS, config))
    cell = CampaignCell(
        config=config, workload_name=wl.name, max_uops=MAX_UOPS, warmup_uops=WARMUP_UOPS
    )
    from_trace = simulate_cell(cell, wl, trace=trace)
    from_decoded = simulate_cell(
        cell, wl, trace=CapturedTrace.from_bytes(trace.to_bytes(), wl.program)
    )
    assert from_trace.to_dict() == from_decoded.to_dict()


def test_disk_store_replay_is_byte_identical(monkeypatch, tmp_path):
    cell = CampaignCell(
        config=named_config("EOLE_4_64"),
        workload_name="mcf",
        max_uops=MAX_UOPS,
        warmup_uops=WARMUP_UOPS,
    )
    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    shared_trace_cache.clear()
    in_memory = simulate_cell(cell).to_dict()

    monkeypatch.setenv(TRACE_STORE_ENV_VAR, str(tmp_path / "traces"))
    shared_trace_cache.clear()
    simulate_cell(cell)  # populates the store
    shared_trace_cache.clear()  # force the next run to decode from disk
    from_disk = simulate_cell(cell).to_dict()
    assert from_disk == in_memory


def test_shared_cache_counts_replays():
    shared_trace_cache.clear()
    before = shared_trace_cache.captures
    for config_name in ("Baseline_6_64", "EOLE_4_64"):
        cell = CampaignCell(
            config=named_config(config_name),
            workload_name="wupwise",
            max_uops=1000,
            warmup_uops=0,
        )
        simulate_cell(cell)
    assert shared_trace_cache.captures == before + 1  # one emulation, two configs


def _event_grid_dicts(monkeypatch, *, event_driven: bool) -> dict[str, dict]:
    if event_driven:
        monkeypatch.delenv(EVENT_DRIVEN_ENV_VAR, raising=False)
    else:
        monkeypatch.setenv(EVENT_DRIVEN_ENV_VAR, "0")
    out = {}
    for config_name in EVENT_GRID_CONFIGS:
        for workload_name in EVENT_GRID_WORKLOADS:
            cell = CampaignCell(
                config=named_config(config_name),
                workload_name=workload_name,
                max_uops=MAX_UOPS,
                warmup_uops=WARMUP_UOPS,
            )
            out[cell.describe()] = simulate_cell(cell).to_dict()
    return out


def test_event_driven_grid_is_byte_identical_to_cycle_stepping(monkeypatch):
    """The cycle-skipping event wheel is invisible across the full 4 × 4 grid.

    Every counter — including the per-stalled-cycle dispatch statistics that the
    scheduler credits in bulk for skipped spans — must match the cycle-stepping
    reference loop exactly.
    """
    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    event = _event_grid_dicts(monkeypatch, event_driven=True)
    stepped = _event_grid_dicts(monkeypatch, event_driven=False)
    assert json.dumps(event, sort_keys=True) == json.dumps(stepped, sort_keys=True)


def _wakeup_grid_dicts(monkeypatch, *, wakeup: bool) -> dict[str, dict]:
    if wakeup:
        monkeypatch.delenv(WAKEUP_ENV_VAR, raising=False)
    else:
        monkeypatch.setenv(WAKEUP_ENV_VAR, "0")
    out = {}
    for config_name in EVENT_GRID_CONFIGS:
        for workload_name in EVENT_GRID_WORKLOADS:
            cell = CampaignCell(
                config=named_config(config_name),
                workload_name=workload_name,
                max_uops=MAX_UOPS,
                warmup_uops=WARMUP_UOPS,
            )
            out[cell.describe()] = simulate_cell(cell).to_dict()
    return out


def test_wakeup_lists_grid_is_byte_identical_to_scan_reference(monkeypatch):
    """The dependency-driven wake-up IQ is invisible across the full 4 × 4 grid.

    Selection order, issue cycles, functional-unit interactions, squash/replay
    recovery and every derived statistic must match the scan-based reference
    (``REPRO_WAKEUP_LISTS=0``) exactly.
    """
    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    wake = _wakeup_grid_dicts(monkeypatch, wakeup=True)
    scan = _wakeup_grid_dicts(monkeypatch, wakeup=False)
    assert json.dumps(wake, sort_keys=True) == json.dumps(scan, sort_keys=True)


def test_wakeup_lists_off_under_cycle_stepping_matches_default(monkeypatch):
    """Both kill-switches together (scan IQ + stepping loop) still agree with the
    default fast paths — the four execution strategies form one equivalence class."""
    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    cell = CampaignCell(
        config=named_config("EOLE_4_64"),
        workload_name="gcc",
        max_uops=MAX_UOPS,
        warmup_uops=WARMUP_UOPS,
    )
    monkeypatch.delenv(WAKEUP_ENV_VAR, raising=False)
    monkeypatch.delenv(EVENT_DRIVEN_ENV_VAR, raising=False)
    fast = simulate_cell(cell).to_dict()
    monkeypatch.setenv(WAKEUP_ENV_VAR, "0")
    monkeypatch.setenv(EVENT_DRIVEN_ENV_VAR, "0")
    reference = simulate_cell(cell).to_dict()
    assert fast == reference


def _soa_grid_dicts(monkeypatch, *, soa: bool, batch: bool = False) -> dict[str, dict]:
    if soa:
        monkeypatch.setenv(SOA_ENV_VAR, "1")
    else:
        monkeypatch.delenv(SOA_ENV_VAR, raising=False)
    if batch:
        monkeypatch.setenv(SOA_BATCH_ENV_VAR, "1")
    else:
        monkeypatch.delenv(SOA_BATCH_ENV_VAR, raising=False)
    out = {}
    for config_name in EVENT_GRID_CONFIGS:
        for workload_name in EVENT_GRID_WORKLOADS:
            cell = CampaignCell(
                config=named_config(config_name),
                workload_name=workload_name,
                max_uops=MAX_UOPS,
                warmup_uops=WARMUP_UOPS,
            )
            out[cell.describe()] = simulate_cell(cell).to_dict()
    return out


def test_soa_grid_is_byte_identical_to_object_reference(monkeypatch):
    """The columnar backend — and its numpy batch kernels — are invisible across
    the full 4 × 4 grid.

    One reference sweep (object-record pool, the default), then ``REPRO_SOA=1``
    and ``REPRO_SOA=1`` + ``REPRO_SOA_BATCH=1``: every timing counter, predictor
    statistic and squash/replay artefact must survive the column round-trip and
    the vectorised drain/validation kernels byte-for-byte.
    """
    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    reference = json.dumps(_soa_grid_dicts(monkeypatch, soa=False), sort_keys=True)
    columnar = json.dumps(_soa_grid_dicts(monkeypatch, soa=True), sort_keys=True)
    assert columnar == reference
    batched = json.dumps(
        _soa_grid_dicts(monkeypatch, soa=True, batch=True), sort_keys=True
    )
    assert batched == reference


def test_soa_under_scan_iq_matches_default(monkeypatch):
    """SoA composed with the scan-based reference IQ (``REPRO_WAKEUP_LISTS=0``)
    still lands in the same equivalence class — the columnar stage loops cover
    both issue disciplines."""
    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    cell = CampaignCell(
        config=named_config("EOLE_4_64"),
        workload_name="gcc",
        max_uops=MAX_UOPS,
        warmup_uops=WARMUP_UOPS,
    )
    monkeypatch.delenv(SOA_ENV_VAR, raising=False)
    monkeypatch.delenv(WAKEUP_ENV_VAR, raising=False)
    default = simulate_cell(cell).to_dict()
    monkeypatch.setenv(SOA_ENV_VAR, "1")
    monkeypatch.setenv(WAKEUP_ENV_VAR, "0")
    combined = simulate_cell(cell).to_dict()
    assert combined == default


def _multi_grid_dicts(monkeypatch, *, multi: bool, width: str | None = None) -> dict[str, dict]:
    if multi:
        monkeypatch.setenv(MULTI_REPLAY_ENV_VAR, "1")
    else:
        monkeypatch.delenv(MULTI_REPLAY_ENV_VAR, raising=False)
    if width is not None:
        monkeypatch.setenv(MULTI_REPLAY_WIDTH_ENV_VAR, width)
    else:
        monkeypatch.delenv(MULTI_REPLAY_WIDTH_ENV_VAR, raising=False)
    shared_trace_cache.clear()
    out = {}
    for workload_name in EVENT_GRID_WORKLOADS:
        cells = [
            CampaignCell(
                config=named_config(config_name),
                workload_name=workload_name,
                max_uops=MAX_UOPS,
                warmup_uops=WARMUP_UOPS,
            )
            for config_name in EVENT_GRID_CONFIGS
        ]
        if multi:
            results = simulate_cells(cells)
        else:
            results = [simulate_cell(cell) for cell in cells]
        for cell, result in zip(cells, results):
            out[cell.describe()] = result.to_dict()
    return out


def test_multi_replay_grid_is_byte_identical_to_serial(monkeypatch):
    """One MultiSimulator pass per workload is invisible across the full 4 × 4 grid.

    Every ``SimStats`` counter and predictor statistic — VP coverage/accuracy,
    TAGE misprediction rates, cache miss rates — must match per-cell serial
    replay exactly, both at full batch width and when
    ``REPRO_MULTI_REPLAY_WIDTH`` chunks the group into smaller passes.
    """
    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    serial = json.dumps(_multi_grid_dicts(monkeypatch, multi=False), sort_keys=True)
    multi = json.dumps(_multi_grid_dicts(monkeypatch, multi=True), sort_keys=True)
    assert multi == serial
    chunked = json.dumps(
        _multi_grid_dicts(monkeypatch, multi=True, width="3"), sort_keys=True
    )
    assert chunked == serial


def test_multi_replay_through_campaign_is_byte_identical(monkeypatch):
    """The executor's serial path groups cells per workload under
    ``REPRO_MULTI_REPLAY=1`` and still lands byte-identical results for every
    cell of the grid (cache/store ladder and result plumbing included)."""
    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import Campaign

    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    campaign = Campaign(
        name="multi-determinism",
        configs=tuple(named_config(name) for name in EVENT_GRID_CONFIGS),
        workload_names=EVENT_GRID_WORKLOADS,
        max_uops=MAX_UOPS,
        warmup_uops=WARMUP_UOPS,
    )

    def outcome_dicts() -> str:
        shared_trace_cache.clear()
        outcome = run_campaign(campaign, store=None, workers=1)
        return json.dumps(
            {f"{key}": result.to_dict() for key, result in outcome.results.items()},
            sort_keys=True,
        )

    monkeypatch.delenv(MULTI_REPLAY_ENV_VAR, raising=False)
    serial = outcome_dicts()
    monkeypatch.setenv(MULTI_REPLAY_ENV_VAR, "1")
    multi = outcome_dicts()
    assert multi == serial


def test_multi_replay_composes_with_reference_loops(monkeypatch):
    """Multi-replay under the stepping loop + scan IQ (every kill-switch thrown
    at once) still agrees with the default fast paths — the replay engine sits
    above the loop flavours, not beside them."""
    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    cells = [
        CampaignCell(
            config=named_config(config_name),
            workload_name="gcc",
            max_uops=MAX_UOPS,
            warmup_uops=WARMUP_UOPS,
        )
        for config_name in EVENT_GRID_CONFIGS
    ]
    shared_trace_cache.clear()
    reference = [simulate_cell(cell).to_dict() for cell in cells]
    monkeypatch.setenv(MULTI_REPLAY_ENV_VAR, "1")
    monkeypatch.setenv(EVENT_DRIVEN_ENV_VAR, "0")
    monkeypatch.setenv(WAKEUP_ENV_VAR, "0")
    shared_trace_cache.clear()
    composed = [result.to_dict() for result in simulate_cells(cells)]
    assert composed == reference


def test_fault_arming_never_perturbs_simulation(monkeypatch):
    """``REPRO_FAULTS`` touches durability plumbing and liveness only: arming a
    plan — even one whose sites fire on every hit — leaves every simulation
    counter byte-identical to the faults-off run (the sites live in store/trace
    I/O and lease transitions, never in simulator loops)."""
    from repro.faults import FAULTS_ENV_VAR, active_faults, reset_faults

    cell = CampaignCell(
        config=named_config("EOLE_4_64"),
        workload_name="gcc",
        max_uops=MAX_UOPS,
        warmup_uops=WARMUP_UOPS,
    )
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    reset_faults()
    assert active_faults() is None  # the kill switch: off means off
    shared_trace_cache.clear()
    baseline = simulate_cell(cell).to_dict()

    monkeypatch.setenv(
        FAULTS_ENV_VAR,
        "coord.heartbeat.drop:every=1:n=0;coord.claim.delay:every=1:n=0:delay=0",
    )
    reset_faults()
    shared_trace_cache.clear()
    armed = simulate_cell(cell).to_dict()
    monkeypatch.delenv(FAULTS_ENV_VAR)
    reset_faults()
    assert json.dumps(armed, sort_keys=True) == json.dumps(baseline, sort_keys=True)


def test_fleet_under_injected_faults_is_byte_identical(monkeypatch, tmp_path):
    """A leased-queue fleet worker crashing on an injected torn append and losing
    heartbeats still lands results byte-identical to the serial path: crashes
    cost retries, never bits (the chaos smoke runs the subprocess version)."""
    from repro.campaign.coordinator import CampaignService, work_loop
    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import Campaign
    from repro.faults import FAULTS_ENV_VAR, reset_faults

    campaign = Campaign.from_names(
        GRID_CONFIGS[:2],
        ",".join(GRID_WORKLOADS),
        max_uops=MAX_UOPS,
        warmup_uops=WARMUP_UOPS,
        name="faulty-fleet",
    )
    service = CampaignService(tmp_path / "svc")
    service.submit(campaign, backoff_seconds=0.05, max_attempts=4)
    monkeypatch.setenv(TRACE_STORE_ENV_VAR, str(service.trace_dir))
    monkeypatch.setenv(
        FAULTS_ENV_VAR,
        "store.append.torn:at=2;coord.heartbeat.drop:every=2:n=0",
    )
    reset_faults()
    shared_trace_cache.clear()
    counts = work_loop(service, worker_id="w1", poll_seconds=0.05)
    monkeypatch.delenv(FAULTS_ENV_VAR)
    reset_faults()
    assert counts["requeued"] >= 1  # the torn append really did cost a retry

    store = service.result_store()
    assert not store.failures()
    monkeypatch.delenv(TRACE_STORE_ENV_VAR)
    shared_trace_cache.clear()
    serial = run_campaign(campaign, store=None, workers=1)
    for cell in campaign.cells():
        record = store.get_record(cell.fingerprint)
        expected = serial.results[(cell.config.name, cell.workload_name)]
        assert record is not None, f"missing {cell.describe()}"
        assert json.dumps(record["result"], sort_keys=True) == json.dumps(
            expected.to_dict(), sort_keys=True
        ), f"fleet result diverges for {cell.describe()}"


@pytest.fixture(autouse=True)
def _clean_shared_cache():
    yield
    shared_trace_cache.clear()
