"""Bit-identity of simulation results with and without the trace subsystem.

The hard invariant of the trace cache: every ``SimulationResult`` must be *byte
identical* whether the simulator emulates inline (``REPRO_TRACE_CACHE=0``), replays a
shared in-process capture, or replays a capture decoded from the on-disk store.
"""

import json

import pytest

from repro.campaign.executor import simulate_cell
from repro.campaign.spec import CampaignCell
from repro.pipeline.config import named_config
from repro.trace.cache import TRACE_CACHE_ENV_VAR, shared_trace_cache
from repro.trace.capture import capture_workload_trace, required_length
from repro.trace.encoding import CapturedTrace
from repro.trace.store import TRACE_STORE_ENV_VAR
from repro.workloads.suite import workload

GRID_CONFIGS = ("Baseline_6_64", "Baseline_VP_6_64", "EOLE_4_64")
GRID_WORKLOADS = ("gcc", "mcf")
MAX_UOPS, WARMUP_UOPS = 2500, 500


def _grid_dicts(monkeypatch, *, cache_enabled: bool) -> dict[str, dict]:
    if cache_enabled:
        monkeypatch.delenv(TRACE_CACHE_ENV_VAR, raising=False)
    else:
        monkeypatch.setenv(TRACE_CACHE_ENV_VAR, "0")
    shared_trace_cache.clear()
    out = {}
    for config_name in GRID_CONFIGS:
        for workload_name in GRID_WORKLOADS:
            cell = CampaignCell(
                config=named_config(config_name),
                workload_name=workload_name,
                max_uops=MAX_UOPS,
                warmup_uops=WARMUP_UOPS,
            )
            out[cell.describe()] = simulate_cell(cell).to_dict()
    return out


def test_grid_with_trace_cache_is_byte_identical_to_cold_run(monkeypatch):
    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    cached = _grid_dicts(monkeypatch, cache_enabled=True)
    cold = _grid_dicts(monkeypatch, cache_enabled=False)
    assert json.dumps(cached, sort_keys=True) == json.dumps(cold, sort_keys=True)


def test_explicit_trace_matches_inline_emulation():
    config = named_config("Baseline_VP_6_64")
    wl = workload("gcc")
    trace = capture_workload_trace(wl, required_length(MAX_UOPS, config))
    cell = CampaignCell(
        config=config, workload_name=wl.name, max_uops=MAX_UOPS, warmup_uops=WARMUP_UOPS
    )
    from_trace = simulate_cell(cell, wl, trace=trace)
    from_decoded = simulate_cell(
        cell, wl, trace=CapturedTrace.from_bytes(trace.to_bytes(), wl.program)
    )
    assert from_trace.to_dict() == from_decoded.to_dict()


def test_disk_store_replay_is_byte_identical(monkeypatch, tmp_path):
    cell = CampaignCell(
        config=named_config("EOLE_4_64"),
        workload_name="mcf",
        max_uops=MAX_UOPS,
        warmup_uops=WARMUP_UOPS,
    )
    monkeypatch.delenv(TRACE_STORE_ENV_VAR, raising=False)
    shared_trace_cache.clear()
    in_memory = simulate_cell(cell).to_dict()

    monkeypatch.setenv(TRACE_STORE_ENV_VAR, str(tmp_path / "traces"))
    shared_trace_cache.clear()
    simulate_cell(cell)  # populates the store
    shared_trace_cache.clear()  # force the next run to decode from disk
    from_disk = simulate_cell(cell).to_dict()
    assert from_disk == in_memory


def test_shared_cache_counts_replays():
    shared_trace_cache.clear()
    before = shared_trace_cache.captures
    for config_name in ("Baseline_6_64", "EOLE_4_64"):
        cell = CampaignCell(
            config=named_config(config_name),
            workload_name="wupwise",
            max_uops=1000,
            warmup_uops=0,
        )
        simulate_cell(cell)
    assert shared_trace_cache.captures == before + 1  # one emulation, two configs


@pytest.fixture(autouse=True)
def _clean_shared_cache():
    yield
    shared_trace_cache.clear()
