"""Trace-blob integrity: payload checksums, structural validation, fault sites."""

import json
import zlib

import pytest

from repro.faults import FAULTS_ENV_VAR, InjectedFault, reset_faults
from repro.faults.sites import (
    TRACE_SAVE_CORRUPT,
    TRACE_SAVE_CRASH,
    TRACE_SAVE_TRUNCATED,
)
from repro.trace.capture import capture_workload_trace
from repro.trace.encoding import (
    CapturedTrace,
    TraceEncodingError,
    validate_blob,
)
from repro.trace.store import TraceStore
from repro.workloads.suite import workload


@pytest.fixture(scope="module")
def gcc_trace() -> CapturedTrace:
    return capture_workload_trace(workload("gcc"), 600)


class TestPayloadChecksum:
    def test_header_carries_payload_crc(self, gcc_trace):
        blob = gcc_trace.to_bytes()
        header, payload = validate_blob(blob)
        assert header["payload_crc32"] == zlib.crc32(bytes(payload))

    def test_payload_bit_flip_is_detected(self, gcc_trace):
        blob = bytearray(gcc_trace.to_bytes())
        flip_at = (blob.find(b"\n") + 1 + len(blob)) // 2  # deep inside the payload
        blob[flip_at] ^= 0xFF
        with pytest.raises(TraceEncodingError, match="checksum"):
            validate_blob(bytes(blob))
        with pytest.raises(TraceEncodingError):
            CapturedTrace.from_bytes(bytes(blob), workload("gcc").program)

    def test_truncated_blob_is_detected(self, gcc_trace):
        blob = gcc_trace.to_bytes()
        with pytest.raises(TraceEncodingError, match="truncated"):
            validate_blob(blob[: len(blob) // 2])

    def test_legacy_blob_without_crc_still_loads(self, gcc_trace):
        blob = gcc_trace.to_bytes()
        newline = blob.find(b"\n")
        header = json.loads(blob[:newline])
        header.pop("payload_crc32")
        legacy = json.dumps(header, sort_keys=True).encode() + blob[newline:]
        validated, _ = validate_blob(legacy)
        assert "payload_crc32" not in validated
        restored = CapturedTrace.from_bytes(legacy, workload("gcc").program)
        assert restored.length == gcc_trace.length

    def test_garbage_is_rejected_with_a_reason(self):
        with pytest.raises(TraceEncodingError):
            validate_blob(b"no header newline here")


class TestInjectedTraceFaults:
    def test_corrupt_save_is_silent_but_load_rejects(
        self, tmp_path, monkeypatch, gcc_trace
    ):
        monkeypatch.setenv(FAULTS_ENV_VAR, TRACE_SAVE_CORRUPT)
        reset_faults()
        store = TraceStore(tmp_path)
        store.save(gcc_trace)  # the writer believes the save succeeded
        monkeypatch.delenv(FAULTS_ENV_VAR)
        reset_faults()
        assert store.load(workload("gcc").program) is None  # checksum catches it

    def test_truncated_save_is_rejected_on_load(self, tmp_path, monkeypatch, gcc_trace):
        monkeypatch.setenv(FAULTS_ENV_VAR, TRACE_SAVE_TRUNCATED)
        reset_faults()
        store = TraceStore(tmp_path)
        store.save(gcc_trace)
        monkeypatch.delenv(FAULTS_ENV_VAR)
        reset_faults()
        assert store.load(workload("gcc").program) is None

    def test_save_crash_leaves_tmp_orphan_and_no_blob(
        self, tmp_path, monkeypatch, gcc_trace
    ):
        monkeypatch.setenv(FAULTS_ENV_VAR, TRACE_SAVE_CRASH)
        reset_faults()
        store = TraceStore(tmp_path)
        with pytest.raises(InjectedFault):
            store.save(gcc_trace)
        monkeypatch.delenv(FAULTS_ENV_VAR)
        reset_faults()
        assert len(store) == 0  # nothing was published
        assert list(tmp_path.glob(".*.tmp"))  # the SIGKILL-faithful orphan
        # A clean retry publishes normally over the residue.
        store.save(gcc_trace)
        assert store.load(workload("gcc").program) is not None
