"""Concurrency and crash-durability tests for the on-disk trace store.

Regression tests for the shared-temp-path race in :meth:`TraceStore.save`: every
save used to stage through the *same* ``<fingerprint>.trace.tmp`` name, so two
workers capturing one workload (exactly what the distributed coordinator's
one-trace-per-fleet sync produces) could interleave writes and publish a torn
blob.  Saves now stage through per-writer ``mkstemp`` names and publish with an
atomic rename, so a reader observes a complete file or nothing.
"""

import multiprocessing

import pytest

from repro.trace.capture import capture_workload_trace
from repro.trace.store import TraceStore
from repro.workloads.suite import workload

#: Captured once in the parent; fork-children inherit it (traces pickle poorly).
_TRACE = None


def _save_repeatedly(directory: str, saves: int, barrier) -> None:
    store = TraceStore(directory)
    barrier.wait()
    for _ in range(saves):
        store.save(_TRACE)


def _tmp_orphans(directory):
    """Temp-staging leftovers (named ``.{fp}-XXXX.tmp``, hidden from globs)."""
    return [path for path in directory.iterdir() if path.suffix == ".tmp"]


class TestConcurrentSave:
    def test_racing_saves_of_one_fingerprint_stay_loadable(self, tmp_path):
        global _TRACE
        wl = workload("gcc")
        _TRACE = capture_workload_trace(wl, 600)
        procs = 4
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(procs)
        workers = [
            ctx.Process(target=_save_repeatedly, args=(str(tmp_path), 10, barrier))
            for _ in range(procs)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)

        store = TraceStore(tmp_path)
        assert len(store) == 1  # one file per fingerprint, despite 40 racing saves
        loaded = store.load(wl.program)
        assert loaded is not None, "racing saves published a torn trace"
        assert loaded.to_bytes() == _TRACE.to_bytes()
        assert not _tmp_orphans(tmp_path)  # every temp was renamed or unlinked


class TestCrashDurability:
    def test_crash_orphan_never_shadows_a_live_trace(self, tmp_path):
        wl = workload("gcc")
        trace = capture_workload_trace(wl, 600)
        store = TraceStore(tmp_path)
        store.save(trace)
        # A SIGKILL mid-save leaves a partial temp behind; it must be invisible.
        orphan = tmp_path / f".{trace.fingerprint[:16]}-crashed.tmp"
        orphan.write_bytes(trace.to_bytes()[:16])
        assert len(store) == 1
        assert store.load(wl.program).to_bytes() == trace.to_bytes()
        # And a later save still publishes cleanly alongside the orphan.
        store.save(trace)
        assert store.load(wl.program) is not None

    def test_failed_save_unlinks_its_temp(self, tmp_path):
        class _ExplodingTrace:
            fingerprint = "f" * 64

            def to_bytes(self):
                raise RuntimeError("serialisation boom")

        store = TraceStore(tmp_path)
        with pytest.raises(RuntimeError):
            store.save(_ExplodingTrace())
        assert list(tmp_path.iterdir()) == []  # no temp left, nothing published

    def test_corrupt_trace_file_reads_as_missing(self, tmp_path):
        wl = workload("gcc")
        trace = capture_workload_trace(wl, 600)
        store = TraceStore(tmp_path)
        path = store.save(trace)
        path.write_bytes(b"garbage, not a trace")
        assert store.load(wl.program) is None
