"""Trace determinism: capture→replay must equal direct emulation, field for field."""

import pytest

from repro.isa.emulator import collect_trace
from repro.trace.capture import capture_trace, capture_workload_trace, required_length
from repro.trace.encoding import CapturedTrace, program_fingerprint
from repro.workloads.suite import workload

_DYN_FIELDS = (
    "seq",
    "pc",
    "src_values",
    "result",
    "flags_result",
    "flags_in",
    "addr",
    "store_value",
    "taken",
    "next_pc",
)


def _assert_streams_equal(replayed, emulated):
    assert len(replayed) == len(emulated)
    for got, want in zip(replayed, emulated):
        assert got.uop is want.uop  # interned static µ-op, not a copy
        for name in _DYN_FIELDS:
            got_value = getattr(got, name)
            want_value = getattr(want, name)
            assert got_value == want_value, f"{name} differs at seq {want.seq}"
            assert type(got_value) is type(want_value), f"{name} type differs"


@pytest.mark.parametrize("name", ["gcc", "mcf", "wupwise"])
def test_capture_replay_matches_direct_emulation(name):
    wl = workload(name)
    budget = 3000
    trace = capture_workload_trace(wl, budget)
    emulated = collect_trace(wl.program, budget, state=wl.make_state())
    _assert_streams_equal(list(trace.replay()), emulated)


def test_columnar_roundtrip_through_bytes():
    wl = workload("gcc")
    trace = capture_workload_trace(wl, 2000)
    blob = trace.to_bytes()
    decoded = CapturedTrace.from_bytes(blob, wl.program)
    assert decoded.length == trace.length
    assert decoded.halted == trace.halted
    assert decoded.budget == trace.budget
    emulated = collect_trace(wl.program, 2000, state=wl.make_state())
    _assert_streams_equal(list(decoded.replay()), emulated)


def test_replay_shares_materialised_instructions():
    wl = workload("hmmer")
    trace = capture_workload_trace(wl, 500)
    first = list(trace.replay())
    second = list(trace.replay())
    assert all(a is b for a, b in zip(first, second))


def test_halted_trace_covers_any_length():
    # A straight-line program halts long before the capture budget.
    from repro.isa.builder import ProgramBuilder

    builder = ProgramBuilder("tiny")
    builder.movi(1, 7)
    builder.addi(1, 1, 1)
    program = builder.build()
    trace = capture_trace(program, budget=1000)
    assert trace.length == 2
    assert trace.halted
    assert trace.covers(10**9)


def test_truncated_trace_covers_only_its_length():
    wl = workload("gcc")
    trace = capture_workload_trace(wl, 100)
    assert not trace.halted
    assert trace.covers(100)
    assert not trace.covers(101)


def test_required_length_mirrors_simulator_budget():
    from repro.pipeline.config import baseline_6_64

    config = baseline_6_64()
    assert (
        required_length(1000, config)
        == 1000 + config.rob_size + config.frontend_capacity + 64
    )


def test_program_fingerprint_distinguishes_programs():
    assert program_fingerprint(workload("gcc").program) != program_fingerprint(
        workload("mcf").program
    )
    assert program_fingerprint(workload("gcc").program) == program_fingerprint(
        workload("gcc").program
    )
