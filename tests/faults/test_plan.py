"""Tests for the ``REPRO_FAULTS`` grammar and the deterministic fault injector."""

import pytest

from repro.faults import (
    FAULTS_ENV_VAR,
    FaultInjector,
    FaultPlan,
    FaultSpecError,
    InjectedFault,
    SITE_CATALOG,
    active_faults,
    faults_enabled,
    reset_faults,
)
from repro.faults.sites import (
    COORD_HEARTBEAT_DROP,
    STORE_APPEND_TORN,
    TRACE_SAVE_CORRUPT,
    WORKER_DIE_MID_LEASE,
)


def _injector(spec: str) -> FaultInjector:
    return FaultInjector(FaultPlan.parse(spec))


class TestGrammar:
    def test_bare_site_defaults_to_first_hit_once(self):
        plan = FaultPlan.parse(STORE_APPEND_TORN)
        (rule,) = plan.rules
        assert rule.site == STORE_APPEND_TORN
        assert rule.at is None and rule.every is None and rule.p is None
        assert rule.n == 1

    def test_full_clause_round_trip(self):
        plan = FaultPlan.parse(
            f"seed=7;{COORD_HEARTBEAT_DROP}:every=3:n=4;{STORE_APPEND_TORN}:at=2"
        )
        assert plan.seed == 7
        by_site = {rule.site: rule for rule in plan.rules}
        assert by_site[COORD_HEARTBEAT_DROP].every == 3
        assert by_site[COORD_HEARTBEAT_DROP].n == 4
        assert by_site[STORE_APPEND_TORN].at == 2

    def test_unknown_site_is_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown injection site"):
            FaultPlan.parse("store.append.sideways")

    def test_unknown_selector_is_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown selector"):
            FaultPlan.parse(f"{STORE_APPEND_TORN}:when=later")

    def test_bad_value_is_rejected(self):
        with pytest.raises(FaultSpecError, match="bad value"):
            FaultPlan.parse(f"{STORE_APPEND_TORN}:at=soon")

    def test_mixed_triggers_are_rejected(self):
        with pytest.raises(FaultSpecError, match="mixes"):
            FaultPlan.parse(f"{STORE_APPEND_TORN}:at=1:p=0.5")

    def test_bad_seed_is_rejected(self):
        with pytest.raises(FaultSpecError, match="bad seed"):
            FaultPlan.parse("seed=lucky")

    def test_every_site_constant_is_parseable(self):
        for site in SITE_CATALOG:
            assert FaultPlan.parse(site).rules[0].site == site


class TestTriggers:
    def test_at_fires_exactly_the_nth_hit(self):
        injector = _injector(f"{STORE_APPEND_TORN}:at=3")
        fires = [injector.fires(STORE_APPEND_TORN) is not None for _ in range(6)]
        assert fires == [False, False, True, False, False, False]

    def test_every_fires_periodically_up_to_n(self):
        injector = _injector(f"{COORD_HEARTBEAT_DROP}:every=2:n=2")
        fires = [injector.fires(COORD_HEARTBEAT_DROP) is not None for _ in range(8)]
        assert fires == [False, True, False, True, False, False, False, False]

    def test_n_zero_means_unlimited(self):
        injector = _injector(f"{COORD_HEARTBEAT_DROP}:every=2:n=0")
        fired = sum(
            injector.fires(COORD_HEARTBEAT_DROP) is not None for _ in range(10)
        )
        assert fired == 5

    def test_probability_schedule_is_deterministic_per_seed(self):
        spec = f"seed=5;{TRACE_SAVE_CORRUPT}:p=0.5:n=0"

        def schedule() -> list[bool]:
            injector = _injector(spec)
            return [injector.fires(TRACE_SAVE_CORRUPT) is not None for _ in range(32)]

        schedule_a, schedule_b = schedule(), schedule()
        assert schedule_a == schedule_b
        assert any(schedule_a) and not all(schedule_a)

    def test_different_seeds_give_different_probability_schedules(self):
        def schedule(seed: int) -> list[bool]:
            injector = _injector(f"seed={seed};{TRACE_SAVE_CORRUPT}:p=0.5:n=0")
            return [injector.fires(TRACE_SAVE_CORRUPT) is not None for _ in range(64)]

        assert any(schedule(1) != schedule(seed) for seed in (2, 3, 4))

    def test_unarmed_site_never_fires_but_armed_counters_accumulate(self):
        injector = _injector(f"{STORE_APPEND_TORN}:at=2")
        assert injector.fires(WORKER_DIE_MID_LEASE) is None
        injector.fires(STORE_APPEND_TORN)
        injector.fires(STORE_APPEND_TORN)
        report = injector.report()
        assert report == {STORE_APPEND_TORN: {"hits": 2, "fired": 1}}

    def test_crash_if_raises_injected_fault(self):
        injector = _injector(STORE_APPEND_TORN)
        with pytest.raises(InjectedFault, match=STORE_APPEND_TORN):
            injector.crash_if(STORE_APPEND_TORN)
        injector.crash_if(STORE_APPEND_TORN)  # n=1 spent: silent from now on


class TestActivePlan:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert active_faults() is None
        assert not faults_enabled()

    def test_cached_per_spec_and_reset(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, f"{STORE_APPEND_TORN}:at=2")
        first = active_faults()
        assert first is active_faults()  # same injector: counters accumulate
        first.fires(STORE_APPEND_TORN)
        reset_faults()
        fresh = active_faults()
        assert fresh is not first
        assert fresh.report()[STORE_APPEND_TORN]["hits"] == 0

    def test_changing_the_spec_swaps_the_plan(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, STORE_APPEND_TORN)
        first = active_faults()
        monkeypatch.setenv(FAULTS_ENV_VAR, f"{STORE_APPEND_TORN}:at=5")
        assert active_faults() is not first

    def test_bad_spec_raises_at_first_use(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "no.such.site")
        with pytest.raises(FaultSpecError):
            active_faults()
