"""End-to-end checks of the paper's headline claims on a small workload subset.

These are the "does the reproduction tell the paper's story" tests: value prediction
helps and never badly hurts, EOLE offloads a large µ-op share, and EOLE_4_64 stays close
to Baseline_VP_6_64 while Baseline_VP_4_64 does not always do so.
"""

import pytest

from repro.analysis.metrics import geometric_mean
from repro.analysis.runner import ResultCache, run_suite
from repro.pipeline.config import (
    baseline_6_64,
    baseline_vp_4_64,
    baseline_vp_6_64,
    eole_4_64,
    eole_4_64_4ports_4banks,
)
from repro.workloads.suite import workload

UOPS = 12000
WARMUP = 4000


@pytest.fixture(scope="module")
def results():
    """Simulate a contrasting subset on the main configurations once for all tests."""
    cache = ResultCache()
    subset = [workload(name) for name in ("wupwise", "bzip2", "crafty", "hmmer", "gcc")]
    configs = {
        "base": baseline_6_64(),
        "vp6": baseline_vp_6_64(),
        "vp4": baseline_vp_4_64(),
        "eole4": eole_4_64(),
        "eole4_banked": eole_4_64_4ports_4banks(),
    }
    return {
        key: run_suite(config, subset, UOPS, WARMUP, cache) for key, config in configs.items()
    }


def _speedups(results, over, under):
    return {
        name: results[over][name].ipc / results[under][name].ipc for name in results[over]
    }


class TestPaperHeadlines:
    def test_value_prediction_never_hurts_and_helps_predictable_codes(self, results):
        speedups = _speedups(results, "vp6", "base")
        assert all(value > 0.95 for value in speedups.values())
        assert speedups["wupwise"] > 1.1
        assert speedups["bzip2"] > 1.1

    def test_eole_4_stays_close_to_vp_6(self, results):
        ratios = _speedups(results, "eole4", "vp6")
        assert geometric_mean(ratios.values()) > 0.95
        assert all(value > 0.9 for value in ratios.values())

    def test_eole_4_beats_or_matches_vp_4(self, results):
        eole = _speedups(results, "eole4", "vp6")
        vp4 = _speedups(results, "vp4", "vp6")
        assert geometric_mean(eole.values()) >= geometric_mean(vp4.values()) - 1e-9

    def test_offload_share_in_paper_band(self, results):
        """Section 3.4: 10% to 60% of retired instructions bypass the OoO engine."""
        offloads = [run.stats.offload_ratio for run in results["eole4"].values()]
        assert all(0.05 < value < 0.8 for value in offloads)
        assert max(offloads) > 0.3

    def test_banked_port_limited_eole_close_to_ideal_eole(self, results):
        ratios = {
            name: results["eole4_banked"][name].ipc / results["eole4"][name].ipc
            for name in results["eole4"]
        }
        assert geometric_mean(ratios.values()) > 0.95

    def test_value_misprediction_rate_is_negligible(self, results):
        for run in results["vp6"].values():
            used = run.full_stats.predictions_used
            if used:
                assert run.full_stats.value_mispredictions / used < 0.02

    def test_memory_bound_workload_is_insensitive_to_everything(self):
        from repro.analysis.runner import run_workload

        mcf = workload("mcf")
        base = run_workload(baseline_6_64(), mcf, max_uops=2500, warmup_uops=500, cache=None)
        eole = run_workload(eole_4_64(), mcf, max_uops=2500, warmup_uops=500, cache=None)
        assert base.ipc < 0.6
        assert abs(eole.ipc - base.ipc) / base.ipc < 0.1
