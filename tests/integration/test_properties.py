"""Property-based integration tests over randomly generated programs.

Hypothesis drives the whole stack (emulator → predictors → pipeline) with programs
nobody hand-tuned, checking structural invariants that must hold for *any* program:
termination, IPC bounds, architectural-event invariance across configurations, and
sane accounting.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eole import EOLEVariant, eole_config
from repro.pipeline.config import PipelineConfig
from repro.pipeline.simulator import Simulator
from repro.workloads.generator import RandomProgramGenerator

SEEDS = st.integers(min_value=0, max_value=10_000)


def _simulate(program, **config_overrides):
    defaults = dict(name="prop", predictor_name="hybrid-small")
    defaults.update(config_overrides)
    simulator = Simulator(PipelineConfig(**defaults), program, max_uops=600)
    return simulator.run()


@settings(max_examples=8, deadline=None)
@given(SEEDS)
def test_simulation_terminates_and_commits_everything(seed):
    program = RandomProgramGenerator(seed).generate(body_ops=25)
    result = _simulate(program)
    assert result.stats.committed_uops == 600
    assert result.stats.cycles > 0


@settings(max_examples=8, deadline=None)
@given(SEEDS)
def test_ipc_respects_machine_width(seed):
    program = RandomProgramGenerator(seed).generate(body_ops=30)
    result = _simulate(program)
    assert 0 < result.ipc <= 8.0


@settings(max_examples=6, deadline=None)
@given(SEEDS)
def test_architectural_events_are_configuration_invariant(seed):
    """Trace-driven correctness: what commits never depends on the machine shape."""
    program = RandomProgramGenerator(seed).generate(body_ops=25)
    plain = _simulate(program, value_prediction=False, issue_width=2)
    eole = _simulate(
        program,
        value_prediction=True,
        issue_width=6,
        eole=eole_config(EOLEVariant.EOLE),
    )
    assert plain.stats.committed_loads == eole.stats.committed_loads
    assert plain.stats.committed_stores == eole.stats.committed_stores
    assert plain.stats.committed_branches == eole.stats.committed_branches
    assert plain.stats.committed_vp_eligible == eole.stats.committed_vp_eligible


@settings(max_examples=6, deadline=None)
@given(SEEDS)
def test_wider_machines_are_not_slower(seed):
    program = RandomProgramGenerator(seed).generate(body_ops=25)
    narrow = _simulate(program, issue_width=1, iq_size=16)
    wide = _simulate(program, issue_width=8, iq_size=64)
    assert wide.ipc >= narrow.ipc * 0.98


@settings(max_examples=6, deadline=None)
@given(SEEDS)
def test_offload_accounting_is_consistent(seed):
    program = RandomProgramGenerator(seed).generate(body_ops=25)
    result = _simulate(
        program, value_prediction=True, eole=eole_config(EOLEVariant.EOLE)
    )
    stats = result.stats
    offloaded = stats.early_executed + stats.late_executed_alu + stats.late_resolved_branches
    assert 0 <= offloaded <= stats.committed_uops
    assert stats.predictions_used <= stats.committed_vp_eligible
    assert abs(stats.offload_ratio - offloaded / stats.committed_uops) < 1e-9


@settings(max_examples=6, deadline=None)
@given(SEEDS, st.integers(min_value=1, max_value=3))
def test_value_prediction_accuracy_invariant(seed, scale):
    """Used predictions are overwhelmingly correct for any program (FPC's guarantee)."""
    program = RandomProgramGenerator(seed).generate(body_ops=10 * scale)
    result = _simulate(program, value_prediction=True)
    used = result.full_stats.predictions_used
    wrong = result.full_stats.value_mispredictions
    if used > 20:
        assert wrong / used < 0.1
