"""Observability kill-switches are invisible: the full throughput grid stays
byte-identical with tracing on, and with metrics on once the opt-in payload is
removed — the same bar the event-driven and wake-up-list switches meet."""

import json

import pytest

from repro.campaign.executor import simulate_cell
from repro.campaign.spec import CampaignCell
from repro.obs.metrics import METRICS_ENV_VAR
from repro.obs.tracer import PIPE_TRACE_ENV_VAR
from repro.ooo.inflight import SOA_ENV_VAR
from repro.pipeline.config import named_config
from repro.trace.cache import shared_trace_cache

GRID_CONFIGS = (
    "Baseline_6_64",
    "Baseline_VP_6_64",
    "EOLE_4_64",
    "EOLE_4_64_4ports_4banks",
)
GRID_WORKLOADS = ("wupwise", "bzip2", "gcc", "milc")
MAX_UOPS, WARMUP_UOPS = 2500, 500


@pytest.fixture(autouse=True)
def _clean_shared_cache():
    yield
    shared_trace_cache.clear()


def _grid_dicts() -> dict[str, dict]:
    out = {}
    for config_name in GRID_CONFIGS:
        for workload_name in GRID_WORKLOADS:
            cell = CampaignCell(
                config=named_config(config_name),
                workload_name=workload_name,
                max_uops=MAX_UOPS,
                warmup_uops=WARMUP_UOPS,
            )
            out[cell.describe()] = simulate_cell(cell).to_dict()
    return out


def test_pipe_trace_grid_is_byte_identical(monkeypatch):
    """Event tracing observes the pipeline without perturbing it anywhere."""
    monkeypatch.delenv(PIPE_TRACE_ENV_VAR, raising=False)
    off = _grid_dicts()
    monkeypatch.setenv(PIPE_TRACE_ENV_VAR, "1")
    on = _grid_dicts()
    assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)


def test_metrics_grid_is_byte_identical_modulo_the_payload(monkeypatch):
    """Metrics collection only *adds* the opt-in ``extra["metrics"]`` payload."""
    monkeypatch.delenv(METRICS_ENV_VAR, raising=False)
    off = _grid_dicts()
    monkeypatch.setenv(METRICS_ENV_VAR, "1")
    on = _grid_dicts()
    for cell_dict in on.values():
        payload = cell_dict["extra"].pop("metrics")
        assert payload["scalars"]["sim.committed_uops"] > 0
    assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)


def test_observed_multi_replay_grid_is_byte_identical(monkeypatch):
    """The hooks stay truthful under the multi-config replay engine: a fully
    observed (pipe-trace + metrics) grid routed through one ``MultiSimulator``
    pass per workload — where every plane owns its tracer/metrics registry —
    matches the observed serial grid byte-for-byte, metrics payload included."""
    from repro.campaign.executor import simulate_cells
    from repro.pipeline.multi_replay import MULTI_REPLAY_ENV_VAR

    monkeypatch.setenv(PIPE_TRACE_ENV_VAR, "1")
    monkeypatch.setenv(METRICS_ENV_VAR, "1")
    monkeypatch.delenv(MULTI_REPLAY_ENV_VAR, raising=False)
    reference = _grid_dicts()
    monkeypatch.setenv(MULTI_REPLAY_ENV_VAR, "1")
    shared_trace_cache.clear()
    multi = {}
    for workload_name in GRID_WORKLOADS:
        cells = [
            CampaignCell(
                config=named_config(config_name),
                workload_name=workload_name,
                max_uops=MAX_UOPS,
                warmup_uops=WARMUP_UOPS,
            )
            for config_name in GRID_CONFIGS
        ]
        for cell, result in zip(cells, simulate_cells(cells)):
            multi[cell.describe()] = result.to_dict()
    assert json.dumps(multi, sort_keys=True) == json.dumps(reference, sort_keys=True)


def test_observed_soa_grid_is_byte_identical_to_observed_reference(monkeypatch):
    """The hooks stay truthful under the columnar backend: a fully observed
    (pipe-trace + metrics) ``REPRO_SOA=1`` grid — where trace events and
    occupancy readings source from the SoA columns — matches the observed
    object-record grid byte-for-byte, metrics payload included."""
    monkeypatch.setenv(PIPE_TRACE_ENV_VAR, "1")
    monkeypatch.setenv(METRICS_ENV_VAR, "1")
    monkeypatch.delenv(SOA_ENV_VAR, raising=False)
    reference = _grid_dicts()
    monkeypatch.setenv(SOA_ENV_VAR, "1")
    columnar = _grid_dicts()
    assert json.dumps(columnar, sort_keys=True) == json.dumps(reference, sort_keys=True)
