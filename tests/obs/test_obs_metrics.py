"""Unified metrics registry: primitives, env switch, simulator drain, round-trip."""

import pytest

from repro.campaign.executor import simulate_cell
from repro.campaign.spec import CampaignCell
from repro.obs.metrics import (
    METRICS_ENV_VAR,
    Counter,
    Histogram,
    MetricsRegistry,
    maybe_sim_metrics,
    metrics_enabled,
    metrics_report,
)
from repro.pipeline.config import named_config
from repro.pipeline.stats import SimulationResult
from repro.trace.cache import shared_trace_cache


@pytest.fixture(autouse=True)
def _clean_shared_cache():
    yield
    shared_trace_cache.clear()


class TestPrimitives:
    def test_counter(self):
        counter = Counter("squash.cause.value_mispred")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_histogram_exact_buckets(self):
        hist = Histogram("iq.occupancy")
        for value in (3, 3, 5):
            hist.record(value)
        assert hist.to_dict() == {
            "count": 3,
            "sum": 11,
            "mean": 11 / 3,
            "buckets": {"3": 2, "5": 1},
        }

    def test_histogram_power_of_two_buckets(self):
        hist = Histogram("scheduler.skip_distance", power_of_two=True)
        for value in (0, 1, 2, 3, 5, 9):
            hist.record(value)
        assert hist.to_dict()["buckets"] == {"0": 1, "1": 1, "2": 2, "4": 1, "8": 1}

    def test_registry_create_or_return(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        registry.counter("a").inc()
        assert registry.to_dict()["counters"] == {"a": 1}


class TestEnvironmentSwitch:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV_VAR, raising=False)
        assert not metrics_enabled()
        assert maybe_sim_metrics() is None

    def test_enabled_builds_a_registry(self, monkeypatch):
        monkeypatch.setenv(METRICS_ENV_VAR, "1")
        assert isinstance(maybe_sim_metrics(), MetricsRegistry)


def _metered_result(monkeypatch) -> SimulationResult:
    monkeypatch.setenv(METRICS_ENV_VAR, "1")
    cell = CampaignCell(
        config=named_config("EOLE_4_64"),
        workload_name="gcc",
        max_uops=1500,
        warmup_uops=300,
    )
    return simulate_cell(cell)


class TestSimulatorDrain:
    def test_payload_rides_in_result_extra(self, monkeypatch):
        result = _metered_result(monkeypatch)
        payload = result.extra["metrics"]
        scalars = payload["scalars"]
        assert scalars["sim.committed_uops"] == result.full_stats.committed_uops
        assert scalars["sim.ipc"] == pytest.approx(result.full_stats.ipc)
        assert "vp.coverage" in scalars
        assert "bpu.tage.misprediction_rate" in scalars
        assert "cache.l1d.hit_rate" in scalars
        assert "dram.reads" in scalars
        assert "iq.peak_occupancy" in scalars

    def test_registered_histograms_present(self, monkeypatch):
        payload = _metered_result(monkeypatch).extra["metrics"]
        histograms = payload["histograms"]
        assert "iq.occupancy" in histograms
        assert "iq.wakeup_list_depth" in histograms
        assert "scheduler.skip_distance" in histograms
        assert histograms["iq.occupancy"]["count"] > 0

    def test_no_payload_when_disabled(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV_VAR, raising=False)
        cell = CampaignCell(
            config=named_config("EOLE_4_64"),
            workload_name="gcc",
            max_uops=800,
            warmup_uops=0,
        )
        assert "metrics" not in simulate_cell(cell).extra

    def test_round_trips_through_result_dict(self, monkeypatch):
        result = _metered_result(monkeypatch)
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt.extra["metrics"] == result.extra["metrics"]


class TestReport:
    def test_report_renders_every_section(self):
        registry = MetricsRegistry()
        registry.counter("squash.cause.value_mispred").inc(3)
        registry.histogram("iq.occupancy").record(5)
        payload = {"scalars": {"sim.ipc": 1.5}, **registry.to_dict()}
        report = metrics_report(payload)
        assert "scalars" in report and "sim.ipc" in report
        assert "counters" in report and "squash.cause.value_mispred" in report
        assert "histograms" in report and "iq.occupancy" in report
