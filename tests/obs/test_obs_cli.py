"""In-process tests of the ``repro-obs`` command line."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.tracer import PIPE_TRACE_ENV_VAR, validate_trace_events
from repro.trace.cache import shared_trace_cache


@pytest.fixture(autouse=True)
def _clean_shared_cache():
    yield
    shared_trace_cache.clear()


class TestTraceSubcommand:
    def test_writes_validated_exports(self, tmp_path, capsys):
        perfetto = tmp_path / "trace.json"
        konata = tmp_path / "trace.konata.txt"
        code = main(
            [
                "trace", "--config", "EOLE_4_64", "--workload", "gcc",
                "--max-uops", "1200", "--warmup-uops", "200",
                "--perfetto", str(perfetto), "--konata", str(konata),
            ]
        )
        assert code == 0
        payload = json.loads(perfetto.read_text())
        validate_trace_events(payload)
        assert payload["otherData"]["config"] == "EOLE_4_64"
        assert payload["traceEvents"]
        assert konata.read_text().startswith("O3PipeView:fetch:")
        assert "events emitted" in capsys.readouterr().out

    def test_respects_buffer_bound(self, tmp_path, capsys):
        perfetto = tmp_path / "trace.json"
        code = main(
            [
                "trace", "--max-uops", "1200", "--warmup-uops", "0",
                "--buffer", "32", "--perfetto", str(perfetto),
            ]
        )
        assert code == 0
        payload = json.loads(perfetto.read_text())
        assert payload["otherData"]["dropped"] > 0

    def test_restores_the_environment(self, monkeypatch, capsys):
        monkeypatch.delenv(PIPE_TRACE_ENV_VAR, raising=False)
        import os

        assert main(["trace", "--max-uops", "600", "--warmup-uops", "0"]) == 0
        assert PIPE_TRACE_ENV_VAR not in os.environ


class TestMetricsSubcommand:
    def test_json_format(self, capsys):
        code = main(
            ["metrics", "--max-uops", "800", "--warmup-uops", "0", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scalars"]["sim.committed_uops"] > 0
        assert "histograms" in payload

    def test_table_format(self, capsys):
        assert main(["metrics", "--max-uops", "600", "--warmup-uops", "0"]) == 0
        out = capsys.readouterr().out
        assert "scalars" in out and "sim.ipc" in out
