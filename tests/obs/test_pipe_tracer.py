"""The bounded pipeline-event ring buffer and its simulator integration."""

import pytest

from repro.obs.tracer import (
    DEFAULT_BUFFER_CAPACITY,
    PIPE_TRACE_BUFFER_ENV_VAR,
    PIPE_TRACE_ENV_VAR,
    PipeTracer,
    maybe_tracer,
    pipe_trace_enabled,
    trace_buffer_capacity,
)
from repro.pipeline.config import named_config
from repro.pipeline.simulator import Simulator
from repro.trace.cache import shared_trace_cache
from repro.workloads.suite import workload


class _Op:
    def __init__(self, seq, pc=0x40, slot=0):
        self.seq = seq
        self.pc = pc
        self.slot = slot


@pytest.fixture(autouse=True)
def _clean_shared_cache():
    yield
    shared_trace_cache.clear()


class TestRingBuffer:
    def test_bounded_oldest_first_eviction(self):
        tracer = PipeTracer(capacity=4)
        for seq in range(10):
            tracer.emit(seq, "fetch", _Op(seq))
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        assert [event[2] for event in tracer.events()] == [6, 7, 8, 9]

    def test_event_tuple_shape(self):
        tracer = PipeTracer(capacity=4)
        tracer.emit(12, "dispatch", _Op(3, pc=0x44, slot=7), "iq")
        assert tracer.events() == [(12, "dispatch", 3, 0x44, 7, "iq")]

    def test_clear_resets_counts(self):
        tracer = PipeTracer(capacity=4)
        tracer.emit(0, "fetch", _Op(0))
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 0
        assert tracer.dropped == 0

    def test_capacity_floor_is_one(self):
        assert PipeTracer(capacity=0).capacity == 1


class TestEnvironmentSwitch:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(PIPE_TRACE_ENV_VAR, raising=False)
        assert not pipe_trace_enabled()
        assert maybe_tracer() is None

    def test_enabling_values(self, monkeypatch):
        for value in ("1", "on", "true"):
            monkeypatch.setenv(PIPE_TRACE_ENV_VAR, value)
            assert pipe_trace_enabled()
        monkeypatch.setenv(PIPE_TRACE_ENV_VAR, "0")
        assert not pipe_trace_enabled()

    def test_buffer_capacity_env(self, monkeypatch):
        monkeypatch.delenv(PIPE_TRACE_BUFFER_ENV_VAR, raising=False)
        assert trace_buffer_capacity() == DEFAULT_BUFFER_CAPACITY
        monkeypatch.setenv(PIPE_TRACE_BUFFER_ENV_VAR, "128")
        assert trace_buffer_capacity() == 128
        monkeypatch.setenv(PIPE_TRACE_BUFFER_ENV_VAR, "bogus")
        assert trace_buffer_capacity() == DEFAULT_BUFFER_CAPACITY


def _run_simulator(max_uops=1200):
    wl = workload("gcc")
    simulator = Simulator(
        named_config("EOLE_4_64"),
        wl.program,
        max_uops=max_uops,
        warmup_uops=0,
        arch_state=wl.make_state(),
        workload_name=wl.name,
    )
    simulator.run()
    return simulator


class TestSimulatorIntegration:
    def test_tracer_absent_by_default(self, monkeypatch):
        monkeypatch.delenv(PIPE_TRACE_ENV_VAR, raising=False)
        assert _run_simulator(max_uops=300).tracer is None

    def test_traced_run_covers_the_lifecycle_stages(self, monkeypatch):
        monkeypatch.setenv(PIPE_TRACE_ENV_VAR, "1")
        tracer = _run_simulator().tracer
        assert tracer is not None and tracer.emitted > 0
        stages = {event[1] for event in tracer.events()}
        assert {"fetch", "dispatch", "issue", "complete", "commit"} <= stages

    def test_ring_bound_applies_to_simulation(self, monkeypatch):
        monkeypatch.setenv(PIPE_TRACE_ENV_VAR, "1")
        monkeypatch.setenv(PIPE_TRACE_BUFFER_ENV_VAR, "64")
        tracer = _run_simulator().tracer
        assert len(tracer) == 64
        assert tracer.dropped == tracer.emitted - 64
