"""The emulator's ``on_inst`` observation hook (both step and batch paths)."""

from repro.isa.builder import ProgramBuilder
from repro.isa.emulator import Emulator


def _program():
    b = ProgramBuilder()
    b.movi("r1", 5)
    b.addi("r2", "r1", 7)
    b.add("r3", "r1", "r2")
    return b.build()


def test_step_path_reports_every_instruction():
    seen = []
    emulator = Emulator(_program(), on_inst=seen.append)
    insts = []
    while True:
        inst = emulator.step()
        if inst is None:
            break
        insts.append(inst)
    assert seen == insts
    assert len(seen) == 3


def test_batch_path_reports_every_instruction():
    seen = []
    emulator = Emulator(_program(), on_inst=seen.append)
    batch = emulator.run_batch(100)
    assert seen == batch
    assert len(seen) == 3


def test_hook_does_not_change_results():
    plain = Emulator(_program()).run_batch(100)
    observed = Emulator(_program(), on_inst=lambda inst: None).run_batch(100)
    assert [(i.pc, i.result) for i in plain] == [(i.pc, i.result) for i in observed]
