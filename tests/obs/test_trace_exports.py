"""Golden tests for the Perfetto trace-event and Konata/O3PipeView exporters."""

import json

import pytest

from repro.obs.tracer import (
    PipeTracer,
    to_konata,
    to_trace_events,
    validate_trace_events,
    write_konata,
    write_trace_events,
)


class _Op:
    def __init__(self, seq, pc, slot):
        self.seq = seq
        self.pc = pc
        self.slot = slot


def _committed_tracer() -> PipeTracer:
    """One full lifecycle: fetch → dispatch → issue → complete → commit."""
    tracer = PipeTracer(capacity=64)
    op = _Op(seq=7, pc=0x40, slot=3)
    tracer.emit(10, "fetch", op, "ADD")
    tracer.emit(10, "vp_lookup", op, "stride")
    tracer.emit(12, "dispatch", op, "iq")
    tracer.emit(13, "wakeup", op, "wheel")
    tracer.emit(14, "issue", op)
    tracer.emit(16, "complete", op)
    tracer.emit(18, "commit", op)
    return tracer


def _squashed_tracer() -> PipeTracer:
    tracer = PipeTracer(capacity=64)
    op = _Op(seq=9, pc=0x44, slot=1)
    tracer.emit(20, "fetch", op, "BEQ")
    tracer.emit(21, "dispatch", op, "iq")
    tracer.emit(24, "squash", op, "value_mispred")
    tracer.emit(26, "complete", op, "squashed")  # stale wheel entry, dead incarnation
    return tracer


class TestPerfettoExport:
    def test_committed_lifecycle_spans(self):
        payload = to_trace_events(_committed_tracer())
        validate_trace_events(payload)
        events = payload["traceEvents"]
        lanes = [e for e in events if e["ph"] == "M"]
        assert lanes == [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 3,
             "args": {"name": "pool slot 3"}}
        ]
        spans = {e["name"]: e for e in events if e["ph"] == "X"}
        assert set(spans) == {"fetch", "dispatch", "issue", "complete"}
        assert spans["fetch"]["ts"] == 10 and spans["fetch"]["dur"] == 2
        assert spans["complete"]["ts"] == 16 and spans["complete"]["dur"] == 2
        assert spans["fetch"]["args"] == {"seq": 7, "pc": "0x40", "uop": "ADD"}
        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert instants == {"vp_lookup", "wakeup", "commit"}

    def test_instant_markers_carry_causes(self):
        payload = to_trace_events(_committed_tracer())
        lookup = next(
            e for e in payload["traceEvents"]
            if e["ph"] == "i" and e["name"] == "vp_lookup"
        )
        assert lookup["args"]["cause"] == "stride"
        assert lookup["s"] == "t"

    def test_squashed_lifecycle_gets_squash_instant_not_commit(self):
        payload = to_trace_events(_squashed_tracer())
        validate_trace_events(payload)
        instants = {e["name"] for e in payload["traceEvents"] if e["ph"] == "i"}
        assert "squash" in instants and "commit" not in instants

    def test_metadata_and_drop_accounting(self):
        tracer = _committed_tracer()
        payload = to_trace_events(tracer, metadata={"config": "EOLE_4_64"})
        assert payload["otherData"]["config"] == "EOLE_4_64"
        assert payload["otherData"]["emitted"] == tracer.emitted
        assert payload["otherData"]["dropped"] == 0

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_trace_events(_committed_tracer(), path)
        loaded = json.loads(path.read_text())
        assert loaded == written
        validate_trace_events(loaded)

    def test_partial_lifecycle_without_fetch_is_skipped(self):
        tracer = PipeTracer(capacity=64)
        tracer.emit(5, "commit", _Op(seq=1, pc=0x10, slot=0))  # fetch evicted
        payload = to_trace_events(tracer)
        assert payload["traceEvents"] == []


class TestKonataExport:
    def test_committed_record_golden(self):
        text = to_konata(_committed_tracer())
        assert text.splitlines() == [
            "O3PipeView:fetch:10000:0x00000040:0:7:ADD",
            "O3PipeView:decode:10000",
            "O3PipeView:rename:12000",
            "O3PipeView:dispatch:12000",
            "O3PipeView:issue:14000",
            "O3PipeView:complete:16000",
            "O3PipeView:retire:18000:store:0",
        ]

    def test_squashed_record_never_retires(self):
        text = to_konata(_squashed_tracer())
        assert "O3PipeView:retire:0:store:0" in text
        assert text.startswith("O3PipeView:fetch:20000:0x00000044:0:9:BEQ")

    def test_write_konata(self, tmp_path):
        path = tmp_path / "konata.txt"
        text = write_konata(_committed_tracer(), path)
        assert path.read_text() == text


class TestValidation:
    def test_rejects_non_object_payload(self):
        with pytest.raises(ValueError):
            validate_trace_events([])

    def test_rejects_missing_trace_events_list(self):
        with pytest.raises(ValueError):
            validate_trace_events({"traceEvents": "nope"})

    def test_rejects_bad_phase(self):
        with pytest.raises(ValueError, match="phase"):
            validate_trace_events(
                {"traceEvents": [{"name": "x", "ph": "Q", "pid": 0, "tid": 0, "ts": 0}]}
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="dur"):
            validate_trace_events(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": -1}
                ]}
            )
