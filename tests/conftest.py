"""Shared fixtures and helpers for the test suite.

The pipeline tests deliberately run *small* programs (a few hundred to a few thousand
µ-ops) on scaled-down predictor tables so that the whole suite stays fast while still
exercising every subsystem.
"""

from __future__ import annotations

import pytest

from repro.isa.builder import ProgramBuilder


@pytest.fixture(autouse=True)
def _hermetic_stores(monkeypatch):
    """Isolate unit tests from ambient persistent stores.

    CI (and developers) may export ``REPRO_RESULT_STORE`` / ``REPRO_TRACE_STORE`` so
    the *benchmark* suite reuses results across sessions; the unit tests under
    ``tests/`` must not read or pollute those stores (several tests assert on
    simulate/capture counts or intentionally bypass caching).  Tests that exercise
    the stores set the variables themselves via ``monkeypatch.setenv``.
    """
    monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    # Fault injection must never leak between tests: the injector is cached per
    # spec string, so two tests arming the *same* spec would share hit counters
    # without the reset.
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    from repro.faults import reset_faults

    reset_faults()
from repro.isa.emulator import ArchState
from repro.isa.program import Program
from repro.pipeline.config import PipelineConfig
from repro.pipeline.simulator import Simulator
from repro.pipeline.stats import SimulationResult


def build_counted_loop(
    body_builder=None, name: str = "loop", iterations: int = 1 << 40
) -> Program:
    """A simple counted loop; ``body_builder(b, i)`` emits the per-iteration body."""
    b = ProgramBuilder(name)
    b.movi("r1", 0)
    b.movi("r2", 0)
    b.label("loop")
    if body_builder is not None:
        body_builder(b)
    b.addi("r1", "r1", 1)
    b.cmp("r1", imm=iterations)
    b.bne("loop")
    return b.build()


def predictable_chain_loop(chain_ops: int = 6, fillers: int = 6) -> Program:
    """Loop with one stride-predictable serial chain plus independent filler work."""

    def body(b: ProgramBuilder) -> None:
        for _ in range(chain_ops):
            b.addi("r10", "r10", 3)
        for index in range(fillers):
            b.movi(f"r{16 + index % 8}", index)

    return build_counted_loop(body, name="predictable_chain")


def run_simulation(
    config: PipelineConfig,
    program: Program,
    max_uops: int = 2000,
    warmup_uops: int = 0,
    arch_state: ArchState | None = None,
) -> SimulationResult:
    """Run a small simulation and return its result."""
    simulator = Simulator(
        config,
        program,
        max_uops=max_uops,
        warmup_uops=warmup_uops,
        arch_state=arch_state,
    )
    return simulator.run()


def small_config(**overrides) -> PipelineConfig:
    """A pipeline configuration with small predictor tables (fast warm-up) for tests."""
    defaults = dict(name="test_config", predictor_name="hybrid-small")
    defaults.update(overrides)
    return PipelineConfig(**defaults)


@pytest.fixture
def simple_loop() -> Program:
    """A tiny predictable loop program."""
    return predictable_chain_loop()


@pytest.fixture
def fresh_state() -> ArchState:
    """An empty architectural state."""
    return ArchState()
