"""Tests for program containers and label resolution."""

import pytest

from repro.errors import ProgramError
from repro.isa.builder import ProgramBuilder
from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.program import Program


def _small_program() -> Program:
    b = ProgramBuilder("p")
    b.movi("r1", 0)
    b.label("loop")
    b.addi("r1", "r1", 1)
    b.cmp("r1", imm=10)
    b.bne("loop")
    return b.build()


class TestResolution:
    def test_resolve_assigns_targets(self):
        program = _small_program()
        branch_pc = len(program) - 1
        assert program.target_of(branch_pc) == 1  # the "loop" label

    def test_non_branch_has_no_target(self):
        program = _small_program()
        assert program.target_of(0) is None

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program(uops=[], name="empty").resolve()

    def test_undefined_label_rejected(self):
        program = Program(
            uops=[MicroOp(Opcode.JMP, target="nowhere")], labels={}, name="bad"
        )
        with pytest.raises(ProgramError):
            program.resolve()

    def test_unresolved_program_refuses_queries(self):
        program = Program(uops=[MicroOp(Opcode.NOP)], labels={})
        with pytest.raises(ProgramError):
            program.target_of(0)

    def test_pc_of_label(self):
        program = _small_program()
        assert program.pc_of("loop") == 1
        with pytest.raises(ProgramError):
            program.pc_of("missing")

    def test_label_immediate_resolution(self):
        b = ProgramBuilder("ind")
        b.la("r1", "target")
        b.jmpi("r1")
        b.label("target")
        b.nop()
        program = b.build()
        assert program.immediate_of(0) == program.pc_of("target")


class TestIntrospection:
    def test_len_and_indexing(self):
        program = _small_program()
        assert len(program) == 4
        assert program[0].opcode is Opcode.MOVI

    def test_static_mix_counts_classes(self):
        mix = _small_program().static_mix()
        assert mix["INT_ALU"] == 3
        assert mix["BR_COND"] == 1

    def test_branch_pcs(self):
        program = _small_program()
        assert program.branch_pcs() == [3]

    def test_uses_opcode(self):
        program = _small_program()
        assert program.uses_opcode(Opcode.BNE)
        assert not program.uses_opcode(Opcode.MUL)

    def test_listing_contains_labels_and_pcs(self):
        listing = _small_program().listing()
        assert "loop:" in listing
        assert "bne" in listing
