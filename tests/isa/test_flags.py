"""Tests for flag computation and the paper's flag-approximation rules."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa import flags as fl

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestExactFlags:
    def test_zero_flag(self):
        assert fl.flags_from_result(0) & fl.ZF
        assert not fl.flags_from_result(1) & fl.ZF

    def test_sign_flag(self):
        assert fl.flags_from_result(1 << 63) & fl.SF
        assert not fl.flags_from_result(1) & fl.SF

    def test_parity_flag_counts_low_byte_only(self):
        assert fl.flags_from_result(0b11) & fl.PF  # two bits set -> even parity
        assert not fl.flags_from_result(0b1) & fl.PF
        # Upper bytes must not influence PF.
        assert bool(fl.flags_from_result(0x0100) & fl.PF) == bool(
            fl.flags_from_result(0) & fl.PF
        )

    def test_add_carry(self):
        flags = fl.add_flags((1 << 64) - 1, 1)
        assert flags & fl.CF
        assert flags & fl.ZF

    def test_add_overflow_positive(self):
        # Adding two large positive signed numbers overflows into the sign bit.
        flags = fl.add_flags((1 << 62), (1 << 62))
        assert flags & fl.OF
        assert flags & fl.SF

    def test_sub_borrow(self):
        assert fl.sub_flags(0, 1) & fl.CF
        assert not fl.sub_flags(1, 1) & fl.CF

    def test_sub_equal_sets_zero(self):
        assert fl.sub_flags(123, 123) & fl.ZF

    def test_logic_flags_clear_carry_and_overflow(self):
        flags = fl.logic_flags((1 << 63) | 1)
        assert not flags & fl.CF
        assert not flags & fl.OF
        assert flags & fl.SF


class TestApproximateFlags:
    def test_overflow_always_zero(self):
        assert not fl.approximate_flags((1 << 62) * 2) & fl.OF

    def test_carry_mirrors_sign(self):
        assert fl.approximate_flags(1 << 63) & fl.CF
        assert not fl.approximate_flags(1) & fl.CF

    @given(U64)
    def test_result_derived_bits_match_exact(self, value):
        approx = fl.approximate_flags(value)
        exact = fl.flags_from_result(value)
        assert approx & fl.RESULT_DERIVED_FLAGS == exact & fl.RESULT_DERIVED_FLAGS

    @given(U64, U64)
    def test_validation_match_requires_all_flags(self, a, b):
        exact = fl.add_flags(a, b)
        approx = fl.approximate_flags((a + b) & fl.MASK64)
        matches = fl.flags_match_for_validation(exact, approx)
        assert matches == (exact == approx)

    def test_logic_result_always_validates(self):
        # For logic operations CF=OF=0 exactly, and the approximation only sets CF when
        # SF is set, so a non-negative logic result always validates.
        result = 0x0F0F
        assert fl.flags_match_for_validation(
            fl.logic_flags(result), fl.approximate_flags(result)
        )
