"""Tests for the architectural emulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.builder import ProgramBuilder
from repro.isa.emulator import ArchState, Emulator, collect_trace, _default_memory_value
from repro.isa.flags import MASK64
from repro.isa.registers import FLAGS_REG
from repro.workloads.generator import RandomProgramGenerator


def _run(builder: ProgramBuilder, max_uops: int = 1000):
    return collect_trace(builder.build(), max_uops)


class TestArithmetic:
    def test_add_and_immediate(self):
        b = ProgramBuilder()
        b.movi("r1", 5)
        b.addi("r2", "r1", 7)
        b.add("r3", "r1", "r2")
        trace = _run(b)
        assert trace[1].result == 12
        assert trace[2].result == 17

    def test_sub_wraps_to_64_bits(self):
        b = ProgramBuilder()
        b.movi("r1", 0)
        b.subi("r2", "r1", 1)
        trace = _run(b)
        assert trace[1].result == MASK64

    def test_logical_and_shift_ops(self):
        b = ProgramBuilder()
        b.movi("r1", 0b1100)
        b.and_("r2", "r1", imm=0b1010)
        b.or_("r3", "r1", imm=0b0001)
        b.xor("r4", "r1", imm=0b1111)
        b.shl("r5", "r1", 2)
        b.shr("r6", "r1", 2)
        trace = _run(b)
        assert [t.result for t in trace[1:]] == [0b1000, 0b1101, 0b0011, 0b110000, 0b11]

    def test_mul_div_mod(self):
        b = ProgramBuilder()
        b.movi("r1", 20)
        b.movi("r2", 6)
        b.mul("r3", "r1", "r2")
        b.div("r4", "r1", "r2")
        b.mod("r5", "r1", "r2")
        trace = _run(b)
        assert [t.result for t in trace[2:]] == [120, 3, 2]

    def test_division_by_zero_is_defined(self):
        b = ProgramBuilder()
        b.movi("r1", 5)
        b.movi("r2", 0)
        b.div("r3", "r1", "r2")
        b.mod("r4", "r1", "r2")
        trace = _run(b)
        assert trace[2].result == MASK64
        assert trace[3].result == 0

    def test_min_max_neg_not(self):
        b = ProgramBuilder()
        b.movi("r1", 9)
        b.movi("r2", 4)
        b.min_("r3", "r1", "r2")
        b.max_("r4", "r1", "r2")
        b.neg("r5", "r2")
        b.not_("r6", "r2")
        trace = _run(b)
        assert trace[2].result == 4
        assert trace[3].result == 9
        assert trace[4].result == (-4) & MASK64
        assert trace[5].result == (~4) & MASK64


class TestMemory:
    def test_store_then_load_round_trip(self):
        b = ProgramBuilder()
        b.movi("r1", 0x1000)
        b.movi("r2", 777)
        b.st("r1", "r2", 8)
        b.ld("r3", "r1", 8)
        trace = _run(b)
        assert trace[2].addr == 0x1008
        assert trace[2].store_value == 777
        assert trace[3].result == 777

    def test_uninitialised_memory_is_deterministic(self):
        b = ProgramBuilder()
        b.movi("r1", 0x2000)
        b.ld("r2", "r1", 0)
        first = _run(b)[1].result
        second = _run(b)[1].result
        assert first == second == _default_memory_value(0x2000)

    def test_initialise_array_helper(self):
        state = ArchState()
        state.initialise_array(0x100, [1, 2, 3])
        assert state.read_mem(0x100) == 1
        assert state.read_mem(0x110) == 3


class TestControlFlow:
    def test_counted_loop_executes_expected_iterations(self):
        b = ProgramBuilder()
        b.movi("r1", 0)
        b.label("loop")
        b.addi("r1", "r1", 1)
        b.cmp("r1", imm=3)
        b.bne("loop")
        b.movi("r2", 99)
        trace = collect_trace(b.build(), 100)
        # 3 iterations of (add, cmp, bne) plus movi r1 and the trailing movi.
        assert len(trace) == 1 + 3 * 3 + 1
        assert trace[-1].result == 99

    def test_branch_taken_flag_and_target(self):
        b = ProgramBuilder()
        b.movi("r1", 1)
        b.cmp("r1", imm=1)
        b.beq("skip")
        b.movi("r2", 123)
        b.label("skip")
        b.movi("r3", 5)
        trace = collect_trace(b.build(), 10)
        branch = trace[2]
        assert branch.taken
        assert branch.next_pc == 4
        assert trace[3].uop.opcode.value == "movi" and trace[3].result == 5

    def test_call_and_ret_use_shadow_stack(self):
        b = ProgramBuilder()
        b.jmp("main")
        b.label("func")
        b.movi("r5", 1)
        b.ret()
        b.label("main")
        b.call("func")
        b.movi("r6", 2)
        trace = collect_trace(b.build(), 20)
        opcodes = [t.uop.opcode.value for t in trace]
        assert opcodes == ["jmp", "call", "movi", "ret", "movi"]
        assert trace[3].next_pc == 4  # returns to the µ-op after the call

    def test_ret_with_empty_stack_halts(self):
        b = ProgramBuilder()
        b.movi("r1", 1)
        b.ret()
        b.movi("r2", 2)
        trace = collect_trace(b.build(), 10)
        assert len(trace) == 2

    def test_indirect_jump(self):
        b = ProgramBuilder()
        b.la("r1", "target")
        b.jmpi("r1")
        b.movi("r2", 1)
        b.label("target")
        b.movi("r3", 2)
        trace = collect_trace(b.build(), 10)
        assert trace[1].next_pc == 3
        assert trace[2].result == 2

    def test_flags_register_visible_to_branches(self):
        b = ProgramBuilder()
        b.movi("r1", 2)
        b.cmp("r1", imm=5)
        b.blt("less")
        b.movi("r2", 0)
        b.label("less")
        b.movi("r3", 1)
        trace = collect_trace(b.build(), 10)
        assert trace[2].taken
        assert trace[2].flags_in is not None

    def test_program_falls_off_end_and_halts(self):
        b = ProgramBuilder()
        b.movi("r1", 1)
        b.movi("r2", 2)
        trace = collect_trace(b.build(), 100)
        assert len(trace) == 2


class TestRunControl:
    def test_run_respects_max_uops(self):
        b = ProgramBuilder()
        b.movi("r1", 0)
        b.label("loop")
        b.addi("r1", "r1", 1)
        b.jmp("loop")
        trace = collect_trace(b.build(), 50)
        assert len(trace) == 50

    def test_step_returns_none_after_halt(self):
        b = ProgramBuilder()
        b.movi("r1", 1)
        emulator = Emulator(b.build())
        assert emulator.step() is not None
        assert emulator.step() is None
        assert emulator.halted

    def test_sequence_numbers_are_contiguous(self):
        b = ProgramBuilder()
        b.movi("r1", 0)
        b.label("loop")
        b.addi("r1", "r1", 1)
        b.jmp("loop")
        trace = collect_trace(b.build(), 30)
        assert [t.seq for t in trace] == list(range(30))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_programs_always_execute(self, seed):
        program = RandomProgramGenerator(seed).generate(body_ops=20)
        trace = collect_trace(program, 300)
        assert len(trace) == 300
        for inst in trace:
            if inst.result is not None:
                assert 0 <= inst.result <= MASK64


class TestRunBatch:
    """The batched capture fast path must be bit-identical to step()."""

    @staticmethod
    def _records(insts):
        return [
            (
                i.seq, i.pc, i.uop, i.src_values, i.result, i.flags_result,
                i.flags_in, i.addr, i.store_value, i.taken, i.next_pc,
            )
            for i in insts
        ]

    def _assert_equivalent(self, program, state_a, state_b, budget):
        reference = Emulator(program, state=state_a)
        batched = Emulator(program, state=state_b)
        expected = list(reference.run(budget))
        got = batched.run_batch(budget)
        assert self._records(got) == self._records(expected)
        assert batched.halted == reference.halted
        assert batched.pc == reference.pc
        assert batched.seq == reference.seq
        assert batched.state.regs == reference.state.regs
        assert batched.state.memory == reference.state.memory

    def test_matches_step_on_every_suite_workload(self):
        from repro.workloads.suite import SUITE_ORDER, workload

        for name in SUITE_ORDER:
            wl = workload(name)
            self._assert_equivalent(wl.program, wl.make_state(), wl.make_state(), 3000)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_matches_step_on_random_programs(self, seed):
        program = RandomProgramGenerator(seed).generate(body_ops=20)
        self._assert_equivalent(program, None, None, 400)

    def test_resumes_after_partial_batch(self):
        b = ProgramBuilder()
        b.movi("r1", 0)
        b.label("loop")
        b.addi("r1", "r1", 1)
        b.jmp("loop")
        program = b.build()
        reference = Emulator(program)
        expected = list(reference.run(50))
        split = Emulator(program)
        got = split.run_batch(20) + split.run_batch(30)
        assert self._records(got) == self._records(expected)
