"""Tests for the architectural register namespace."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProgramError
from repro.isa import registers as regs


class TestRegisterIds:
    def test_integer_registers_start_at_zero(self):
        assert regs.int_reg(0) == 0
        assert regs.int_reg(31) == 31

    def test_fp_registers_follow_integer_registers(self):
        assert regs.fp_reg(0) == regs.NUM_INT_REGS
        assert regs.fp_reg(31) == regs.NUM_INT_REGS + 31

    def test_flags_register_is_last(self):
        assert regs.FLAGS_REG == regs.NUM_ARCH_REGS - 1

    def test_total_register_count(self):
        assert regs.NUM_ARCH_REGS == regs.NUM_INT_REGS + regs.NUM_FP_REGS + 1

    def test_out_of_range_int_register_rejected(self):
        with pytest.raises(ProgramError):
            regs.int_reg(32)

    def test_negative_register_rejected(self):
        with pytest.raises(ProgramError):
            regs.int_reg(-1)

    def test_out_of_range_fp_register_rejected(self):
        with pytest.raises(ProgramError):
            regs.fp_reg(32)


class TestPredicates:
    def test_int_reg_predicate(self):
        assert regs.is_int_reg(0)
        assert regs.is_int_reg(31)
        assert not regs.is_int_reg(32)

    def test_fp_reg_predicate(self):
        assert regs.is_fp_reg(regs.fp_reg(5))
        assert not regs.is_fp_reg(5)

    def test_flags_predicate(self):
        assert regs.is_flags_reg(regs.FLAGS_REG)
        assert not regs.is_flags_reg(0)

    def test_valid_reg_bounds(self):
        assert regs.is_valid_reg(0)
        assert regs.is_valid_reg(regs.NUM_ARCH_REGS - 1)
        assert not regs.is_valid_reg(regs.NUM_ARCH_REGS)
        assert not regs.is_valid_reg(-1)


class TestNames:
    def test_int_name_round_trip(self):
        assert regs.reg_name(regs.parse_reg("r7")) == "r7"

    def test_fp_name_round_trip(self):
        assert regs.reg_name(regs.parse_reg("f12")) == "f12"

    def test_flags_name_round_trip(self):
        assert regs.reg_name(regs.parse_reg("flags")) == "flags"

    def test_parse_is_case_insensitive(self):
        assert regs.parse_reg("R3") == regs.int_reg(3)
        assert regs.parse_reg("FLAGS") == regs.FLAGS_REG

    def test_parse_rejects_garbage(self):
        with pytest.raises(ProgramError):
            regs.parse_reg("x5")

    def test_parse_rejects_out_of_range(self):
        with pytest.raises(ProgramError):
            regs.parse_reg("r99")

    def test_reg_name_rejects_invalid_id(self):
        with pytest.raises(ProgramError):
            regs.reg_name(regs.NUM_ARCH_REGS)

    @given(st.integers(min_value=0, max_value=regs.NUM_ARCH_REGS - 1))
    def test_name_parse_round_trip_property(self, reg):
        assert regs.parse_reg(regs.reg_name(reg)) == reg
