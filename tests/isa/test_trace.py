"""Tests for dynamic-trace records and trace characterisation."""

from repro.isa.builder import ProgramBuilder
from repro.isa.emulator import collect_trace, generate_trace
from repro.isa.opcode import OpClass
from repro.isa.trace import characterize, take


def _mixed_program():
    b = ProgramBuilder("mix")
    b.movi("r1", 0)
    b.movi("r2", 0x1000)
    b.label("loop")
    b.addi("r1", "r1", 1)
    b.ld("r3", "r2", 0)
    b.st("r2", "r1", 8)
    b.fadd("f1", "f1", "f2")
    b.cmp("r1", imm=1 << 30)
    b.bne("loop")
    return b.build()


class TestCharacterize:
    def test_counts_and_ratios(self):
        stats = characterize(collect_trace(_mixed_program(), 602))
        assert stats.total == 602
        assert stats.loads == 100
        assert stats.stores == 100
        assert stats.branches == 100
        assert 0 < stats.branch_ratio < 0.2
        assert abs(stats.memory_ratio - 200 / 602) < 1e-9

    def test_vp_eligible_excludes_stores_and_branches(self):
        stats = characterize(collect_trace(_mixed_program(), 602))
        # movi, addi, ld, fadd and cmp-less ops produce results; stores/branches/cmp not.
        assert stats.vp_eligible == stats.total - stats.stores - stats.branches - 100

    def test_distinct_pcs_bounded_by_program_size(self):
        program = _mixed_program()
        stats = characterize(collect_trace(program, 500))
        assert stats.distinct_pcs <= len(program)

    def test_per_class_totals_sum_to_total(self):
        stats = characterize(collect_trace(_mixed_program(), 300))
        assert sum(stats.per_class.values()) == stats.total

    def test_class_ratio(self):
        stats = characterize(collect_trace(_mixed_program(), 300))
        assert stats.class_ratio(OpClass.LOAD) > 0
        assert stats.class_ratio(OpClass.INT_DIV) == 0

    def test_empty_trace(self):
        stats = characterize([])
        assert stats.total == 0
        assert stats.branch_ratio == 0.0
        assert stats.vp_eligible_ratio == 0.0


class TestTake:
    def test_take_limits_count(self):
        stream = generate_trace(_mixed_program(), 1000)
        first = take(stream, 10)
        assert len(first) == 10
        assert [i.seq for i in first] == list(range(10))

    def test_take_handles_short_streams(self):
        b = ProgramBuilder()
        b.movi("r1", 1)
        assert len(take(generate_trace(b.build(), 100), 50)) == 1
