"""Tests for the assembly-like program builder DSL."""

import pytest

from repro.errors import ProgramError
from repro.isa.builder import ProgramBuilder
from repro.isa.opcode import Opcode
from repro.isa.registers import FLAGS_REG, fp_reg, int_reg


class TestOperands:
    def test_register_names_and_ids_are_equivalent(self):
        b1 = ProgramBuilder()
        b1.add("r1", "r2", "r3")
        b2 = ProgramBuilder()
        b2.add(int_reg(1), int_reg(2), int_reg(3))
        assert b1._uops[0] == b2._uops[0]

    def test_alu_requires_register_or_immediate(self):
        b = ProgramBuilder()
        with pytest.raises(ProgramError):
            b.add("r1", "r2", None)

    def test_immediate_form(self):
        b = ProgramBuilder()
        uop = b.addi("r1", "r2", 42)
        assert uop.imm == 42
        assert uop.srcs == (int_reg(2),)

    def test_cmp_sets_flags(self):
        b = ProgramBuilder()
        assert b.cmp("r1", imm=0).sets_flags

    def test_branch_reads_flags(self):
        b = ProgramBuilder()
        b.label("t")
        assert b.beq("t").srcs == (FLAGS_REG,)

    def test_memory_forms(self):
        b = ProgramBuilder()
        load = b.ld("r1", "r2", 16)
        store = b.st("r2", "r3", 24)
        assert load.opcode is Opcode.LD and load.imm == 16
        assert store.opcode is Opcode.ST and store.srcs == (int_reg(2), int_reg(3))

    def test_fp_forms_use_fp_registers(self):
        b = ProgramBuilder()
        uop = b.fadd("f1", "f2", "f3")
        assert uop.dst == fp_reg(1)

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ProgramError):
            b.label("x")


class TestBuild:
    def test_build_resolves_program(self):
        b = ProgramBuilder("t")
        b.movi("r1", 1)
        b.label("end")
        b.jmp("end")
        program = b.build()
        assert program.resolved
        assert program.target_of(1) == 1

    def test_build_with_missing_label_fails(self):
        b = ProgramBuilder("t")
        b.jmp("missing")
        with pytest.raises(ProgramError):
            b.build()

    def test_every_opcode_family_is_emittable(self):
        b = ProgramBuilder("all")
        b.label("start")
        b.movi("r1", 5)
        b.add("r2", "r1", "r1")
        b.sub("r3", "r2", "r1")
        b.and_("r4", "r2", imm=0xFF)
        b.or_("r5", "r2", "r3")
        b.xor("r6", "r2", imm=1)
        b.shl("r7", "r2", 2)
        b.shr("r8", "r2", 2)
        b.mov("r9", "r2")
        b.not_("r10", "r2")
        b.neg("r11", "r2")
        b.min_("r12", "r1", "r2")
        b.max_("r13", "r1", "r2")
        b.mul("r14", "r1", "r2")
        b.div("r15", "r2", "r1")
        b.mod("r16", "r2", "r1")
        b.fmov("f1", "f0")
        b.fcvt("f2", "r1")
        b.fadd("f3", "f1", "f2")
        b.fsub("f4", "f3", "f2")
        b.fmul("f5", "f3", "f2")
        b.fma("f6", "f3", "f2", "f1")
        b.fdiv("f7", "f3", "f2")
        b.fsqrt("f8", "f3")
        b.ld("r17", "r1", 0)
        b.fld("f9", "r1", 8)
        b.st("r1", "r2", 0)
        b.fst("r1", "f3", 8)
        b.cmp("r1", "r2")
        b.beq("start")
        b.bne("start")
        b.blt("start")
        b.bge("start")
        b.bgt("start")
        b.ble("start")
        b.bcs("start")
        b.bvs("start")
        b.call("start")
        b.ret()
        b.la("r18", "start")
        b.jmpi("r18")
        b.nop()
        b.jmp("start")
        program = b.build()
        assert len(program) == 43
