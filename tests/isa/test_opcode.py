"""Tests for opcodes, operation classes and latencies."""

from repro.isa.opcode import (
    BRANCH_CLASSES,
    MEMORY_CLASSES,
    OPCLASS_LATENCY,
    OPCODE_CLASS,
    Opcode,
    OpClass,
    SINGLE_CYCLE_ALU_CLASSES,
    UNPIPELINED_CLASSES,
    is_branch,
    is_conditional_branch,
    is_load,
    is_memory,
    is_single_cycle_alu,
    is_store,
    latency_of,
    opclass_of,
)


class TestClassification:
    def test_every_opcode_has_a_class(self):
        for opcode in Opcode:
            assert opcode in OPCODE_CLASS

    def test_every_class_has_a_latency(self):
        for opclass in OpClass:
            assert opclass in OPCLASS_LATENCY

    def test_add_is_single_cycle_alu(self):
        assert opclass_of(Opcode.ADD) is OpClass.INT_ALU
        assert is_single_cycle_alu(Opcode.ADD)
        assert latency_of(Opcode.ADD) == 1

    def test_mul_and_div_latencies_match_table1(self):
        assert latency_of(Opcode.MUL) == 3
        assert latency_of(Opcode.DIV) == 25

    def test_fp_latencies_match_table1(self):
        assert latency_of(Opcode.FADD) == 3
        assert latency_of(Opcode.FMUL) == 5
        assert latency_of(Opcode.FDIV) == 10

    def test_divisions_are_unpipelined(self):
        assert OpClass.INT_DIV in UNPIPELINED_CLASSES
        assert OpClass.FP_DIV in UNPIPELINED_CLASSES
        assert OpClass.INT_MUL not in UNPIPELINED_CLASSES

    def test_only_int_alu_is_eole_candidate_class(self):
        assert SINGLE_CYCLE_ALU_CLASSES == {OpClass.INT_ALU}
        assert not is_single_cycle_alu(Opcode.FADD)
        assert not is_single_cycle_alu(Opcode.LD)
        assert not is_single_cycle_alu(Opcode.MUL)


class TestPredicates:
    def test_branch_predicates(self):
        assert is_branch(Opcode.BEQ)
        assert is_branch(Opcode.JMP)
        assert is_branch(Opcode.CALL)
        assert is_branch(Opcode.RET)
        assert is_branch(Opcode.JMPI)
        assert not is_branch(Opcode.ADD)

    def test_conditional_branch_predicate(self):
        assert is_conditional_branch(Opcode.BNE)
        assert not is_conditional_branch(Opcode.JMP)
        assert not is_conditional_branch(Opcode.RET)

    def test_memory_predicates(self):
        assert is_load(Opcode.LD)
        assert is_load(Opcode.FLD)
        assert is_store(Opcode.ST)
        assert is_store(Opcode.FST)
        assert is_memory(Opcode.LD) and is_memory(Opcode.ST)
        assert not is_memory(Opcode.ADD)

    def test_branch_classes_are_disjoint_from_memory_classes(self):
        assert not BRANCH_CLASSES & MEMORY_CLASSES

    def test_loads_and_stores_in_memory_classes(self):
        assert opclass_of(Opcode.LD) in MEMORY_CLASSES
        assert opclass_of(Opcode.FST) in MEMORY_CLASSES
