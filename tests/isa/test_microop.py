"""Tests for static µ-op construction and classification."""

import pytest

from repro.errors import ProgramError
from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.registers import FLAGS_REG


class TestConstruction:
    def test_simple_add(self):
        uop = MicroOp(Opcode.ADD, dst=3, srcs=(1, 2))
        assert uop.dst == 3
        assert uop.srcs == (1, 2)
        assert uop.latency == 1
        assert uop.is_single_cycle_alu

    def test_invalid_source_register_rejected(self):
        with pytest.raises(ProgramError):
            MicroOp(Opcode.ADD, dst=1, srcs=(200,))

    def test_invalid_destination_register_rejected(self):
        with pytest.raises(ProgramError):
            MicroOp(Opcode.ADD, dst=-3, srcs=(1, 2))

    def test_branch_requires_target(self):
        with pytest.raises(ProgramError):
            MicroOp(Opcode.BEQ, srcs=(FLAGS_REG,))

    def test_non_branch_rejects_target(self):
        with pytest.raises(ProgramError):
            MicroOp(Opcode.ADD, dst=1, srcs=(2, 3), target="loop")

    def test_cmp_always_sets_flags(self):
        uop = MicroOp(Opcode.CMP, srcs=(1, 2))
        assert uop.sets_flags
        assert uop.writes_flags

    def test_fp_op_cannot_set_flags(self):
        with pytest.raises(ProgramError):
            MicroOp(Opcode.FADD, dst=40, srcs=(41, 42), sets_flags=True)


class TestClassification:
    def test_vp_eligibility_requires_destination(self):
        assert MicroOp(Opcode.ADD, dst=1, srcs=(2, 3)).vp_eligible
        assert MicroOp(Opcode.LD, dst=1, srcs=(2,), imm=0).vp_eligible
        assert not MicroOp(Opcode.ST, srcs=(1, 2), imm=0).vp_eligible
        assert not MicroOp(Opcode.BEQ, srcs=(FLAGS_REG,), target="t").vp_eligible
        assert not MicroOp(Opcode.NOP).vp_eligible

    def test_conditional_branch_reads_flags_implicitly(self):
        uop = MicroOp(Opcode.BNE, srcs=(FLAGS_REG,), target="loop")
        assert uop.reads_flags
        assert FLAGS_REG in uop.source_registers()

    def test_flag_setting_op_writes_flags_register(self):
        uop = MicroOp(Opcode.SUB, dst=1, srcs=(2, 3), sets_flags=True)
        assert FLAGS_REG in uop.destination_registers()
        assert 1 in uop.destination_registers()

    def test_store_sources(self):
        uop = MicroOp(Opcode.ST, srcs=(4, 5), imm=8)
        assert uop.is_store and uop.is_memory
        assert uop.destination_registers() == ()

    def test_string_rendering_mentions_opcode_and_registers(self):
        uop = MicroOp(Opcode.ADD, dst=1, srcs=(2,), imm=7)
        text = str(uop)
        assert "add" in text and "r1" in text and "#7" in text
