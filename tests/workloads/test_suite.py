"""Tests for the 19-benchmark synthetic suite."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.emulator import collect_trace
from repro.isa.trace import characterize
from repro.workloads.suite import (
    FAST_SUBSET,
    SUITE_ORDER,
    all_workloads,
    fast_workloads,
    workload,
    workload_names,
)


class TestSuiteStructure:
    def test_nineteen_workloads_like_table3(self):
        assert len(SUITE_ORDER) == 19
        assert len(all_workloads()) == 19

    def test_twelve_int_and_seven_fp_like_table3(self):
        categories = [wl.spec.category for wl in all_workloads()]
        assert categories.count("INT") == 12
        assert categories.count("FP") == 7

    def test_every_workload_maps_to_a_paper_benchmark(self):
        for wl in all_workloads():
            assert wl.paper_benchmark
            assert wl.spec.paper_ipc is not None

    def test_paper_benchmarks_are_unique(self):
        names = [wl.paper_benchmark for wl in all_workloads()]
        assert len(set(names)) == len(names)

    def test_lookup_by_name(self):
        assert workload("mcf").name == "mcf"
        with pytest.raises(ConfigurationError):
            workload("doom")

    def test_unknown_workload_error_names_the_known_suite(self):
        with pytest.raises(ConfigurationError, match="unknown workload 'doom'"):
            workload("doom")
        with pytest.raises(ConfigurationError, match="mcf"):
            workload("doom")

    def test_fast_subset_is_a_subset(self):
        assert set(FAST_SUBSET) <= set(SUITE_ORDER)
        assert [wl.name for wl in fast_workloads()] == list(FAST_SUBSET)

    def test_bench_subset_is_a_subset_of_the_suite(self):
        from repro.campaign.spec import BENCH_SUBSET

        assert set(BENCH_SUBSET) <= set(SUITE_ORDER)
        assert len(set(BENCH_SUBSET)) == len(BENCH_SUBSET)

    def test_workload_names_order(self):
        assert workload_names() == list(SUITE_ORDER)

    def test_programs_are_cached(self):
        wl = workload("gcc")
        assert wl.program is wl.program

    def test_make_state_returns_fresh_states(self):
        wl = workload("mcf")
        assert wl.make_state() is not wl.make_state()

    def test_states_are_independent_across_calls(self):
        wl = workload("gzip")
        first, second = wl.make_state(), wl.make_state()
        address = next(iter(first.memory)) if first.memory else 0
        original = second.memory.get(address, 0)
        first.memory[address] = original + 12345
        assert second.memory.get(address, 0) == original


class TestSuiteBehaviouralDiversity:
    def test_all_programs_build_and_execute(self):
        for wl in all_workloads():
            trace = collect_trace(wl.program, 300, state=wl.make_state())
            assert len(trace) == 300, wl.name

    def test_memory_bound_workloads_chase_pointers(self):
        stats = characterize(collect_trace(workload("mcf").program, 1500, state=workload("mcf").make_state()))
        assert stats.memory_ratio > 0.05

    def test_branchy_workloads_have_more_branches_than_streaming_ones(self):
        def branch_ratio(name):
            wl = workload(name)
            return characterize(collect_trace(wl.program, 2000, state=wl.make_state())).branch_ratio

        assert branch_ratio("gobmk") > branch_ratio("lbm")

    def test_fp_workloads_execute_fp_operations(self):
        from repro.isa.opcode import OpClass

        wl = workload("wupwise")
        stats = characterize(collect_trace(wl.program, 2000, state=wl.make_state()))
        assert stats.class_ratio(OpClass.FP_ALU) > 0.03

    def test_footprints_differ_between_cache_and_dram_bound_workloads(self):
        assert (
            workload("mcf").spec.chase_footprint_words
            > workload("parser").spec.chase_footprint_words
        )
