"""Tests for the kernel generator: programs build, execute and honour their spec."""

from repro.isa.emulator import Emulator, collect_trace
from repro.isa.trace import characterize
from repro.workloads.kernels import (
    CHAIN_BASE,
    CHAIN_CONSTANT_VALUE,
    CHASE_BASE,
    JUMP_TABLE_BASE,
    build_program,
    make_arch_state,
)
from repro.workloads.spec import WorkloadSpec


def _build(spec):
    program, case_labels = build_program(spec)
    state = make_arch_state(spec, program, case_labels)
    return program, state


class TestGeneratedPrograms:
    def test_minimal_spec_builds_and_runs(self):
        spec = WorkloadSpec(name="tiny")
        program, state = _build(spec)
        trace = collect_trace(program, 500, state=state)
        assert len(trace) == 500  # the outer loop is effectively infinite

    def test_memory_blocks_emit_loads_and_stores(self):
        spec = WorkloadSpec(name="memory", strided_loads=2, random_loads=1, stores=2)
        program, state = _build(spec)
        stats = characterize(collect_trace(program, 2000, state=state))
        assert stats.loads > 0
        assert stats.stores > 0

    def test_branchy_spec_has_branches(self):
        spec = WorkloadSpec(name="branchy", data_dep_branches=2, pred_branches=2)
        program, state = _build(spec)
        stats = characterize(collect_trace(program, 2000, state=state))
        assert stats.branch_ratio > 0.1

    def test_inner_loop_increases_dynamic_branch_count(self):
        flat = WorkloadSpec(name="flat", inner_loop_trip=0)
        nested = WorkloadSpec(name="nested", inner_loop_trip=4)
        flat_stats = characterize(collect_trace(*(_build(flat)[0],), 2000))
        nested_program, nested_state = _build(nested)
        nested_stats = characterize(collect_trace(nested_program, 2000, state=nested_state))
        assert nested_stats.branches > flat_stats.branches * 0.8

    def test_calls_and_indirect_jumps_present_when_requested(self):
        spec = WorkloadSpec(name="cfgy", calls=2, indirect_jump_targets=4)
        program, state = _build(spec)
        trace = collect_trace(program, 3000, state=state)
        opcodes = {inst.uop.opcode.value for inst in trace}
        assert "call" in opcodes and "ret" in opcodes and "jmpi" in opcodes

    def test_chain_array_initialised_when_predictable(self):
        spec = WorkloadSpec(name="chainy", chain_loads=2, chain_values_predictable=True)
        _, state = _build(spec)
        assert state.read_mem(CHAIN_BASE) == CHAIN_CONSTANT_VALUE

    def test_chase_array_is_a_permutation(self):
        spec = WorkloadSpec(name="chase", pointer_chase_loads=1, chase_footprint_words=1 << 8)
        _, state = _build(spec)
        words = 1 << 8
        successors = {state.read_mem(CHASE_BASE + 8 * index) for index in range(words)}
        assert len(successors) == words  # bijective walk

    def test_jump_table_holds_valid_case_targets(self):
        spec = WorkloadSpec(name="switchy", indirect_jump_targets=4)
        program, case_labels = build_program(spec)
        state = make_arch_state(spec, program, case_labels)
        for slot in range(4):
            target = state.read_mem(JUMP_TABLE_BASE + 8 * slot)
            assert 0 <= target < len(program)

    def test_fp_blocks_emit_fp_ops(self):
        spec = WorkloadSpec(name="fp", fp_chains=2, fp_chain_ops=2, fp_mul_ops=1, chain_fp_ops=2)
        program, state = _build(spec)
        stats = characterize(collect_trace(program, 1500, state=state))
        from repro.isa.opcode import OpClass

        assert stats.class_ratio(OpClass.FP_ALU) > 0
        assert stats.class_ratio(OpClass.FP_MUL) > 0

    def test_long_runs_do_not_halt(self):
        spec = WorkloadSpec(name="long", calls=1, indirect_jump_targets=2, inner_loop_trip=3)
        program, state = _build(spec)
        emulator = Emulator(program, state=state)
        count = sum(1 for _ in emulator.run(20_000))
        assert count == 20_000
