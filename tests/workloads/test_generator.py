"""Tests for the random program generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.emulator import collect_trace
from repro.isa.trace import characterize
from repro.workloads.generator import RandomProgramGenerator


class TestRandomProgramGenerator:
    def test_same_seed_same_program(self):
        a = RandomProgramGenerator(7).generate()
        b = RandomProgramGenerator(7).generate()
        assert [str(u) for u in a.uops] == [str(u) for u in b.uops]

    def test_different_seeds_differ(self):
        a = RandomProgramGenerator(1).generate()
        b = RandomProgramGenerator(2).generate()
        assert [str(u) for u in a.uops] != [str(u) for u in b.uops]

    def test_generated_programs_loop_forever(self):
        program = RandomProgramGenerator(3).generate(body_ops=30)
        assert len(collect_trace(program, 2000)) == 2000

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generated_programs_are_well_formed(self, seed):
        program = RandomProgramGenerator(seed).generate(body_ops=25)
        assert program.resolved
        trace = collect_trace(program, 400)
        stats = characterize(trace)
        assert stats.total == 400
        assert stats.branches >= 1  # at least the loop branch executes

    def test_memory_probability_controls_memory_ops(self):
        heavy = RandomProgramGenerator(5).generate(memory_probability=0.6, body_ops=60)
        light = RandomProgramGenerator(5).generate(memory_probability=0.0, body_ops=60)
        heavy_stats = characterize(collect_trace(heavy, 1500))
        light_stats = characterize(collect_trace(light, 1500))
        assert heavy_stats.memory_ratio > light_stats.memory_ratio
