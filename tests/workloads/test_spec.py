"""Tests for workload specifications."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.spec import WorkloadSpec


class TestWorkloadSpec:
    def test_defaults_are_valid(self):
        spec = WorkloadSpec(name="x")
        assert spec.name == "x"
        assert spec.category == "INT"

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="x", strided_loads=-1)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="x", chain_alu_ops=-2)

    def test_footprints_must_be_powers_of_two(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="x", strided_footprint_words=1000)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="x", chase_footprint_words=0)

    def test_category_validated(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="x", category="VECTOR")

    def test_specs_are_frozen(self):
        spec = WorkloadSpec(name="x")
        with pytest.raises(Exception):
            spec.chain_alu_ops = 10

    def test_paper_metadata_carried(self):
        spec = WorkloadSpec(name="x", paper_benchmark="429.mcf", paper_ipc=0.105)
        assert spec.paper_benchmark == "429.mcf"
        assert spec.paper_ipc == 0.105
