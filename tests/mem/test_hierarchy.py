"""Tests for the composed memory hierarchy."""

from repro.mem.hierarchy import MemoryHierarchy, MemoryHierarchyConfig


def _hierarchy(**overrides) -> MemoryHierarchy:
    return MemoryHierarchy(MemoryHierarchyConfig(**overrides))


class TestLoads:
    def test_l1_hit_latency(self):
        hierarchy = _hierarchy()
        hierarchy.load(0x1000, pc=1, cycle=0)
        assert hierarchy.load(0x1000, pc=1, cycle=10) == 2

    def test_l1_miss_l2_hit_latency(self):
        hierarchy = _hierarchy()
        hierarchy.load(0x1000, pc=1, cycle=0)  # warm L2 (and L1)
        # Evict from L1 by touching many other lines mapping everywhere.
        for index in range(1024):
            hierarchy.l1d.access(0x100000 + index * 64)
        latency = hierarchy.load(0x1000, pc=1, cycle=5000)
        assert latency == 2 + 12

    def test_cold_miss_reaches_dram(self):
        hierarchy = _hierarchy()
        latency = hierarchy.load(0x5000, pc=1, cycle=0)
        assert latency >= 2 + 12 + 75

    def test_dram_latency_bounded(self):
        hierarchy = _hierarchy()
        latencies = [hierarchy.load(0x100000 * (i + 1), pc=1, cycle=i * 10) for i in range(20)]
        assert all(latency <= 2 + 12 + 185 + 64 for latency in latencies)

    def test_prefetcher_hides_strided_stream_misses(self):
        """After training, a strided stream should mostly hit in the L2 (Table 1 prefetcher)."""
        hierarchy = _hierarchy()
        latencies = []
        for index in range(64):
            latencies.append(hierarchy.load(0x40_0000 + index * 64, pc=7, cycle=index * 50))
        early = latencies[:4]
        late = latencies[-32:]
        assert max(late) <= 2 + 12  # prefetched into L2 (or still L1-resident)
        assert max(early) > 14  # the first accesses had to go to DRAM


class TestStoresAndFetch:
    def test_store_warms_the_caches(self):
        hierarchy = _hierarchy()
        hierarchy.store(0x9000, pc=3, cycle=0)
        assert hierarchy.load(0x9000, pc=3, cycle=10) == 2

    def test_instruction_fetch_hits_after_first_access(self):
        hierarchy = _hierarchy()
        first = hierarchy.fetch(100, cycle=0)
        second = hierarchy.fetch(101, cycle=1)  # same 64B line (4 bytes per µ-op)
        assert first > second
        assert second == hierarchy.config.l1i_latency

    def test_statistics_accumulate(self):
        hierarchy = _hierarchy()
        hierarchy.load(0x1000, pc=1, cycle=0)
        hierarchy.load(0x1000, pc=1, cycle=1)
        assert hierarchy.l1d.stats.accesses == 2
        assert hierarchy.l1d.stats.hits == 1
        assert hierarchy.l2.stats.accesses == 1
