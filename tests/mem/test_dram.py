"""Tests for the DDR3-like DRAM latency model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mem.dram import DRAMModel


class TestDRAM:
    def test_invalid_latency_window_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMModel(min_latency=0)
        with pytest.raises(ConfigurationError):
            DRAMModel(min_latency=100, max_latency=50)

    def test_first_access_pays_row_conflict(self):
        dram = DRAMModel()
        latency = dram.read(0x1000, cycle=0)
        assert latency == min(75 + 36, 185)
        assert dram.stats.row_conflicts == 1

    def test_row_hit_is_minimum_latency(self):
        dram = DRAMModel()
        dram.read(0x1000, cycle=0)
        latency = dram.read(0x1008, cycle=1000)
        assert latency == 75
        assert dram.stats.row_hits == 1

    def test_row_conflict_after_switching_rows(self):
        dram = DRAMModel()
        dram.read(0x1000, cycle=0)
        far_away = 0x1000 + dram.row_size * dram.num_banks  # same bank, next row
        latency = dram.read(far_away, cycle=1000)
        assert latency > 75

    def test_bank_queueing_delays_back_to_back_requests(self):
        dram = DRAMModel()
        first = dram.read(0x2000, cycle=0)
        second = dram.read(0x2008, cycle=1)  # same bank, immediately after
        assert second > 75  # pays queueing behind the busy bank
        assert dram.stats.queueing_cycles > 0
        assert first <= 185 and second <= 185

    def test_different_banks_do_not_queue(self):
        dram = DRAMModel()
        dram.read(0x0, cycle=0)
        other_bank = dram.row_size  # next bank
        dram.read(other_bank, cycle=1)
        assert dram.stats.queueing_cycles == 0

    def test_row_hit_rate(self):
        dram = DRAMModel()
        dram.read(0x0, 0)
        dram.read(0x8, 500)
        dram.read(0x10, 1000)
        assert dram.stats.row_hit_rate == pytest.approx(2 / 3)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=(1 << 30)),
        st.integers(min_value=0, max_value=1 << 20),
    )
    def test_latency_always_within_table1_window(self, address, cycle):
        dram = DRAMModel()
        latency = dram.read(address, cycle)
        assert 75 <= latency <= 185
