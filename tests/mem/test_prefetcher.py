"""Tests for the stride prefetcher."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.prefetcher import StridePrefetcher


class TestStridePrefetcher:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            StridePrefetcher(degree=0)

    def test_no_prefetch_before_stride_confirmed(self):
        prefetcher = StridePrefetcher(degree=4)
        assert prefetcher.observe(0x10, 0x1000) == []
        assert prefetcher.observe(0x10, 0x1040) == []  # first stride observation

    def test_confirmed_stride_triggers_prefetches(self):
        prefetcher = StridePrefetcher(degree=4, distance=1)
        prefetcher.observe(0x10, 0x1000)
        prefetcher.observe(0x10, 0x1040)
        prefetches = prefetcher.observe(0x10, 0x1080)
        assert prefetches == [0x1080 + 0x40 * step for step in range(1, 5)]

    def test_degree_and_distance_respected(self):
        prefetcher = StridePrefetcher(degree=2, distance=3)
        prefetcher.observe(0x10, 0)
        prefetcher.observe(0x10, 8)
        prefetches = prefetcher.observe(0x10, 16)
        assert prefetches == [16 + 8 * 3, 16 + 8 * 4]

    def test_negative_strides_supported(self):
        prefetcher = StridePrefetcher(degree=2)
        prefetcher.observe(0x10, 0x1000)
        prefetcher.observe(0x10, 0x0FC0)
        prefetches = prefetcher.observe(0x10, 0x0F80)
        assert prefetches == [0x0F80 - 0x40, 0x0F80 - 0x80]

    def test_irregular_pattern_does_not_prefetch(self):
        prefetcher = StridePrefetcher(degree=4)
        addresses = [0x0, 0x100, 0x40, 0x900, 0x10]
        issued = []
        for address in addresses:
            issued.extend(prefetcher.observe(0x10, address))
        assert issued == []

    def test_distinct_pcs_tracked_separately(self):
        prefetcher = StridePrefetcher(degree=1)
        for address in (0, 8, 16):
            prefetcher.observe(0x1, address)
        for address in (0, 64, 128):
            prefetcher.observe(0x2, address)
        assert prefetcher.observe(0x1, 24) == [32]
        assert prefetcher.observe(0x2, 192) == [256]

    def test_table_capacity_bounded(self):
        prefetcher = StridePrefetcher(table_entries=4)
        for pc in range(10):
            prefetcher.observe(pc, pc * 0x1000)
        assert len(prefetcher._table) <= 4

    def test_statistics(self):
        prefetcher = StridePrefetcher(degree=4)
        for address in (0, 8, 16, 24):
            prefetcher.observe(0x10, address)
        assert prefetcher.stats.trained >= 1
        assert prefetcher.stats.issued >= 4
