"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mem.cache import Cache


def _small_cache(**kwargs):
    kwargs.setdefault("size_bytes", 1024)
    kwargs.setdefault("associativity", 2)
    kwargs.setdefault("line_size", 64)
    return Cache("test", **kwargs)


class TestGeometry:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            Cache("bad", size_bytes=1000, associativity=3, line_size=64)
        with pytest.raises(ConfigurationError):
            Cache("bad", size_bytes=0, associativity=1)

    def test_set_count(self):
        cache = _small_cache()
        assert cache.num_sets == 1024 // (64 * 2)

    def test_line_address(self):
        cache = _small_cache()
        assert cache.line_address(0) == cache.line_address(63)
        assert cache.line_address(64) == cache.line_address(0) + 1


class TestAccessBehaviour:
    def test_cold_miss_then_hit(self):
        cache = _small_cache()
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_same_line_different_offsets_hit(self):
        cache = _small_cache()
        cache.access(0x100)
        assert cache.access(0x13F)

    def test_lru_eviction(self):
        cache = _small_cache()  # 8 sets, 2 ways
        stride = cache.num_sets * cache.line_size
        a, b, c = 0x0, stride, 2 * stride  # same set
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a
        assert not cache.probe(a)
        assert cache.probe(b) and cache.probe(c)

    def test_access_refreshes_lru(self):
        cache = _small_cache()
        stride = cache.num_sets * cache.line_size
        a, b, c = 0x0, stride, 2 * stride
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a MRU again
        cache.access(c)  # evicts b
        assert cache.probe(a) and not cache.probe(b)

    def test_probe_does_not_change_state(self):
        cache = _small_cache()
        cache.probe(0x100)
        assert cache.stats.accesses == 0
        assert not cache.probe(0x100)

    def test_prefetch_fill_installs_without_demand_stats(self):
        cache = _small_cache()
        cache.fill(0x200)
        assert cache.stats.accesses == 0
        assert cache.stats.prefetches == 1
        assert cache.probe(0x200)

    def test_hit_and_miss_rates(self):
        cache = _small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64 * 1024)
        assert cache.stats.hit_rate == pytest.approx(1 / 3)
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = _small_cache()
        for address in addresses:
            cache.access(address)
        total_lines = sum(len(ways) for ways in cache._sets)
        assert total_lines <= cache.num_sets * cache.associativity

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=50))
    def test_working_set_smaller_than_capacity_always_hits_second_pass(self, addresses):
        cache = Cache("big", size_bytes=64 * 1024, associativity=16, line_size=64)
        for address in addresses:
            cache.access(address)
        assert all(cache.access(address) for address in addresses)


class TestMSHR:
    def test_no_delay_when_mshrs_available(self):
        cache = _small_cache(mshrs=4)
        assert cache.mshr_delay(cycle=0, completion_cycle=100) == 0

    def test_delay_when_all_mshrs_busy(self):
        cache = _small_cache(mshrs=2)
        cache.mshr_delay(cycle=0, completion_cycle=100)
        cache.mshr_delay(cycle=0, completion_cycle=120)
        delay = cache.mshr_delay(cycle=0, completion_cycle=140)
        assert delay == 100
        assert cache.stats.mshr_stall_cycles == 100

    def test_mshrs_free_after_completion(self):
        cache = _small_cache(mshrs=1)
        cache.mshr_delay(cycle=0, completion_cycle=10)
        assert cache.mshr_delay(cycle=20, completion_cycle=40) == 0
