"""Tests for the Early Execution block (Section 3.2)."""

import pytest

from repro.core.early_execution import EarlyExecutionBlock, EarlyExecutionConfig
from repro.errors import ConfigurationError
from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.trace import DynInst
from repro.ooo.inflight import InflightOp
from repro.vp.base import VPrediction


def _op(opcode=Opcode.ADD, dst=1, srcs=(), imm=None, seq=0):
    return InflightOp(DynInst(seq=seq, pc=seq, uop=MicroOp(opcode, dst=dst, srcs=srcs, imm=imm)))


def _predicted(op: InflightOp) -> InflightOp:
    op.pred_used = True
    op.prediction = VPrediction(1, True, "test")
    return op


def _plan(group, previous=(), **config):
    block = EarlyExecutionBlock(EarlyExecutionConfig(**config))
    return block.plan(list(group), list(previous)), block


class TestEligibility:
    def test_immediate_only_op_executes_early(self):
        movi = _op(Opcode.MOVI, imm=5)
        executed, _ = _plan([movi])
        assert executed == [movi]
        assert movi.early_executed

    def test_op_reading_the_prf_is_not_eligible(self):
        # producers contains None: the value lives only in the PRF.
        add = _op(Opcode.ADD, srcs=(2, 3))
        add.producers = (None, None)
        executed, _ = _plan([add])
        assert executed == []

    def test_non_alu_ops_are_never_early_executed(self):
        load = _op(Opcode.LD, srcs=(2,), imm=0)
        load.producers = ()
        mul = _op(Opcode.MUL, srcs=(2, 3))
        mul.producers = ()
        executed, _ = _plan([load, mul])
        assert executed == []

    def test_consumer_of_predicted_producer_in_same_group_executes(self):
        producer = _predicted(_op(Opcode.LD, dst=2, srcs=(4,), imm=0, seq=0))
        producer.producers = (None,)
        consumer = _op(Opcode.ADD, dst=3, srcs=(2,), imm=1, seq=1)
        consumer.producers = (producer,)
        executed, _ = _plan([producer, consumer])
        assert consumer in executed

    def test_consumer_of_unpredicted_same_group_producer_does_not_execute(self):
        producer = _op(Opcode.MOVI, dst=2, imm=5, seq=0)
        consumer = _op(Opcode.ADD, dst=3, srcs=(2,), imm=1, seq=1)
        consumer.producers = (producer,)
        executed, _ = _plan([producer, consumer], depth=1)
        # With a single ALU stage the producer's early-executed result cannot be chained
        # combinationally within the same group (footnote 3 of the paper).
        assert producer in executed
        assert consumer not in executed

    def test_two_stages_allow_same_group_chaining(self):
        producer = _op(Opcode.MOVI, dst=2, imm=5, seq=0)
        consumer = _op(Opcode.ADD, dst=3, srcs=(2,), imm=1, seq=1)
        consumer.producers = (producer,)
        executed, _ = _plan([producer, consumer], depth=2)
        assert producer in executed and consumer in executed

    def test_previous_group_bypass_enables_execution(self):
        previous = _op(Opcode.MOVI, dst=2, imm=5, seq=0)
        previous.early_executed = True
        consumer = _op(Opcode.ADD, dst=3, srcs=(2,), imm=1, seq=1)
        consumer.producers = (previous,)
        executed, _ = _plan([consumer], previous=[previous])
        assert consumer in executed

    def test_previous_group_unexecuted_producer_blocks(self):
        previous = _op(Opcode.MUL, dst=2, srcs=(4, 5), seq=0)
        consumer = _op(Opcode.ADD, dst=3, srcs=(2,), imm=1, seq=1)
        consumer.producers = (previous,)
        executed, _ = _plan([consumer], previous=[previous])
        assert executed == []

    def test_predicted_previous_group_producer_counts_as_available(self):
        previous = _predicted(_op(Opcode.LD, dst=2, srcs=(4,), imm=0, seq=0))
        consumer = _op(Opcode.ADD, dst=3, srcs=(2,), imm=1, seq=1)
        consumer.producers = (previous,)
        executed, _ = _plan([consumer], previous=[previous])
        assert consumer in executed


class TestResourceLimits:
    def test_alu_budget_limits_group(self):
        group = [_op(Opcode.MOVI, dst=index + 1, imm=index, seq=index) for index in range(6)]
        executed, block = _plan(group, alus_per_stage=4)
        assert len(executed) == 4
        assert block.alu_saturation_rejects >= 2

    def test_disabled_block_does_nothing(self):
        group = [_op(Opcode.MOVI, imm=1)]
        block = EarlyExecutionBlock(EarlyExecutionConfig(enabled=False))
        assert block.plan(group, []) == []

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            EarlyExecutionConfig(depth=0)
        with pytest.raises(ConfigurationError):
            EarlyExecutionConfig(alus_per_stage=0)

    def test_statistics_accumulate(self):
        group = [_op(Opcode.MOVI, dst=1, imm=1, seq=0)]
        _, block = _plan(group)
        assert block.executed == 1
        assert block.candidates_seen >= 1

    def test_deeper_pipelines_capture_at_least_as_much(self):
        def build_group():
            ops = []
            previous = None
            for index in range(6):
                if previous is None:
                    op = _op(Opcode.MOVI, dst=index + 1, imm=index, seq=index)
                    op.producers = ()
                else:
                    op = _op(Opcode.ADD, dst=index + 1, srcs=(index,), imm=1, seq=index)
                    op.producers = (previous,)
                ops.append(op)
                previous = op
            return ops

        one_stage, _ = _plan(build_group(), depth=1)
        two_stages, _ = _plan(build_group(), depth=2)
        three_stages, _ = _plan(build_group(), depth=3)
        assert len(one_stage) <= len(two_stages) <= len(three_stages)
        assert len(one_stage) == 1  # only the movi
        assert len(two_stages) == 2
