"""Tests for the Late Execution / Validation & Training block (Section 3.3)."""

import pytest

from repro.bpu.unit import BranchOutcome
from repro.core.late_execution import LateExecutionBlock, LateExecutionConfig
from repro.errors import ConfigurationError
from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.registers import FLAGS_REG
from repro.isa.trace import DynInst
from repro.ooo.inflight import InflightOp
from repro.vp.base import VPrediction


def _op(opcode=Opcode.ADD, dst=1, srcs=(), target=None, seq=0):
    uop = MicroOp(opcode, dst=dst, srcs=srcs, target=target, imm=0 if dst else None)
    return InflightOp(DynInst(seq=seq, pc=seq, uop=uop))


def _predicted(op):
    op.pred_used = True
    op.prediction = VPrediction(3, True, "test")
    return op


def _branch(high_confidence: bool, mispredicted: bool = False) -> InflightOp:
    op = _op(Opcode.BNE, dst=None, srcs=(FLAGS_REG,), target="loop")
    op.branch_outcome = BranchOutcome(
        predicted_taken=True,
        predicted_target=1,
        actual_taken=not mispredicted,
        actual_target=1,
        high_confidence=high_confidence,
        direction_mispredicted=mispredicted,
        target_mispredicted=False,
        resolved_at_decode=False,
    )
    return op


class TestEligibility:
    def test_predicted_alu_op_is_late_executable(self):
        block = LateExecutionBlock()
        op = _predicted(_op())
        assert block.is_late_executable(op)
        assert block.classify(op)
        assert op.late_executed
        assert block.late_executed_alu == 1

    def test_unpredicted_alu_op_is_not(self):
        assert not LateExecutionBlock().is_late_executable(_op())

    def test_predicted_load_is_not_late_executed(self):
        load = _predicted(_op(Opcode.LD, srcs=(2,)))
        assert not LateExecutionBlock().is_late_executable(load)

    def test_predicted_multicycle_op_is_not_late_executed(self):
        mul = _predicted(_op(Opcode.MUL, srcs=(2, 3)))
        assert not LateExecutionBlock().is_late_executable(mul)

    def test_early_executed_op_is_not_counted_again(self):
        op = _predicted(_op())
        op.early_executed = True
        assert not LateExecutionBlock().is_late_executable(op)

    def test_high_confidence_branch_is_late_resolved(self):
        block = LateExecutionBlock()
        branch = _branch(high_confidence=True)
        assert block.classify(branch)
        assert block.late_resolved_branches == 1

    def test_low_confidence_branch_stays_in_ooo(self):
        assert not LateExecutionBlock().is_late_executable(_branch(high_confidence=False))

    def test_branch_offload_can_be_disabled(self):
        block = LateExecutionBlock(LateExecutionConfig(resolve_high_confidence_branches=False))
        assert not block.is_late_executable(_branch(high_confidence=True))

    def test_disabled_block_rejects_everything(self):
        block = LateExecutionBlock(LateExecutionConfig(enabled=False))
        assert not block.is_late_executable(_predicted(_op()))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            LateExecutionConfig(alus=0)


class TestLEVTReads:
    def test_vp_eligible_op_reads_its_destination_bank(self):
        op = _op()
        op.dest_bank = 2
        assert LateExecutionBlock().levt_read_banks(op) == [2]

    def test_late_executed_op_also_reads_operand_banks(self):
        block = LateExecutionBlock()
        producer = _op(seq=0)
        producer.dest_bank = 1
        consumer = _predicted(_op(Opcode.ADD, dst=4, srcs=(1, 2), seq=1))
        consumer.dest_bank = 3
        consumer.producers = (producer, None)
        block.classify(consumer)
        banks = block.levt_read_banks(consumer, architectural_bank=0)
        assert sorted(banks) == [0, 1, 3]

    def test_branch_reads_no_validation_port(self):
        block = LateExecutionBlock()
        branch = _branch(high_confidence=True)
        branch.producers = (None,)
        block.classify(branch)
        banks = block.levt_read_banks(branch, architectural_bank=7)
        assert banks == [7]  # only the flags operand read, no result validation read

    def test_store_needs_no_levt_reads(self):
        store = _op(Opcode.ST, dst=None, srcs=(1, 2))
        assert LateExecutionBlock().levt_read_banks(store) == []
