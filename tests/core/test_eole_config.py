"""Tests for the EOLE variant configuration (Section 6.5 modularity)."""

from repro.core.eole import EOLEConfig, EOLEVariant, eole_config


class TestVariants:
    def test_full_eole_enables_both_blocks(self):
        config = eole_config(EOLEVariant.EOLE)
        assert config.enabled
        assert config.early.enabled and config.late.enabled

    def test_ole_is_late_execution_only(self):
        config = eole_config(EOLEVariant.OLE)
        assert not config.early.enabled
        assert config.late.enabled
        assert config.variant.has_late_execution
        assert not config.variant.has_early_execution

    def test_eoe_is_early_execution_only(self):
        config = eole_config(EOLEVariant.EOE)
        assert config.early.enabled
        assert not config.late.enabled

    def test_none_disables_everything(self):
        config = EOLEConfig(variant=EOLEVariant.NONE)
        assert not config.enabled
        assert not config.early.enabled
        assert not config.late.enabled

    def test_constructor_knobs_forwarded(self):
        config = eole_config(
            EOLEVariant.EOLE,
            ee_depth=2,
            ee_alus=4,
            le_alus=4,
            resolve_high_confidence_branches=False,
        )
        assert config.early.depth == 2
        assert config.early.alus_per_stage == 4
        assert config.late.alus == 4
        assert not config.late.resolve_high_confidence_branches

    def test_variant_string_values(self):
        assert EOLEVariant("eole") is EOLEVariant.EOLE
        assert EOLEVariant("ole") is EOLEVariant.OLE
        assert EOLEVariant("eoe") is EOLEVariant.EOE
        assert EOLEVariant("none") is EOLEVariant.NONE
