"""Tests for metric helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.metrics import arithmetic_mean, geometric_mean, relative_change, speedups


class TestMeans:
    def test_geometric_mean_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_ignores_non_positive(self):
        assert geometric_mean([2.0, 0.0, -1.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    def test_geomean_bounded_by_min_and_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    def test_geomean_never_exceeds_arithmetic_mean(self, values):
        assert geometric_mean(values) <= arithmetic_mean(values) + 1e-9


class TestSpeedups:
    def test_per_workload_speedups(self):
        result = speedups({"a": 2.0, "b": 1.0}, {"a": 1.0, "b": 2.0})
        assert result == {"a": 2.0, "b": 0.5}

    def test_missing_or_zero_baselines_skipped(self):
        result = speedups({"a": 2.0, "b": 1.0}, {"a": 0.0})
        assert result == {}

    def test_relative_change(self):
        assert relative_change(1.1, 1.0) == pytest.approx(0.1)
        assert relative_change(0.9, 1.0) == pytest.approx(-0.1)
        assert relative_change(5.0, 0.0) == 0.0
