"""Tests for the offline (trace-level) predictor evaluation harness."""

from repro.analysis.predictor_eval import evaluate_predictor
from repro.vp.confidence import DETERMINISTIC_3BIT_VECTOR
from repro.vp.hybrid import VTAGE2DStrideHybrid
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import TwoDeltaStridePredictor
from repro.vp.vtage import VTAGEPredictor
from repro.workloads.suite import workload


def _small_hybrid():
    return VTAGE2DStrideHybrid(
        vtage=VTAGEPredictor(base_entries=1024, tagged_entries=128, num_components=4,
                             fpc_vector=DETERMINISTIC_3BIT_VECTOR),
        stride=TwoDeltaStridePredictor(entries=1024, fpc_vector=DETERMINISTIC_3BIT_VECTOR),
    )


class TestPredictorEvaluation:
    def test_evaluation_reports_counts_and_rates(self):
        evaluation = evaluate_predictor(_small_hybrid(), workload("bzip2"), max_uops=3000)
        assert evaluation.workload_name == "bzip2"
        assert evaluation.eligible_uops > 1000
        assert 0.0 < evaluation.coverage <= 1.0
        assert 0.9 < evaluation.accuracy <= 1.0
        assert evaluation.storage_kilobytes > 0

    def test_predictable_workload_has_higher_coverage_than_memory_bound_one(self):
        predictable = evaluate_predictor(_small_hybrid(), workload("bzip2"), max_uops=3000)
        hostile = evaluate_predictor(_small_hybrid(), workload("milc"), max_uops=3000)
        assert predictable.coverage > hostile.coverage

    def test_hybrid_beats_last_value_predictor_on_strided_code(self):
        hybrid = evaluate_predictor(_small_hybrid(), workload("bzip2"), max_uops=3000)
        lvp = evaluate_predictor(
            LastValuePredictor(entries=1024, fpc_vector=DETERMINISTIC_3BIT_VECTOR),
            workload("bzip2"),
            max_uops=3000,
        )
        assert hybrid.coverage > lvp.coverage
