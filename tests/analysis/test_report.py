"""Tests for experiment result containers and table formatting."""

import pytest

from repro.analysis.report import ExperimentResult, ExperimentSeries, format_table


def _result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig_test",
        title="A test figure",
        baseline_label="Baseline",
        value_kind="speedup",
        notes="shape only",
    )
    result.series.append(ExperimentSeries("ConfigA", {"wl1": 1.0, "wl2": 2.0}))
    result.series.append(ExperimentSeries("ConfigB", {"wl1": 1.5, "wl2": 0.5}))
    return result


class TestSeries:
    def test_geomean_summary(self):
        series = ExperimentSeries("x", {"a": 1.0, "b": 4.0})
        assert series.summary("geomean") == pytest.approx(2.0)

    def test_mean_summary(self):
        series = ExperimentSeries("x", {"a": 0.1, "b": 0.3})
        assert series.summary("mean") == pytest.approx(0.2)


class TestExperimentResult:
    def test_workloads_preserve_first_seen_order(self):
        result = _result()
        assert result.workloads == ["wl1", "wl2"]

    def test_series_lookup(self):
        result = _result()
        assert result.series_by_label("ConfigB").values["wl1"] == 1.5
        with pytest.raises(KeyError):
            result.series_by_label("missing")

    def test_summary_kind_depends_on_value_kind(self):
        assert _result().summary_kind() == "geomean"
        ratio_result = ExperimentResult("x", "t", value_kind="ratio")
        assert ratio_result.summary_kind() == "mean"


class TestFormatting:
    def test_table_contains_all_labels_values_and_summary(self):
        text = format_table(_result())
        assert "fig_test" in text
        assert "ConfigA" in text and "ConfigB" in text
        assert "wl1" in text and "wl2" in text
        assert "1.500" in text
        assert "geomean" in text
        assert "shape only" in text

    def test_missing_cells_rendered_as_dash(self):
        result = _result()
        result.series.append(ExperimentSeries("Partial", {"wl1": 3.0}))
        lines = format_table(result).splitlines()
        wl2_line = next(line for line in lines if line.startswith("wl2"))
        assert "-" in wl2_line
