"""The throughput harness's append-only speedup ladder (BENCH_throughput.json)."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "throughput_harness", REPO_ROOT / "benchmarks" / "perf" / "throughput.py"
)
throughput = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(throughput)


def _legacy_report() -> dict:
    return {
        "label": "PR3 entry",
        "grid": {"seconds": 2.28, "cells": 16},
        "single_cell": {"seconds": 0.169, "config": "EOLE_4_64", "workload": "gcc"},
        "grid_speedup": 1.34,
        "baseline": {
            "label": "PR2 entry",
            "grid": {"seconds": 3.05, "cells": 16},
            "single_cell": {"seconds": 0.215, "config": "EOLE_4_64", "workload": "gcc"},
        },
    }


class TestLadder:
    def test_migrates_legacy_single_report_with_embedded_baseline(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_legacy_report()))
        entries = throughput.load_ladder(path)
        assert [entry["label"] for entry in entries] == ["PR2 entry", "PR3 entry"]
        assert entries[0]["grid"]["seconds"] == 3.05
        assert entries[1]["grid_speedup"] == 1.34

    def test_ladder_roundtrip_is_append_only(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_legacy_report()))
        entries = throughput.load_ladder(path)
        entries.append({"label": "new rung", "grid": {"seconds": 1.5},
                        "single_cell": {"seconds": 0.1}})
        throughput.write_ladder(path, entries)
        data = json.loads(path.read_text())
        assert data["format"] == throughput.LADDER_FORMAT
        reloaded = throughput.load_ladder(path)
        assert [entry["label"] for entry in reloaded] == [
            "PR2 entry", "PR3 entry", "new rung",
        ]

    def test_missing_file_is_an_empty_ladder(self, tmp_path):
        assert throughput.load_ladder(tmp_path / "absent.json") == []

    def test_committed_ladder_file_is_loadable(self):
        entries = throughput.load_ladder(REPO_ROOT / "BENCH_throughput.json")
        assert entries, "BENCH_throughput.json must hold at least one rung"
        for entry in entries:
            assert "grid" in entry and "seconds" in entry["grid"]
            assert "single_cell" in entry


class TestEntryProvenance:
    def test_git_sha_points_at_head(self):
        sha = throughput._git_sha()
        assert sha is not None and len(sha) == 40
        assert all(c in "0123456789abcdef" for c in sha)

    def test_host_info_shape(self):
        host = throughput._host_info()
        assert set(host) == {"hostname", "machine", "cpus"}
        assert host["cpus"] >= 1

    def test_meta_pairs_parse(self):
        assert throughput._parse_meta(["ci=true", "branch=main"]) == {
            "ci": "true",
            "branch": "main",
        }
        assert throughput._parse_meta(["note=a=b"]) == {"note": "a=b"}
        assert throughput._parse_meta([]) == {}

    def test_malformed_meta_is_rejected(self):
        with pytest.raises(SystemExit):
            throughput._parse_meta(["no-equals"])
        with pytest.raises(SystemExit):
            throughput._parse_meta(["=valueless"])
