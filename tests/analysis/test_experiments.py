"""Tests for the per-figure experiment registry (run on a small, fast subset)."""

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    ablation_fpc_vector,
    fig2_early_execution_share,
    fig4_late_execution_share,
    fig6_vp_speedup,
    fig7_issue_width,
    table3_baseline_ipc,
)
from repro.analysis.report import format_table
from repro.analysis.runner import ResultCache
from repro.workloads.suite import workload

#: Two contrasting workloads keep these end-to-end experiment tests quick.
SUBSET = None
UOPS = 12000
WARMUP = 4000


@pytest.fixture(scope="module")
def subset():
    return [workload("bzip2"), workload("hmmer")]


@pytest.fixture(scope="module")
def cache():
    return ResultCache()


class TestExperimentRegistry:
    def test_registry_covers_every_table_and_figure(self):
        expected = {
            "fig2_early_exec_share",
            "fig4_late_exec_share",
            "table3_baseline_ipc",
            "fig6_vp_speedup",
            "fig7_issue_width",
            "fig8_iq_size",
            "fig10_prf_banks",
            "fig11_levt_ports",
            "fig12_overall",
            "fig13_variants",
            "ablation_fpc",
        }
        assert expected <= set(EXPERIMENTS)


class TestSelectedExperiments:
    def test_fig2_reports_per_depth_ratios(self, subset, cache):
        result = fig2_early_execution_share(subset, UOPS, WARMUP, cache, depths=(1, 2))
        assert len(result.series) == 2
        for series in result.series:
            for value in series.values.values():
                assert 0.0 <= value <= 1.0
        one, two = result.series
        for name in one.values:
            assert two.values[name] >= one.values[name] - 1e-9

    def test_fig4_series_are_disjoint_shares(self, subset, cache):
        result = fig4_late_execution_share(subset, UOPS, WARMUP, cache)
        branches = result.series_by_label("High-confidence branches")
        values = result.series_by_label("Value-predicted")
        for name in branches.values:
            assert 0.0 <= branches.values[name] + values.values[name] <= 1.0

    def test_table3_reports_measured_and_paper_ipc(self, subset, cache):
        result = table3_baseline_ipc(subset, UOPS, WARMUP, cache)
        measured = result.series_by_label("Measured IPC")
        paper = result.series_by_label("Paper IPC")
        assert all(value > 0 for value in measured.values.values())
        assert paper.values["hmmer"] == pytest.approx(2.477)

    def test_fig6_vp_speedup_on_predictable_workload(self, subset, cache):
        result = fig6_vp_speedup(subset, UOPS, WARMUP, cache)
        series = result.series[0]
        assert series.values["bzip2"] > 1.05
        assert series.values["hmmer"] > 0.9

    def test_fig7_shapes(self, subset, cache):
        result = fig7_issue_width(subset, UOPS, WARMUP, cache)
        eole4 = result.series_by_label("EOLE_4_64")
        vp4 = result.series_by_label("Baseline_VP_4_64")
        for name in eole4.values:
            assert eole4.values[name] >= vp4.values[name] - 0.05

    def test_results_render_as_tables(self, subset, cache):
        result = fig6_vp_speedup(subset, UOPS, WARMUP, cache)
        text = format_table(result)
        assert "bzip2" in text and "geomean" in text

    def test_fpc_ablation_accuracy_ordering(self, subset):
        result = ablation_fpc_vector(subset, max_uops=4000)
        fpc_accuracy = result.series_by_label("FPC accuracy")
        det_coverage = result.series_by_label("3-bit coverage")
        fpc_coverage = result.series_by_label("FPC coverage")
        for name in fpc_accuracy.values:
            assert fpc_accuracy.values[name] > 0.98
            # The deterministic counters trade accuracy for coverage.
            assert det_coverage.values[name] >= fpc_coverage.values[name] - 1e-9
