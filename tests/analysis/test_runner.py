"""Tests for the experiment runner and its result cache."""

from repro.analysis.runner import (
    ResultCache,
    default_max_uops,
    default_warmup_uops,
    run_suite,
    run_workload,
    suite_ipcs,
)
from repro.pipeline.config import PipelineConfig
from repro.workloads.suite import workload


def _fast_config(name="runner_test", **kw) -> PipelineConfig:
    return PipelineConfig(name=name, predictor_name="hybrid-small", **kw)


class TestRunner:
    def test_run_workload_produces_result(self):
        result = run_workload(
            _fast_config(), workload("crafty"), max_uops=600, warmup_uops=100, cache=None
        )
        assert result.stats.committed_uops == 500
        assert result.workload_name == "crafty"

    def test_cache_avoids_rerunning(self):
        cache = ResultCache()
        config = _fast_config()
        first = run_workload(config, workload("gcc"), max_uops=500, warmup_uops=0, cache=cache)
        second = run_workload(config, workload("gcc"), max_uops=500, warmup_uops=0, cache=cache)
        assert first is second
        assert len(cache) == 1

    def test_cache_keyed_by_run_length(self):
        cache = ResultCache()
        config = _fast_config()
        run_workload(config, workload("gcc"), max_uops=400, warmup_uops=0, cache=cache)
        run_workload(config, workload("gcc"), max_uops=500, warmup_uops=0, cache=cache)
        assert len(cache) == 2

    def test_cache_clear(self):
        cache = ResultCache()
        run_workload(_fast_config(), workload("gcc"), max_uops=400, warmup_uops=0, cache=cache)
        cache.clear()
        assert len(cache) == 0

    def test_run_suite_over_selected_workloads(self):
        selected = [workload("mcf"), workload("namd")]
        results = run_suite(_fast_config(), selected, max_uops=400, warmup_uops=0, cache=None)
        assert set(results) == {"mcf", "namd"}
        ipcs = suite_ipcs(results)
        assert all(ipc > 0 for ipc in ipcs.values())

    def test_defaults_read_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_UOPS", "777")
        monkeypatch.setenv("REPRO_SIM_WARMUP", "111")
        assert default_max_uops() == 777
        assert default_warmup_uops() == 111

    def test_single_cell_progress_matches_campaign_output(self, monkeypatch, capsys):
        """REPRO_PROGRESS on a single-cell run prints the same running/done/ETA
        lines a campaign grid would — including the announcement with an ETA."""
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        run_workload(
            _fast_config(), workload("gcc"), max_uops=400, warmup_uops=0, cache=None
        )
        err = capsys.readouterr().err
        assert "running" in err and "ETA" in err
        assert "simulated in" in err
        assert "done: 1 simulated, 0 reused" in err

    def test_single_cell_progress_off_is_silent(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        run_workload(
            _fast_config(), workload("gcc"), max_uops=400, warmup_uops=0, cache=None
        )
        assert capsys.readouterr().err == ""


class TestMultiReplayGrid:
    def test_ad_hoc_grid_matches_serial_under_multi_replay(self, monkeypatch):
        """REPRO_MULTI_REPLAY=1 routes the ad-hoc (custom-Workload) grid through
        one multi-replay pass per workload row and stays byte-identical to the
        serial grid — including when part of the row is already cached."""
        from repro.analysis.runner import run_grid
        from repro.pipeline.multi_replay import MULTI_REPLAY_ENV_VAR
        from repro.workloads.suite import Workload

        # Distinct Workload objects sharing suite names force the ad-hoc path
        # (the campaign path ships cells by name and would lose the objects).
        twins = [Workload(spec=workload(name).spec) for name in ("gcc", "mcf")]
        configs = [
            _fast_config("GridA"),
            _fast_config("GridB", value_prediction=True),
            _fast_config("GridC", issue_width=2, iq_size=16),
        ]
        monkeypatch.delenv(MULTI_REPLAY_ENV_VAR, raising=False)
        serial = run_grid(configs, twins, max_uops=500, warmup_uops=100, cache=None)
        monkeypatch.setenv(MULTI_REPLAY_ENV_VAR, "1")
        multi = run_grid(configs, twins, max_uops=500, warmup_uops=100, cache=None)
        assert {
            c: {w: r.to_dict() for w, r in row.items()} for c, row in multi.items()
        } == {c: {w: r.to_dict() for w, r in row.items()} for c, row in serial.items()}

    def test_ad_hoc_grid_multi_replay_respects_the_cache(self, monkeypatch):
        """Cells already in the ResultCache are reused, not re-simulated, when
        the remainder of a workload row goes through one multi-replay pass."""
        from repro.analysis.runner import run_grid
        from repro.pipeline.multi_replay import MULTI_REPLAY_ENV_VAR
        from repro.workloads.suite import Workload

        twin = Workload(spec=workload("gcc").spec)
        configs = [_fast_config("GridA"), _fast_config("GridB", value_prediction=True)]
        cache = ResultCache()
        warm = run_workload(configs[0], twin, max_uops=500, warmup_uops=100, cache=cache)
        monkeypatch.setenv(MULTI_REPLAY_ENV_VAR, "1")
        grid = run_grid(configs, [twin], max_uops=500, warmup_uops=100, cache=cache)
        assert grid["GridA"]["gcc"] is warm
        assert grid["GridB"]["gcc"].stats.ipc > 0


class TestCustomWorkloads:
    def test_run_suite_simulates_the_object_passed_not_the_registry_twin(self):
        """A caller-supplied Workload sharing a suite name must not be swapped for
        the registry's instance by the campaign routing (which ships cells by name)."""
        from repro.workloads.spec import WorkloadSpec
        from repro.workloads.suite import Workload, workload

        impostor = Workload(WorkloadSpec(name="gcc", paper_benchmark="403.gcc"))
        assert impostor is not workload("gcc")
        custom = run_suite(_fast_config(), [impostor], max_uops=400, warmup_uops=0, cache=None)
        registry = run_suite(
            _fast_config(), [workload("gcc")], max_uops=400, warmup_uops=0, cache=None
        )
        # The impostor's default-knob program behaves differently from real gcc.
        assert custom["gcc"].stats != registry["gcc"].stats
