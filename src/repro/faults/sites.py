"""The injection-site catalog: every named place a fault can fire.

A *site* is a stable dotted name compiled into a durability-critical code path
(``store.py``, ``trace/store.py``, ``coordinator.py``).  The catalog is closed:
:func:`repro.faults.plan.FaultPlan.parse` rejects a ``REPRO_FAULTS`` clause naming a
site that is not listed here, so a typo in a chaos schedule fails loudly at startup
instead of silently injecting nothing.

Each entry maps the site name to what firing there *does* — the behaviours are
implemented at the hook sites themselves; the faults layer only decides *whether*
a given hit fires (see :class:`repro.faults.plan.FaultInjector`).
"""

from __future__ import annotations

# -------------------------------------------------------------- result-store sites
#: ``ResultStore._append``: write only a prefix of the JSONL row (no newline), then
#: crash — the classic torn append of a process killed mid-write.
STORE_APPEND_TORN = "store.append.torn"

#: ``ResultStore._append``: write a garbled (bit-rotted) row in full, silently —
#: the writer believes the append succeeded; only the per-row CRC catches it.
STORE_APPEND_CORRUPT = "store.append.corrupt"

#: ``ResultStore._rewrite``: crash after the temp file is written and fsynced but
#: before the atomic rename — the data file survives untouched, the temp file
#: becomes an orphan for ``fsck`` to sweep.
STORE_REWRITE_CRASH = "store.rewrite.crash"

# -------------------------------------------------------------- trace-store sites
#: ``TraceStore.save``: crash between ``mkstemp`` and the atomic rename — no blob
#: is published, a ``.tmp`` orphan is left behind.
TRACE_SAVE_CRASH = "trace.save.crash"

#: ``TraceStore.save``: publish a blob with payload bytes flipped (length intact) —
#: undetectable without the payload checksum.
TRACE_SAVE_CORRUPT = "trace.save.corrupt"

#: ``TraceStore.save``: publish only a prefix of the blob — a torn trace write on a
#: filesystem without atomic rename semantics.
TRACE_SAVE_TRUNCATED = "trace.save.truncated"

# -------------------------------------------------------------- coordinator sites
#: ``CampaignService.heartbeat``: drop the beat — report success to the worker but
#: never extend the deadline (a heartbeat lost on the wire / delayed by NFS).
COORD_HEARTBEAT_DROP = "coord.heartbeat.drop"

#: ``CampaignService.claim``: sleep ``delay`` seconds before taking the queue lock
#: (a slow lock acquisition under contention).
COORD_CLAIM_DELAY = "coord.claim.delay"

#: ``CampaignService.complete``: sleep ``delay`` seconds before taking the queue
#: lock — widens the window in which the lease can lapse underneath the worker.
COORD_COMPLETE_DELAY = "coord.complete.delay"

#: ``CampaignService.claim``: evaluate lease eligibility and deadlines against a
#: clock shifted by ``skew`` seconds (loosely NTP-synced fleet hosts).
COORD_CLOCK_SKEW = "coord.clock.skew"

# -------------------------------------------------------------- worker-death sites
#: ``work_loop``: die (``os._exit``, no cleanup, no heartbeat ever again)
#: immediately after claiming a lease.
WORKER_DIE_AFTER_CLAIM = "worker.die.after_claim"

#: ``process_lease``: die right after the first finished cell of the lease lands in
#: the shared store — the takeover worker must skip the stored cell and finish the
#: rest.
WORKER_DIE_MID_LEASE = "worker.die.mid_lease"

#: ``work_loop``: die after every cell of the lease is stored but before the lease
#: is marked done — the takeover claim finds nothing left to simulate.
WORKER_DIE_BEFORE_COMPLETE = "worker.die.before_complete"


#: Site name → one-line description (the ``fsck``/docs-facing catalog).
SITE_CATALOG: dict[str, str] = {
    STORE_APPEND_TORN: "torn JSONL append: partial row, then crash",
    STORE_APPEND_CORRUPT: "silent bit-rot of one appended JSONL row",
    STORE_REWRITE_CRASH: "crash between store-rewrite mkstemp and rename",
    TRACE_SAVE_CRASH: "crash between trace-save mkstemp and rename",
    TRACE_SAVE_CORRUPT: "publish a trace blob with flipped payload bytes",
    TRACE_SAVE_TRUNCATED: "publish a truncated trace blob",
    COORD_HEARTBEAT_DROP: "drop a heartbeat (deadline not extended)",
    COORD_CLAIM_DELAY: "delay before the claim lock acquire",
    COORD_COMPLETE_DELAY: "delay before the complete lock acquire",
    COORD_CLOCK_SKEW: "skew the claim-side clock by `skew` seconds",
    WORKER_DIE_AFTER_CLAIM: "worker dies right after claiming a lease",
    WORKER_DIE_MID_LEASE: "worker dies after storing one cell of its lease",
    WORKER_DIE_BEFORE_COMPLETE: "worker dies before marking its lease done",
}

#: Every valid injection-site name.
ALL_SITES = frozenset(SITE_CATALOG)
