"""Deterministic fault injection for the distributed campaign fleet.

``REPRO_FAULTS=<spec>`` arms named injection sites compiled into the
durability-critical paths — the JSONL result store, the on-disk trace store, and
the lease coordinator — so crash-safety claims can be *tested* instead of assumed
(see ``docs/robustness.md``; ``scripts/chaos_smoke.py`` is the acceptance harness).

The package follows the repo's kill-switch discipline: with ``REPRO_FAULTS``
unset, :func:`active_faults` returns ``None`` and every hook site is a single
``None`` check; results are byte-identical to a build without the package.
"""

from repro.faults.plan import (
    DIE_EXIT_CODE,
    FAULTS_ENV_VAR,
    FaultInjector,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    active_faults,
    faults_enabled,
    reset_faults,
)
from repro.faults.sites import ALL_SITES, SITE_CATALOG

__all__ = [
    "ALL_SITES",
    "DIE_EXIT_CODE",
    "FAULTS_ENV_VAR",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedFault",
    "SITE_CATALOG",
    "active_faults",
    "faults_enabled",
    "reset_faults",
]
