"""Deterministic, seeded fault plans: the ``REPRO_FAULTS`` grammar and injector.

Spec grammar (clauses separated by ``;``, selectors by ``:``)::

    REPRO_FAULTS = clause (';' clause)*
    clause       = 'seed=' INT                  # plan-wide PRNG seed (default 0)
                 | SITE selector*               # arm one injection site
    selector     = ':at=' INT                   # fire on exactly the Nth hit (1-based)
                 | ':every=' INT                # fire on every Nth hit
                 | ':p=' FLOAT                  # fire per hit with probability p
                 | ':n=' INT                    # max fires (0 = unlimited; default 1)
                 | ':delay=' FLOAT              # seconds, for *.delay sites
                 | ':skew=' FLOAT               # seconds, for the clock-skew site

Examples::

    REPRO_FAULTS="store.append.torn"                      # first append is torn
    REPRO_FAULTS="seed=7;coord.heartbeat.drop:every=2:n=4"
    REPRO_FAULTS="worker.die.mid_lease:at=2;trace.save.corrupt:p=0.5:n=1"

With no trigger selector a rule defaults to ``at=1`` (fire on the first hit).
Probability triggers draw from a per-site ``random.Random`` seeded by
``seed ^ crc32(site)``, so the same spec replays the same fault schedule in every
process that counts the same hits — determinism extends to the chaos itself.

The injector is *hit-counting*: each hook site calls
:meth:`FaultInjector.fires`/:meth:`crash_if`/:meth:`die_if` exactly once per pass,
and the rule decides from its own hit counter.  Counters are per-process (each
fleet worker parses its own ``REPRO_FAULTS`` and counts its own hits).

With ``REPRO_FAULTS`` unset, :func:`active_faults` returns ``None`` and every hook
site reduces to one global read plus a ``None`` check — the same zero-overhead
kill-switch discipline as ``REPRO_EVENT_DRIVEN``/``REPRO_SOA``.
"""

from __future__ import annotations

import os
import random
import zlib
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.faults.sites import ALL_SITES

#: Environment variable holding the fault plan (unset/empty = injection off).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Exit code used by the ``worker.die.*`` sites (visible in the parent's reaping).
DIE_EXIT_CODE = 86


class FaultSpecError(ReproError):
    """A ``REPRO_FAULTS`` spec could not be parsed (unknown site, bad selector)."""


class InjectedFault(ReproError):
    """Raised by a crash-type injection site (stands in for a process death)."""


@dataclass
class FaultRule:
    """One armed injection site plus its trigger discipline."""

    site: str
    at: int | None = None
    every: int | None = None
    p: float | None = None
    n: int = 1
    delay: float = 0.0
    skew: float = 0.0
    hits: int = 0
    fired: int = 0
    _rng: random.Random | None = field(default=None, repr=False)

    def bind(self, seed: int) -> None:
        """Give probability triggers their deterministic per-site stream."""
        self._rng = random.Random(seed ^ zlib.crc32(self.site.encode()))

    def check(self) -> bool:
        """Count one hit at this rule's site; True when the fault fires."""
        self.hits += 1
        if self.n and self.fired >= self.n:
            return False
        if self.at is not None:
            fire = self.hits == self.at
        elif self.every is not None:
            fire = self.hits % self.every == 0
        elif self.p is not None:
            fire = self._rng.random() < self.p
        else:  # no trigger selector: the first hit fires
            fire = self.hits == 1
        if fire:
            self.fired += 1
        return fire


class FaultPlan:
    """A parsed ``REPRO_FAULTS`` spec: a seed plus one rule per armed site."""

    def __init__(self, seed: int, rules: list[FaultRule]) -> None:
        self.seed = seed
        self.rules = rules
        for rule in rules:
            rule.bind(seed)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the grammar above; raises :class:`FaultSpecError` on any mistake."""
        seed = 0
        rules: list[FaultRule] = []
        for raw_clause in spec.split(";"):
            clause = raw_clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[5:])
                except ValueError as error:
                    raise FaultSpecError(f"bad seed in {clause!r}") from error
                continue
            site, _, selector_text = clause.partition(":")
            if site not in ALL_SITES:
                raise FaultSpecError(
                    f"unknown injection site {site!r} (known: {', '.join(sorted(ALL_SITES))})"
                )
            rule = FaultRule(site=site)
            for selector in selector_text.split(":") if selector_text else ():
                key, _, value = selector.partition("=")
                try:
                    if key == "at":
                        rule.at = int(value)
                    elif key == "every":
                        rule.every = int(value)
                    elif key == "p":
                        rule.p = float(value)
                    elif key == "n":
                        rule.n = int(value)
                    elif key == "delay":
                        rule.delay = float(value)
                    elif key == "skew":
                        rule.skew = float(value)
                    else:
                        raise FaultSpecError(
                            f"unknown selector {key!r} in {clause!r} "
                            f"(known: at, every, p, n, delay, skew)"
                        )
                except ValueError as error:
                    raise FaultSpecError(f"bad value in {selector!r} of {clause!r}") from error
            triggers = sum(x is not None for x in (rule.at, rule.every, rule.p))
            if triggers > 1:
                raise FaultSpecError(f"{clause!r} mixes at/every/p triggers")
            rules.append(rule)
        return cls(seed, rules)


class FaultInjector:
    """The per-process fault machine the hook sites consult (see module docstring)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._by_site: dict[str, FaultRule] = {rule.site: rule for rule in plan.rules}

    def fires(self, site: str) -> FaultRule | None:
        """Count one hit at ``site``; the armed rule when this hit fires, else None."""
        rule = self._by_site.get(site)
        if rule is None:
            return None
        return rule if rule.check() else None

    def crash_if(self, site: str) -> None:
        """Raise :class:`InjectedFault` when ``site`` fires on this hit."""
        if self.fires(site) is not None:
            raise InjectedFault(f"injected fault at {site}")

    def die_if(self, site: str) -> None:
        """Kill the process (``os._exit`` — no cleanup, no atexit, no heartbeats)
        when ``site`` fires on this hit; the SIGKILL-faithful worker-death action."""
        if self.fires(site) is not None:
            os._exit(DIE_EXIT_CODE)

    def report(self) -> dict[str, dict[str, int]]:
        """Per-site hit/fire counters (test and telemetry hook)."""
        return {
            site: {"hits": rule.hits, "fired": rule.fired}
            for site, rule in self._by_site.items()
        }


# ------------------------------------------------------------------ the active plan
_active: FaultInjector | None = None
_active_spec: str | None = None


def active_faults() -> FaultInjector | None:
    """The process-wide injector for ``REPRO_FAULTS``, or ``None`` when unset.

    Cached per spec string so hit counters accumulate across calls; re-pointing the
    environment variable swaps (and re-seeds) the plan.  The off-path cost is one
    ``os.environ`` read — the hook sites only run on durability paths (file I/O,
    lease transitions), never in simulator loops.
    """
    global _active, _active_spec
    spec = os.environ.get(FAULTS_ENV_VAR)
    if not spec:
        _active = None
        _active_spec = None
        return None
    if _active is None or _active_spec != spec:
        _active = FaultInjector(FaultPlan.parse(spec))
        _active_spec = spec
    return _active


def reset_faults() -> None:
    """Drop the cached injector (tests re-arming the same spec need fresh counters)."""
    global _active, _active_spec
    _active = None
    _active_spec = None


def faults_enabled() -> bool:
    """True when a fault plan is armed in this process."""
    return active_faults() is not None
