"""Early Execution (the "E" of EOLE) — Section 3.2 of the paper.

Early Execution places one (or more) stage(s) of simple ALUs in the in-order front-end,
in parallel with Rename.  A single-cycle ALU µ-op whose operands are all available in
the front-end is executed there and never enters the out-of-order engine.  Operands can
come from three places only (operands are *never* read from the PRF):

* an immediate (known at decode);
* the value predictor — the predicted result of a producer travelling through the
  front-end alongside the consumer (same rename group, or the immediately preceding
  group whose predictions are still on the local bypass);
* the local bypass network — the result of a µ-op early-executed in the immediately
  preceding rename group, or (when more than one ALU stage is used) in an earlier stage
  of the same group.

The paper finds a single ALU stage captures almost all of the benefit (Fig. 2); the
``depth`` knob reproduces that study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.ooo.inflight import InflightOp


@dataclass
class EarlyExecutionConfig:
    """Configuration of the Early Execution block.

    ``depth`` is the number of ALU stages (Fig. 2 compares 1 and 2); ``alus_per_stage``
    bounds how many µ-ops can execute in one stage in one cycle (the paper assumes a
    full rename-width rank of ALUs, i.e. 8, in Section 5, and discusses narrower ranks
    in Section 6.3).
    """

    enabled: bool = True
    depth: int = 1
    alus_per_stage: int = 8

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise ConfigurationError("Early Execution depth must be at least one stage")
        if self.alus_per_stage <= 0:
            raise ConfigurationError("Early Execution needs at least one ALU per stage")


class EarlyExecutionBlock:
    """Plans which µ-ops of a rename group execute early."""

    def __init__(self, config: EarlyExecutionConfig | None = None) -> None:
        self.config = config if config is not None else EarlyExecutionConfig()
        self.candidates_seen = 0
        self.executed = 0
        self.alu_saturation_rejects = 0

    # ------------------------------------------------------------------ eligibility
    def _operands_available(
        self,
        op: InflightOp,
        group_members: set[int],
        previous_bypass: set[int],
        earlier_stage: set[int],
    ) -> bool:
        """True if every register operand of ``op`` is available in the front-end."""
        for producer in op.producers:
            if producer is None:
                # The value lives only in the PRF, which Early Execution cannot read.
                return False
            producer_id = id(producer)
            if producer_id in earlier_stage:
                continue
            if producer_id in group_members and producer.pred_used:
                continue
            if producer_id in previous_bypass:
                continue
            return False
        return True

    # ------------------------------------------------------------------ planning
    def plan(self, group: list[InflightOp], previous_group: list[InflightOp]) -> list[InflightOp]:
        """Mark the µ-ops of ``group`` that early-execute and return them.

        ``previous_group`` is the rename group dispatched immediately before this one;
        only its early-executed or predicted members are visible on the local bypass
        (footnote 3 of the paper: the bypass does not span several rename groups).
        """
        if not self.config.enabled or not group:
            return []
        previous_bypass = {
            id(op) for op in previous_group if op.early_executed or op.pred_used
        }
        group_members = {id(op) for op in group}
        executed: list[InflightOp] = []
        earlier_stage: set[int] = set()
        for _stage in range(self.config.depth):
            stage_executed: list[InflightOp] = []
            alus_left = self.config.alus_per_stage
            for op in group:
                if op.early_executed or not op.uop.is_single_cycle_alu:
                    continue
                self.candidates_seen += 1
                if not self._operands_available(op, group_members, previous_bypass, earlier_stage):
                    continue
                if alus_left <= 0:
                    self.alu_saturation_rejects += 1
                    continue
                op.early_executed = True
                alus_left -= 1
                stage_executed.append(op)
            if not stage_executed:
                break
            earlier_stage.update(id(op) for op in stage_executed)
            executed.extend(stage_executed)
        self.executed += len(executed)
        return executed
