"""EOLE variants: {Early | Out-of-Order | Late} Execution and its partial forms.

Section 6.5 of the paper notes that EOLE is modular: Early Execution and Late Execution
can be adopted independently, giving the OLE (Late Execution only) and EOE (Early
Execution only) designs evaluated in Fig. 13.  This module groups the per-block
configurations under a single :class:`EOLEConfig` consumed by the pipeline simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique

from repro.core.early_execution import EarlyExecutionConfig
from repro.core.late_execution import LateExecutionConfig


@unique
class EOLEVariant(str, Enum):
    """Which of the paper's execution-offload blocks are present."""

    NONE = "none"  # plain superscalar (with or without VP)
    EOLE = "eole"  # Early + Late Execution
    OLE = "ole"  # Late Execution only (Fig. 13)
    EOE = "eoe"  # Early Execution only (Fig. 13)

    @property
    def has_early_execution(self) -> bool:
        """True if the variant includes the front-end Early Execution block."""
        return self in (EOLEVariant.EOLE, EOLEVariant.EOE)

    @property
    def has_late_execution(self) -> bool:
        """True if the variant includes the pre-commit Late Execution block."""
        return self in (EOLEVariant.EOLE, EOLEVariant.OLE)


@dataclass
class EOLEConfig:
    """Aggregated EOLE configuration used by the pipeline."""

    variant: EOLEVariant = EOLEVariant.NONE
    early: EarlyExecutionConfig = field(default_factory=EarlyExecutionConfig)
    late: LateExecutionConfig = field(default_factory=LateExecutionConfig)

    def __post_init__(self) -> None:
        self.early.enabled = self.variant.has_early_execution
        self.late.enabled = self.variant.has_late_execution

    @property
    def enabled(self) -> bool:
        """True if any offload block is active."""
        return self.variant is not EOLEVariant.NONE


def eole_config(
    variant: EOLEVariant = EOLEVariant.EOLE,
    ee_depth: int = 1,
    ee_alus: int = 8,
    le_alus: int = 8,
    resolve_high_confidence_branches: bool = True,
) -> EOLEConfig:
    """Convenience constructor for an :class:`EOLEConfig`."""
    return EOLEConfig(
        variant=variant,
        early=EarlyExecutionConfig(enabled=True, depth=ee_depth, alus_per_stage=ee_alus),
        late=LateExecutionConfig(
            enabled=True,
            alus=le_alus,
            resolve_high_confidence_branches=resolve_high_confidence_branches,
        ),
    )
