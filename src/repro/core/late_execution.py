"""Late Execution and the LE/VT (Late Execution / Validation & Training) stage.

Section 3.3 of the paper: µ-ops whose result was predicted with high confidence do not
need to execute in the out-of-order engine at all — their dependents already consume
the prediction — so their execution can be delayed to an in-order, pre-commit stage
where prediction validation and predictor training happen anyway.  Very-high-confidence
conditional branches (as classified by TAGE's storage-free confidence estimator) are
resolved in the same stage.

Only single-cycle ALU µ-ops are late-executed (predicted loads still execute in the OoO
engine but are *validated* at commit).  The LE/VT stage reads the PRF: Section 6
budgets those read ports and Fig. 11 studies limiting them per bank — the
:meth:`LateExecutionBlock.levt_read_banks` helper exposes exactly the reads each
committing µ-op needs so the pipeline can enforce the per-bank budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.ooo.inflight import InflightOp


@dataclass
class LateExecutionConfig:
    """Configuration of the Late Execution block.

    ``alus`` bounds how many µ-ops can late-execute per cycle (the paper assumes a full
    commit-width rank, i.e. 8, and presumes in Section 6.4 that a rank of 4 would
    suffice); ``resolve_high_confidence_branches`` enables offloading very-high-
    confidence conditional branches.
    """

    enabled: bool = True
    alus: int = 8
    resolve_high_confidence_branches: bool = True

    def __post_init__(self) -> None:
        if self.alus <= 0:
            raise ConfigurationError("Late Execution needs at least one ALU")


class LateExecutionBlock:
    """Classifies µ-ops for Late Execution and accounts LE/VT register-file traffic."""

    def __init__(self, config: LateExecutionConfig | None = None) -> None:
        self.config = config if config is not None else LateExecutionConfig()
        self.late_executed_alu = 0
        self.late_resolved_branches = 0
        self.alu_saturation_stalls = 0

    # ------------------------------------------------------------------ eligibility
    def is_late_executable(self, op: InflightOp) -> bool:
        """True if ``op`` skips the OoO engine and executes in the LE/VT stage.

        Mirrors Section 3.3: predicted single-cycle ALU µ-ops, plus very-high-confidence
        conditional branches.  µ-ops that were already early-executed are not counted
        (instructions are executed once at most — note under Fig. 4).
        """
        if not self.config.enabled or op.early_executed:
            return False
        if op.uop.is_single_cycle_alu and op.pred_used:
            return True
        if (
            self.config.resolve_high_confidence_branches
            and op.uop.is_conditional_branch
            and op.branch_outcome is not None
            and op.branch_outcome.high_confidence
        ):
            return True
        return False

    def classify(self, op: InflightOp) -> bool:
        """Mark ``op`` as late-executed if eligible; returns the decision."""
        if self.is_late_executable(op):
            op.late_executed = True
            if op.uop.is_conditional_branch:
                self.late_resolved_branches += 1
            else:
                self.late_executed_alu += 1
            return True
        return False

    # ------------------------------------------------------------------ LE/VT PRF traffic
    def levt_read_banks(self, op: InflightOp, architectural_bank: int = 0) -> list[int]:
        """PRF banks read by the LE/VT stage on behalf of ``op`` at commit.

        * every VP-eligible µ-op reads its own result for validation and predictor
          training (one read from its destination bank);
        * a late-executed ALU µ-op additionally reads its source operands;
        * a late-resolved branch reads the flags register.

        Operands produced by older µ-ops map to the producer's destination bank;
        operands coming from architectural state map to ``architectural_bank``.
        """
        banks: list[int] = []
        if op.uop.vp_eligible:
            banks.append(op.dest_bank)
        if op.late_executed:
            for producer in op.producers:
                if producer is None:
                    banks.append(architectural_bank)
                else:
                    banks.append(producer.dest_bank)
        return banks
