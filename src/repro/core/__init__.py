"""The paper's contribution: Early Execution, Late Execution and the EOLE variants."""

from repro.core.early_execution import EarlyExecutionBlock, EarlyExecutionConfig
from repro.core.eole import EOLEConfig, EOLEVariant, eole_config
from repro.core.late_execution import LateExecutionBlock, LateExecutionConfig

__all__ = [
    "EOLEConfig",
    "EOLEVariant",
    "EarlyExecutionBlock",
    "EarlyExecutionConfig",
    "LateExecutionBlock",
    "LateExecutionConfig",
    "eole_config",
]
