"""Reproduction ISA: µ-ops, programs, a builder DSL and an architectural emulator.

This package is the lowest layer of the EOLE reproduction.  Everything above it — value
predictors, the branch predictor, the out-of-order engine and the EOLE pipeline model —
operates on the µ-op classes and dynamic traces defined here.
"""

from repro.isa.builder import ProgramBuilder
from repro.isa.emulator import ArchState, Emulator, collect_trace, generate_trace
from repro.isa.microop import MicroOp
from repro.isa.opcode import OpClass, Opcode
from repro.isa.program import Program
from repro.isa.registers import FLAGS_REG, fp_reg, int_reg, reg_name
from repro.isa.trace import DynInst, TraceStatistics, characterize

__all__ = [
    "ArchState",
    "DynInst",
    "Emulator",
    "FLAGS_REG",
    "MicroOp",
    "OpClass",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "TraceStatistics",
    "characterize",
    "collect_trace",
    "fp_reg",
    "generate_trace",
    "int_reg",
    "reg_name",
]
