"""Architectural register namespace of the reproduction ISA.

The ISA is a simple register machine with 32 integer registers (``r0``..``r31``), 32
floating-point registers (``f0``..``f31``) and a single architectural flags register.
Register operands are carried around as small integers so that hot simulator loops can
index plain lists instead of hashing strings:

* integer registers occupy ids ``0 .. 31``
* floating-point registers occupy ids ``32 .. 63``
* the flags register is id ``64``

The flags register is written by flag-setting ALU µ-ops and by ``CMP``, and read by
conditional branches, mirroring the x86-style flag dependencies discussed in the paper
(Section 4.2, "x86 Flags").
"""

from __future__ import annotations

from repro.errors import ProgramError

NUM_INT_REGS = 32
NUM_FP_REGS = 32

INT_REG_BASE = 0
FP_REG_BASE = NUM_INT_REGS
FLAGS_REG = NUM_INT_REGS + NUM_FP_REGS
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS + 1


def int_reg(index: int) -> int:
    """Return the register id of integer register ``r<index>``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ProgramError(f"integer register index out of range: {index}")
    return INT_REG_BASE + index


def fp_reg(index: int) -> int:
    """Return the register id of floating-point register ``f<index>``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ProgramError(f"floating-point register index out of range: {index}")
    return FP_REG_BASE + index


def is_int_reg(reg: int) -> bool:
    """True if ``reg`` names an integer register."""
    return INT_REG_BASE <= reg < INT_REG_BASE + NUM_INT_REGS


def is_fp_reg(reg: int) -> bool:
    """True if ``reg`` names a floating-point register."""
    return FP_REG_BASE <= reg < FP_REG_BASE + NUM_FP_REGS


def is_flags_reg(reg: int) -> bool:
    """True if ``reg`` is the architectural flags register."""
    return reg == FLAGS_REG


def is_valid_reg(reg: int) -> bool:
    """True if ``reg`` is any valid architectural register id."""
    return 0 <= reg < NUM_ARCH_REGS


def reg_name(reg: int) -> str:
    """Human readable name of a register id (``r3``, ``f7`` or ``flags``)."""
    if is_int_reg(reg):
        return f"r{reg - INT_REG_BASE}"
    if is_fp_reg(reg):
        return f"f{reg - FP_REG_BASE}"
    if is_flags_reg(reg):
        return "flags"
    raise ProgramError(f"invalid register id: {reg}")


def parse_reg(name: str) -> int:
    """Parse a register name (``"r5"``, ``"f12"``, ``"flags"``) into a register id."""
    name = name.strip().lower()
    if name == "flags":
        return FLAGS_REG
    if len(name) >= 2 and name[0] == "r" and name[1:].isdigit():
        return int_reg(int(name[1:]))
    if len(name) >= 2 and name[0] == "f" and name[1:].isdigit():
        return fp_reg(int(name[1:]))
    raise ProgramError(f"cannot parse register name: {name!r}")
