"""Architectural flags and their derivation from predicted values.

The paper (Section 4.2, "x86 Flags") assumes flags are computed as the last step of
Value Prediction, based on the predicted value:

* the Zero, Sign and Parity flags can be derived exactly from the predicted result;
* the Overflow flag is always assumed 0 and the Carry flag is approximated as equal to
  the Sign flag;
* the Adjust flag is ignored (x86_64 forbids decimal arithmetic).

This module implements both the *exact* flag computation used by the architectural
emulator and the *approximate* derivation used when a value prediction stands in for the
actual result.  Comparing the two tells the validation logic whether using a prediction
would have produced a wrong flags register even though the 64-bit value itself was
predicted correctly.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63

# Flag bit positions within the architectural flags register value.
ZF = 1 << 0  # zero
SF = 1 << 1  # sign
PF = 1 << 2  # parity (of the low byte)
CF = 1 << 3  # carry
OF = 1 << 4  # overflow

ALL_FLAGS = ZF | SF | PF | CF | OF

#: Flags that can be derived exactly from a 64-bit result value alone.
RESULT_DERIVED_FLAGS = ZF | SF | PF


def _parity(value: int) -> bool:
    """Even-parity of the low byte, like the x86 PF flag."""
    return bin(value & 0xFF).count("1") % 2 == 0


def flags_from_result(result: int) -> int:
    """Exact ZF/SF/PF derived from ``result`` (no carry/overflow information)."""
    result &= MASK64
    flags = 0
    if result == 0:
        flags |= ZF
    if result & SIGN_BIT:
        flags |= SF
    if _parity(result):
        flags |= PF
    return flags


def exact_flags(result: int, carry: bool, overflow: bool) -> int:
    """Exact architectural flags for ``result`` with known carry/overflow bits."""
    flags = flags_from_result(result)
    if carry:
        flags |= CF
    if overflow:
        flags |= OF
    return flags


def approximate_flags(predicted_result: int) -> int:
    """Flags derived from a predicted result using the paper's approximation.

    ZF, SF and PF are exact; OF is forced to 0; CF is set iff SF is set.
    """
    flags = flags_from_result(predicted_result)
    if flags & SF:
        flags |= CF
    return flags


def add_flags(a: int, b: int) -> int:
    """Exact flags of the 64-bit addition ``a + b``."""
    a &= MASK64
    b &= MASK64
    full = a + b
    result = full & MASK64
    carry = full > MASK64
    overflow = ((a ^ result) & (b ^ result) & SIGN_BIT) != 0
    return exact_flags(result, carry, overflow)


def sub_flags(a: int, b: int) -> int:
    """Exact flags of the 64-bit subtraction ``a - b`` (x86 ``CMP`` semantics)."""
    a &= MASK64
    b &= MASK64
    result = (a - b) & MASK64
    carry = a < b  # borrow
    overflow = ((a ^ b) & (a ^ result) & SIGN_BIT) != 0
    return exact_flags(result, carry, overflow)


def logic_flags(result: int) -> int:
    """Exact flags of a logical operation: CF and OF are cleared."""
    return flags_from_result(result)


def flags_match_for_validation(exact: int, approximate: int) -> bool:
    """True if the approximated flags are acceptable at validation time.

    The paper considers a prediction incorrect if the *architecturally visible* flags
    differ.  All five modelled flags are compared (AF does not exist in this ISA).
    """
    return (exact & ALL_FLAGS) == (approximate & ALL_FLAGS)
