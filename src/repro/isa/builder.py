"""A small assembly-like DSL for constructing :class:`~repro.isa.program.Program` objects.

The workload kernels (see :mod:`repro.workloads`) are written against this builder.  It
accepts registers either as small integer ids or as names (``"r4"``, ``"f2"``), resolves
labels lazily at :meth:`ProgramBuilder.build` time, and provides one method per opcode
plus a handful of convenience helpers (``la`` to materialise a label address, loop
labels, etc.).

Example
-------
>>> from repro.isa.builder import ProgramBuilder
>>> b = ProgramBuilder("count")
>>> b.movi("r1", 0)
>>> b.movi("r2", 100)
>>> b.label("loop")
>>> b.addi("r1", "r1", 1)
>>> b.cmp("r1", "r2")
>>> b.bne("loop")
>>> program = b.build()
>>> len(program)
5
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.isa import registers as regs
from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode
from repro.isa.program import Program

RegLike = int | str


def _reg(reg: RegLike) -> int:
    """Normalise a register operand (id or name) to a register id."""
    if isinstance(reg, str):
        return regs.parse_reg(reg)
    if not regs.is_valid_reg(reg):
        raise ProgramError(f"invalid register id: {reg}")
    return reg


class ProgramBuilder:
    """Incrementally builds a :class:`Program`."""

    def __init__(self, name: str = "anonymous") -> None:
        self.name = name
        self._uops: list[MicroOp] = []
        self._labels: dict[str, int] = {}

    # ------------------------------------------------------------------ structure
    def label(self, name: str) -> str:
        """Define ``name`` at the current position and return it."""
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._labels[name] = len(self._uops)
        return name

    def emit(self, uop: MicroOp) -> MicroOp:
        """Append an already-constructed µ-op."""
        self._uops.append(uop)
        return uop

    def build(self) -> Program:
        """Finalise and resolve the program."""
        program = Program(uops=list(self._uops), labels=dict(self._labels), name=self.name)
        return program.resolve()

    def __len__(self) -> int:
        return len(self._uops)

    # ------------------------------------------------------------------ ALU helpers
    def _alu(
        self,
        opcode: Opcode,
        dst: RegLike,
        a: RegLike,
        b: RegLike | None = None,
        imm: int | None = None,
        sets_flags: bool = False,
    ) -> MicroOp:
        srcs = (_reg(a),) if b is None else (_reg(a), _reg(b))
        if b is None and imm is None:
            raise ProgramError(f"{opcode.value}: needs either a second register or an immediate")
        return self.emit(
            MicroOp(opcode, dst=_reg(dst), srcs=srcs, imm=imm, sets_flags=sets_flags)
        )

    def add(self, dst: RegLike, a: RegLike, b: RegLike, sets_flags: bool = False) -> MicroOp:
        """``dst = a + b``."""
        return self._alu(Opcode.ADD, dst, a, b, sets_flags=sets_flags)

    def addi(self, dst: RegLike, a: RegLike, imm: int, sets_flags: bool = False) -> MicroOp:
        """``dst = a + imm``."""
        return self._alu(Opcode.ADD, dst, a, imm=imm, sets_flags=sets_flags)

    def sub(self, dst: RegLike, a: RegLike, b: RegLike, sets_flags: bool = False) -> MicroOp:
        """``dst = a - b``."""
        return self._alu(Opcode.SUB, dst, a, b, sets_flags=sets_flags)

    def subi(self, dst: RegLike, a: RegLike, imm: int, sets_flags: bool = False) -> MicroOp:
        """``dst = a - imm``."""
        return self._alu(Opcode.SUB, dst, a, imm=imm, sets_flags=sets_flags)

    def and_(self, dst: RegLike, a: RegLike, b: RegLike | None = None, imm: int | None = None) -> MicroOp:
        """``dst = a & (b | imm)``."""
        return self._alu(Opcode.AND, dst, a, b, imm=imm)

    def or_(self, dst: RegLike, a: RegLike, b: RegLike | None = None, imm: int | None = None) -> MicroOp:
        """``dst = a | (b | imm)``."""
        return self._alu(Opcode.OR, dst, a, b, imm=imm)

    def xor(self, dst: RegLike, a: RegLike, b: RegLike | None = None, imm: int | None = None) -> MicroOp:
        """``dst = a ^ (b | imm)``."""
        return self._alu(Opcode.XOR, dst, a, b, imm=imm)

    def shl(self, dst: RegLike, a: RegLike, imm: int) -> MicroOp:
        """``dst = a << imm``."""
        return self._alu(Opcode.SHL, dst, a, imm=imm)

    def shr(self, dst: RegLike, a: RegLike, imm: int) -> MicroOp:
        """``dst = a >> imm`` (logical)."""
        return self._alu(Opcode.SHR, dst, a, imm=imm)

    def mov(self, dst: RegLike, src: RegLike) -> MicroOp:
        """``dst = src``."""
        return self.emit(MicroOp(Opcode.MOV, dst=_reg(dst), srcs=(_reg(src),)))

    def movi(self, dst: RegLike, imm: int) -> MicroOp:
        """``dst = imm``."""
        return self.emit(MicroOp(Opcode.MOVI, dst=_reg(dst), imm=imm))

    def la(self, dst: RegLike, label: str) -> MicroOp:
        """``dst = static PC of label`` (for indirect jumps)."""
        return self.emit(MicroOp(Opcode.MOVI, dst=_reg(dst), imm_label=label))

    def cmp(self, a: RegLike, b: RegLike | None = None, imm: int | None = None) -> MicroOp:
        """Compare ``a`` with ``b`` (or ``imm``) and set flags."""
        srcs = (_reg(a),) if b is None else (_reg(a), _reg(b))
        if b is None and imm is None:
            raise ProgramError("cmp: needs either a second register or an immediate")
        return self.emit(MicroOp(Opcode.CMP, srcs=srcs, imm=imm, sets_flags=True))

    def not_(self, dst: RegLike, a: RegLike) -> MicroOp:
        """``dst = ~a``."""
        return self.emit(MicroOp(Opcode.NOT, dst=_reg(dst), srcs=(_reg(a),)))

    def neg(self, dst: RegLike, a: RegLike) -> MicroOp:
        """``dst = -a``."""
        return self.emit(MicroOp(Opcode.NEG, dst=_reg(dst), srcs=(_reg(a),)))

    def min_(self, dst: RegLike, a: RegLike, b: RegLike) -> MicroOp:
        """``dst = min(a, b)`` (unsigned)."""
        return self._alu(Opcode.MIN, dst, a, b)

    def max_(self, dst: RegLike, a: RegLike, b: RegLike) -> MicroOp:
        """``dst = max(a, b)`` (unsigned)."""
        return self._alu(Opcode.MAX, dst, a, b)

    # ------------------------------------------------------------------ multi-cycle integer
    def mul(self, dst: RegLike, a: RegLike, b: RegLike | None = None, imm: int | None = None) -> MicroOp:
        """``dst = a * (b | imm)``."""
        return self._alu(Opcode.MUL, dst, a, b, imm=imm)

    def div(self, dst: RegLike, a: RegLike, b: RegLike | None = None, imm: int | None = None) -> MicroOp:
        """``dst = a / (b | imm)`` (unsigned; division by zero yields all-ones)."""
        return self._alu(Opcode.DIV, dst, a, b, imm=imm)

    def mod(self, dst: RegLike, a: RegLike, b: RegLike | None = None, imm: int | None = None) -> MicroOp:
        """``dst = a % (b | imm)`` (unsigned; modulo zero yields zero)."""
        return self._alu(Opcode.MOD, dst, a, b, imm=imm)

    # ------------------------------------------------------------------ floating point
    def fadd(self, dst: RegLike, a: RegLike, b: RegLike) -> MicroOp:
        """Floating-point add (3-cycle class)."""
        return self._alu(Opcode.FADD, dst, a, b)

    def fsub(self, dst: RegLike, a: RegLike, b: RegLike) -> MicroOp:
        """Floating-point subtract (3-cycle class)."""
        return self._alu(Opcode.FSUB, dst, a, b)

    def fmov(self, dst: RegLike, a: RegLike) -> MicroOp:
        """Floating-point move (3-cycle class)."""
        return self.emit(MicroOp(Opcode.FMOV, dst=_reg(dst), srcs=(_reg(a),)))

    def fcvt(self, dst: RegLike, a: RegLike) -> MicroOp:
        """Int/FP conversion (3-cycle class)."""
        return self.emit(MicroOp(Opcode.FCVT, dst=_reg(dst), srcs=(_reg(a),)))

    def fmul(self, dst: RegLike, a: RegLike, b: RegLike) -> MicroOp:
        """Floating-point multiply (5-cycle class)."""
        return self._alu(Opcode.FMUL, dst, a, b)

    def fma(self, dst: RegLike, a: RegLike, b: RegLike, c: RegLike) -> MicroOp:
        """Fused multiply-add ``dst = a * b + c`` (5-cycle class)."""
        return self.emit(MicroOp(Opcode.FMA, dst=_reg(dst), srcs=(_reg(a), _reg(b), _reg(c))))

    def fdiv(self, dst: RegLike, a: RegLike, b: RegLike) -> MicroOp:
        """Floating-point divide (10-cycle, unpipelined class)."""
        return self._alu(Opcode.FDIV, dst, a, b)

    def fsqrt(self, dst: RegLike, a: RegLike) -> MicroOp:
        """Square root (10-cycle, unpipelined class)."""
        return self.emit(MicroOp(Opcode.FSQRT, dst=_reg(dst), srcs=(_reg(a),)))

    # ------------------------------------------------------------------ memory
    def ld(self, dst: RegLike, base: RegLike, offset: int = 0) -> MicroOp:
        """``dst = memory[base + offset]`` (integer load)."""
        return self.emit(MicroOp(Opcode.LD, dst=_reg(dst), srcs=(_reg(base),), imm=offset))

    def fld(self, dst: RegLike, base: RegLike, offset: int = 0) -> MicroOp:
        """``dst = memory[base + offset]`` (floating-point load)."""
        return self.emit(MicroOp(Opcode.FLD, dst=_reg(dst), srcs=(_reg(base),), imm=offset))

    def st(self, base: RegLike, data: RegLike, offset: int = 0) -> MicroOp:
        """``memory[base + offset] = data`` (integer store)."""
        return self.emit(MicroOp(Opcode.ST, srcs=(_reg(base), _reg(data)), imm=offset))

    def fst(self, base: RegLike, data: RegLike, offset: int = 0) -> MicroOp:
        """``memory[base + offset] = data`` (floating-point store)."""
        return self.emit(MicroOp(Opcode.FST, srcs=(_reg(base), _reg(data)), imm=offset))

    # ------------------------------------------------------------------ control flow
    def _branch(self, opcode: Opcode, target: str) -> MicroOp:
        return self.emit(MicroOp(opcode, srcs=(regs.FLAGS_REG,), target=target))

    def beq(self, target: str) -> MicroOp:
        """Branch if equal (ZF set)."""
        return self._branch(Opcode.BEQ, target)

    def bne(self, target: str) -> MicroOp:
        """Branch if not equal (ZF clear)."""
        return self._branch(Opcode.BNE, target)

    def blt(self, target: str) -> MicroOp:
        """Branch if (signed) less than."""
        return self._branch(Opcode.BLT, target)

    def bge(self, target: str) -> MicroOp:
        """Branch if (signed) greater than or equal."""
        return self._branch(Opcode.BGE, target)

    def bgt(self, target: str) -> MicroOp:
        """Branch if (signed) greater than."""
        return self._branch(Opcode.BGT, target)

    def ble(self, target: str) -> MicroOp:
        """Branch if (signed) less than or equal."""
        return self._branch(Opcode.BLE, target)

    def bcs(self, target: str) -> MicroOp:
        """Branch if carry set (depends on a flag the VP flag-approximation may get wrong)."""
        return self._branch(Opcode.BCS, target)

    def bvs(self, target: str) -> MicroOp:
        """Branch if overflow set (depends on a flag the VP flag-approximation may get wrong)."""
        return self._branch(Opcode.BVS, target)

    def jmp(self, target: str) -> MicroOp:
        """Unconditional direct jump."""
        return self.emit(MicroOp(Opcode.JMP, target=target))

    def jmpi(self, reg: RegLike) -> MicroOp:
        """Indirect jump to the static PC held in ``reg``."""
        return self.emit(MicroOp(Opcode.JMPI, srcs=(_reg(reg),)))

    def call(self, target: str) -> MicroOp:
        """Call ``target`` (pushes the return PC on the shadow call stack)."""
        return self.emit(MicroOp(Opcode.CALL, target=target))

    def ret(self) -> MicroOp:
        """Return to the most recent caller (pops the shadow call stack)."""
        return self.emit(MicroOp(Opcode.RET))

    def nop(self) -> MicroOp:
        """No operation."""
        return self.emit(MicroOp(Opcode.NOP))
