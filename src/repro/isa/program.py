"""Programs: ordered collections of static µ-ops plus control-flow labels.

A :class:`Program` is the unit consumed by the architectural emulator and, indirectly,
by the timing simulator.  Static program counters are simply indices into the µ-op
list; labels map names to such indices.  :meth:`Program.resolve` produces the resolved
branch-target table used by the emulator and by the branch-prediction structures.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.isa.microop import MicroOp
from repro.isa.opcode import Opcode


@dataclass
class Program:
    """An executable program of the reproduction ISA.

    Attributes
    ----------
    uops:
        The static µ-ops, in program order.  Static PC ``i`` names ``uops[i]``.
    labels:
        Mapping from label name to static PC.
    name:
        Human-readable name (used by the workload suite and reports).
    """

    uops: list[MicroOp] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    name: str = "anonymous"

    _targets: list[int | None] = field(default_factory=list, repr=False)
    _imm_values: list[int | None] = field(default_factory=list, repr=False)
    _resolved: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------ container API
    def __len__(self) -> int:
        return len(self.uops)

    def __getitem__(self, pc: int) -> MicroOp:
        return self.uops[pc]

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.uops)

    # ------------------------------------------------------------------ resolution
    def resolve(self) -> "Program":
        """Resolve label references into static PCs and validate the program.

        Returns ``self`` to allow chaining.  Raises :class:`ProgramError` on undefined
        labels, labels out of range, or an empty program.
        """
        if not self.uops:
            raise ProgramError(f"program {self.name!r} is empty")
        for label, pc in self.labels.items():
            if not 0 <= pc <= len(self.uops):
                raise ProgramError(f"label {label!r} points outside program: {pc}")

        targets: list[int | None] = []
        imm_values: list[int | None] = []
        for index, uop in enumerate(self.uops):
            if uop.target is not None:
                if uop.target not in self.labels:
                    raise ProgramError(
                        f"µ-op {index} ({uop}) references undefined label {uop.target!r}"
                    )
                targets.append(self.labels[uop.target])
            else:
                targets.append(None)
            if uop.imm_label is not None:
                if uop.imm_label not in self.labels:
                    raise ProgramError(
                        f"µ-op {index} ({uop}) references undefined label {uop.imm_label!r}"
                    )
                imm_values.append(self.labels[uop.imm_label])
            else:
                imm_values.append(uop.imm)
        self._targets = targets
        self._imm_values = imm_values
        self._resolved = True
        return self

    @property
    def resolved(self) -> bool:
        """True once :meth:`resolve` has been called successfully."""
        return self._resolved

    def _require_resolved(self) -> None:
        if not self._resolved:
            raise ProgramError(f"program {self.name!r} has not been resolved yet")

    def target_of(self, pc: int) -> int | None:
        """Resolved branch target of the µ-op at ``pc`` (``None`` for non-branches)."""
        self._require_resolved()
        return self._targets[pc]

    def immediate_of(self, pc: int) -> int | None:
        """Resolved immediate of the µ-op at ``pc`` (label immediates become PCs)."""
        self._require_resolved()
        return self._imm_values[pc]

    def pc_of(self, label: str) -> int:
        """Static PC of ``label``."""
        if label not in self.labels:
            raise ProgramError(f"undefined label {label!r}")
        return self.labels[label]

    # ------------------------------------------------------------------ statistics
    def static_mix(self) -> dict[str, int]:
        """Static instruction mix: number of µ-ops per operation class name."""
        mix: dict[str, int] = {}
        for uop in self.uops:
            key = uop.opclass.name
            mix[key] = mix.get(key, 0) + 1
        return mix

    def branch_pcs(self) -> Sequence[int]:
        """Static PCs of all control-flow µ-ops."""
        return [pc for pc, uop in enumerate(self.uops) if uop.is_branch]

    def uses_opcode(self, opcode: Opcode) -> bool:
        """True if the program contains at least one µ-op with ``opcode``."""
        return any(uop.opcode is opcode for uop in self.uops)

    def listing(self) -> str:
        """Pretty assembly-like listing, mainly for debugging and documentation."""
        label_at: dict[int, list[str]] = {}
        for label, pc in self.labels.items():
            label_at.setdefault(pc, []).append(label)
        lines: list[str] = []
        for pc, uop in enumerate(self.uops):
            for label in sorted(label_at.get(pc, [])):
                lines.append(f"{label}:")
            lines.append(f"  {pc:5d}: {uop}")
        return "\n".join(lines)
