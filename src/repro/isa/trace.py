"""Dynamic instruction records and trace helpers.

The architectural emulator (:mod:`repro.isa.emulator`) turns a static
:class:`~repro.isa.program.Program` into a stream of :class:`DynInst` records — the
committed, correct-path µ-op trace.  The timing simulator consumes this stream: it is a
trace-driven model (wrong-path instructions are not simulated; their cost is accounted
through front-end refill penalties, see DESIGN.md §5).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.isa.microop import MicroOp
from repro.isa.opcode import OpClass


class DynInst:
    """One dynamic (committed) instance of a static µ-op.

    Attributes
    ----------
    seq:
        Global sequence number in commit order, starting at 0.
    pc:
        Static PC (index into the program) of the µ-op.
    uop:
        The static µ-op.
    src_values:
        Architectural values of the explicit source registers, in operand order.
    result:
        Architectural result value (``None`` for µ-ops without a destination register).
    flags_result:
        Value written to the flags register (``None`` if the µ-op does not set flags).
    flags_in:
        Value of the flags register read by conditional branches (``None`` otherwise).
    addr:
        Effective memory address for loads/stores (``None`` otherwise).
    store_value:
        Value written to memory by stores (``None`` otherwise).
    taken:
        Branch outcome (``False`` for non-branches).
    next_pc:
        Static PC of the next dynamic instruction in the trace.
    """

    __slots__ = (
        "seq",
        "pc",
        "uop",
        "src_values",
        "result",
        "flags_result",
        "flags_in",
        "addr",
        "store_value",
        "taken",
        "next_pc",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        uop: MicroOp,
        src_values: tuple[int, ...] = (),
        result: int | None = None,
        flags_result: int | None = None,
        flags_in: int | None = None,
        addr: int | None = None,
        store_value: int | None = None,
        taken: bool = False,
        next_pc: int = 0,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.uop = uop
        self.src_values = src_values
        self.result = result
        self.flags_result = flags_result
        self.flags_in = flags_in
        self.addr = addr
        self.store_value = store_value
        self.taken = taken
        self.next_pc = next_pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynInst(seq={self.seq}, pc={self.pc}, uop={self.uop}, result={self.result}, "
            f"taken={self.taken}, next_pc={self.next_pc})"
        )


@dataclass
class TraceStatistics:
    """Aggregate statistics over a dynamic trace, used to characterise workloads."""

    total: int = 0
    per_class: dict[OpClass, int] = field(default_factory=dict)
    branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    vp_eligible: int = 0
    distinct_pcs: int = 0
    distinct_load_addresses: int = 0

    @property
    def branch_ratio(self) -> float:
        """Fraction of dynamic µ-ops that are control-flow."""
        return self.branches / self.total if self.total else 0.0

    @property
    def memory_ratio(self) -> float:
        """Fraction of dynamic µ-ops that access memory."""
        return (self.loads + self.stores) / self.total if self.total else 0.0

    @property
    def vp_eligible_ratio(self) -> float:
        """Fraction of dynamic µ-ops eligible for value prediction."""
        return self.vp_eligible / self.total if self.total else 0.0

    def class_ratio(self, opclass: OpClass) -> float:
        """Fraction of dynamic µ-ops belonging to ``opclass``."""
        return self.per_class.get(opclass, 0) / self.total if self.total else 0.0


def characterize(trace: Iterable[DynInst]) -> TraceStatistics:
    """Compute :class:`TraceStatistics` over ``trace``."""
    stats = TraceStatistics()
    pcs: set[int] = set()
    load_addrs: set[int] = set()
    for inst in trace:
        stats.total += 1
        opclass = inst.uop.opclass
        stats.per_class[opclass] = stats.per_class.get(opclass, 0) + 1
        pcs.add(inst.pc)
        if inst.uop.is_branch:
            stats.branches += 1
            if inst.taken:
                stats.taken_branches += 1
        if inst.uop.is_load:
            stats.loads += 1
            if inst.addr is not None:
                load_addrs.add(inst.addr)
        if inst.uop.is_store:
            stats.stores += 1
        if inst.uop.vp_eligible:
            stats.vp_eligible += 1
    stats.distinct_pcs = len(pcs)
    stats.distinct_load_addresses = len(load_addrs)
    return stats


def take(trace: Iterator[DynInst], count: int) -> list[DynInst]:
    """Materialise up to ``count`` dynamic instructions from ``trace``."""
    out: list[DynInst] = []
    for inst in trace:
        out.append(inst)
        if len(out) >= count:
            break
    return out
