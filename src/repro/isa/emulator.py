"""Architectural (functional) emulator.

The emulator executes a resolved :class:`~repro.isa.program.Program` at the
architectural level and produces the committed µ-op stream as
:class:`~repro.isa.trace.DynInst` records.  All values are 64-bit unsigned integers with
wrap-around semantics; "floating-point" µ-ops operate on the same value domain but use
distinct arithmetic so that FP-heavy kernels exhibit their own value locality patterns.

Memory is a sparse word-granular store.  Addresses not written before being read return
a deterministic pseudo-random value derived from the address, so that loads from
untouched memory carry low value-predictability (mirroring pointer-chasing codes) while
explicitly initialised arrays behave as the kernel dictates.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import EmulationError
from repro.isa import registers as regs
from repro.isa.flags import (
    MASK64,
    SIGN_BIT,
    ZF,
    SF,
    PF,
    CF,
    OF,
    add_flags,
    flags_from_result,
    logic_flags,
    sub_flags,
)
from repro.isa.opcode import Opcode
from repro.isa.program import Program
from repro.isa.trace import DynInst

#: Multiplier used to synthesise the contents of untouched memory locations.
_UNINITIALISED_MEMORY_MIX = 0x9E3779B97F4A7C15

#: Static PC value meaning "the program has fallen off its end".
HALT_PC = -1


def _default_memory_value(address: int) -> int:
    """Deterministic pseudo-random content of an untouched memory word.

    Uses a splitmix64-style finaliser so that *all* bits (including the low bits read by
    data-dependent branches) look random even for aligned addresses.
    """
    z = (address + _UNINITIALISED_MEMORY_MIX) & MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return (z ^ (z >> 31)) & MASK64


class ArchState:
    """Architectural machine state: registers, memory and the shadow call stack."""

    __slots__ = ("regs", "memory", "call_stack")

    def __init__(self) -> None:
        self.regs: list[int] = [0] * regs.NUM_ARCH_REGS
        self.memory: dict[int, int] = {}
        self.call_stack: list[int] = []

    def read_reg(self, reg: int) -> int:
        """Architectural value of register ``reg``."""
        return self.regs[reg]

    def write_reg(self, reg: int, value: int) -> None:
        """Write ``value`` (wrapped to 64 bits) to register ``reg``."""
        self.regs[reg] = value & MASK64

    def read_mem(self, address: int) -> int:
        """Word-granular memory read (untouched words return a deterministic pattern)."""
        value = self.memory.get(address)
        if value is None:
            return _default_memory_value(address)
        return value

    def write_mem(self, address: int, value: int) -> None:
        """Word-granular memory write."""
        self.memory[address] = value & MASK64

    def initialise_array(self, base: int, values: list[int], stride: int = 8) -> None:
        """Convenience helper: store ``values`` starting at ``base`` with ``stride``."""
        for index, value in enumerate(values):
            self.write_mem(base + index * stride, value)


class Emulator:
    """Step-wise architectural emulator producing the committed µ-op trace."""

    def __init__(
        self, program: Program, state: ArchState | None = None, on_inst=None
    ) -> None:
        if not program.resolved:
            program.resolve()
        self.program = program
        self.state = state if state is not None else ArchState()
        #: Optional per-µ-op observer (repro.obs): called with every committed
        #: ``DynInst``.  None (the default) keeps both execution loops hook-free
        #: beyond one ``is not None`` check.
        self.on_inst = on_inst
        self.pc = 0
        self.seq = 0
        self.halted = False
        # Hot-path views of the resolved program (µ-ops and immediates are indexed
        # once per executed µ-op; going through the Program accessors costs a method
        # call plus a resolution check each).
        self._uops = program.uops
        self._imms = program._imm_values
        self._length = len(program.uops)
        # Batched-decode table for run_batch, built on first use: one tuple of
        # pre-extracted static fields per PC, so the capture loop performs a
        # single list index + tuple unpack per µ-op instead of re-reading µ-op
        # attributes (pure memoisation of the same values step() reads).
        self._decode_table: list[tuple] | None = None

    # ------------------------------------------------------------------ helpers
    def _branch_condition(self, opcode: Opcode, flags: int) -> bool:
        if opcode is Opcode.BEQ:
            return bool(flags & ZF)
        if opcode is Opcode.BNE:
            return not flags & ZF
        if opcode is Opcode.BLT:
            return bool(flags & SF) != bool(flags & OF)
        if opcode is Opcode.BGE:
            return bool(flags & SF) == bool(flags & OF)
        if opcode is Opcode.BGT:
            return not flags & ZF and bool(flags & SF) == bool(flags & OF)
        if opcode is Opcode.BLE:
            return bool(flags & ZF) or bool(flags & SF) != bool(flags & OF)
        if opcode is Opcode.BCS:
            return bool(flags & CF)
        if opcode is Opcode.BVS:
            return bool(flags & OF)
        raise EmulationError(f"not a conditional branch: {opcode}")

    # ------------------------------------------------------------------ stepping
    def step(self) -> DynInst | None:
        """Execute one µ-op and return its dynamic record, or ``None`` once halted."""
        if self.halted:
            return None
        pc = self.pc
        if not 0 <= pc < self._length:
            self.halted = True
            return None

        program = self.program
        state = self.state
        arch_regs = state.regs
        uop = self._uops[pc]
        opcode = uop.opcode
        imm = self._imms[pc]

        srcs = uop.srcs
        src_values = tuple(arch_regs[s] for s in srcs)
        result: int | None = None
        flags_result: int | None = None
        flags_in: int | None = None
        addr: int | None = None
        store_value: int | None = None
        taken = False
        next_pc = pc + 1

        a = src_values[0] if src_values else 0
        b = src_values[1] if len(src_values) > 1 else (imm if imm is not None else 0)

        if opcode is Opcode.ADD:
            result = (a + b) & MASK64
            if uop.sets_flags:
                flags_result = add_flags(a, b)
        elif opcode is Opcode.SUB:
            result = (a - b) & MASK64
            if uop.sets_flags:
                flags_result = sub_flags(a, b)
        elif opcode is Opcode.AND:
            result = a & b
            if uop.sets_flags:
                flags_result = logic_flags(result)
        elif opcode is Opcode.OR:
            result = a | b
            if uop.sets_flags:
                flags_result = logic_flags(result)
        elif opcode is Opcode.XOR:
            result = a ^ b
            if uop.sets_flags:
                flags_result = logic_flags(result)
        elif opcode is Opcode.SHL:
            result = (a << (b & 63)) & MASK64
            if uop.sets_flags:
                flags_result = logic_flags(result)
        elif opcode is Opcode.SHR:
            result = (a & MASK64) >> (b & 63)
            if uop.sets_flags:
                flags_result = logic_flags(result)
        elif opcode is Opcode.MOV:
            result = a
            if uop.sets_flags:
                flags_result = flags_from_result(result)
        elif opcode is Opcode.MOVI:
            result = (imm if imm is not None else 0) & MASK64
            if uop.sets_flags:
                flags_result = flags_from_result(result)
        elif opcode is Opcode.CMP:
            flags_result = sub_flags(a, b)
        elif opcode is Opcode.NOT:
            result = (~a) & MASK64
            if uop.sets_flags:
                flags_result = logic_flags(result)
        elif opcode is Opcode.NEG:
            result = (-a) & MASK64
            if uop.sets_flags:
                flags_result = sub_flags(0, a)
        elif opcode is Opcode.MIN:
            result = min(a, b)
            if uop.sets_flags:
                flags_result = flags_from_result(result)
        elif opcode is Opcode.MAX:
            result = max(a, b)
            if uop.sets_flags:
                flags_result = flags_from_result(result)
        elif opcode is Opcode.MUL:
            result = (a * b) & MASK64
            if uop.sets_flags:
                flags_result = flags_from_result(result)
        elif opcode is Opcode.DIV:
            result = (a // b) & MASK64 if b else MASK64
            if uop.sets_flags:
                flags_result = flags_from_result(result)
        elif opcode is Opcode.MOD:
            result = (a % b) & MASK64 if b else 0
            if uop.sets_flags:
                flags_result = flags_from_result(result)
        elif opcode is Opcode.FADD:
            result = (a + b) & MASK64
        elif opcode is Opcode.FSUB:
            result = (a - b) & MASK64
        elif opcode in (Opcode.FMOV, Opcode.FCVT):
            result = a
        elif opcode is Opcode.FMUL:
            result = (a * b) & MASK64
        elif opcode is Opcode.FMA:
            c = src_values[2] if len(src_values) > 2 else 0
            result = (a * b + c) & MASK64
        elif opcode is Opcode.FDIV:
            result = (a // b) & MASK64 if b else MASK64
        elif opcode is Opcode.FSQRT:
            result = int((a & MASK64) ** 0.5) & MASK64
        elif opcode in (Opcode.LD, Opcode.FLD):
            addr = (a + (imm if imm is not None else 0)) & MASK64
            result = state.read_mem(addr)
        elif opcode in (Opcode.ST, Opcode.FST):
            addr = (a + (imm if imm is not None else 0)) & MASK64
            store_value = src_values[1] if len(src_values) > 1 else 0
            state.write_mem(addr, store_value)
        elif uop.is_conditional_branch:
            flags_in = arch_regs[regs.FLAGS_REG]
            taken = self._branch_condition(opcode, flags_in)
            target = program.target_of(pc)
            if target is None:
                raise EmulationError(f"conditional branch at pc={pc} has no target")
            next_pc = target if taken else pc + 1
        elif opcode is Opcode.JMP:
            target = program.target_of(pc)
            if target is None:
                raise EmulationError(f"jump at pc={pc} has no target")
            taken = True
            next_pc = target
        elif opcode is Opcode.JMPI:
            taken = True
            next_pc = a & MASK64
            if not 0 <= next_pc < len(program):
                raise EmulationError(f"indirect jump at pc={pc} targets invalid pc {next_pc}")
        elif opcode is Opcode.CALL:
            target = program.target_of(pc)
            if target is None:
                raise EmulationError(f"call at pc={pc} has no target")
            state.call_stack.append(pc + 1)
            taken = True
            next_pc = target
        elif opcode is Opcode.RET:
            taken = True
            if state.call_stack:
                next_pc = state.call_stack.pop()
            else:
                next_pc = HALT_PC
        elif opcode is Opcode.NOP:
            pass
        else:  # pragma: no cover - defensive, all opcodes are handled above
            raise EmulationError(f"unimplemented opcode {opcode}")

        if result is not None and uop.dst is not None:
            arch_regs[uop.dst] = result & MASK64
        if flags_result is not None:
            arch_regs[regs.FLAGS_REG] = flags_result & MASK64

        inst = DynInst(
            self.seq,
            pc,
            uop,
            src_values,
            result,
            flags_result,
            flags_in,
            addr,
            store_value,
            taken,
            next_pc,
        )
        self.seq += 1
        if next_pc == HALT_PC or not 0 <= next_pc < self._length:
            self.halted = True
            self.pc = HALT_PC
        else:
            self.pc = next_pc
        if self.on_inst is not None:
            self.on_inst(inst)
        return inst

    def run(self, max_uops: int) -> Iterator[DynInst]:
        """Yield up to ``max_uops`` dynamic µ-ops (stops early if the program halts)."""
        produced = 0
        while produced < max_uops:
            inst = self.step()
            if inst is None:
                break
            produced += 1
            yield inst

    # ------------------------------------------------------------------ batched capture
    def _build_decode_table(self) -> list[tuple]:
        """Pre-extract the static per-PC fields :meth:`step` reads per dynamic µ-op.

        Each slot holds ``(uop, opcode, sources, arity, dst, sets_flags, imm,
        imm_or_zero, is_cond_branch, target)`` — pure memoisation; the values are
        exactly what ``step`` would re-read through the µ-op on every execution.
        """
        program = self.program
        table: list[tuple] = []
        for pc, uop in enumerate(self._uops):
            imm = self._imms[pc]
            table.append(
                (
                    uop,
                    uop.opcode,
                    uop.srcs,
                    len(uop.srcs),
                    uop.dst,
                    uop.sets_flags,
                    imm,
                    imm if imm is not None else 0,
                    uop.is_conditional_branch,
                    program.target_of(pc),
                )
            )
        self._decode_table = table
        return table

    def run_batch(self, max_uops: int) -> list[DynInst]:
        """Execute up to ``max_uops`` µ-ops and return their dynamic records.

        The capture fast path: one specialised loop over the batched-decode
        table with the hot machine state (pc, seq, registers, memory) in locals,
        bit-identical to ``list(self.run(max_uops))`` (``step`` remains the
        reference implementation and the unit suite compares the two).
        """
        out: list[DynInst] = []
        if self.halted:
            return out
        decode = self._decode_table
        if decode is None:
            decode = self._build_decode_table()
        state = self.state
        arch_regs = state.regs
        memory = state.memory
        call_stack = state.call_stack
        flags_index = regs.FLAGS_REG
        length = self._length
        pc = self.pc
        seq = self.seq
        append = out.append
        halt_pc = HALT_PC
        on_inst = self.on_inst
        while len(out) < max_uops:
            if not 0 <= pc < length:
                self.halted = True
                break
            (
                uop,
                opcode,
                sources,
                arity,
                dst,
                sets_flags,
                imm,
                imm_or_zero,
                is_cond_branch,
                target,
            ) = decode[pc]

            result: int | None = None
            flags_result: int | None = None
            flags_in: int | None = None
            addr: int | None = None
            store_value: int | None = None
            taken = False
            next_pc = pc + 1

            if arity == 0:
                src_values: tuple[int, ...] = ()
                a = 0
                b = imm_or_zero
            elif arity == 1:
                a = arch_regs[sources[0]]
                src_values = (a,)
                b = imm_or_zero
            elif arity == 2:
                a = arch_regs[sources[0]]
                b = arch_regs[sources[1]]
                src_values = (a, b)
            else:
                src_values = tuple(arch_regs[source] for source in sources)
                a = src_values[0]
                b = src_values[1]

            if opcode is Opcode.ADD:
                result = (a + b) & MASK64
                if sets_flags:
                    flags_result = add_flags(a, b)
            elif opcode in (Opcode.LD, Opcode.FLD):
                addr = (a + imm_or_zero) & MASK64
                result = memory.get(addr)
                if result is None:
                    result = _default_memory_value(addr)
            elif opcode in (Opcode.ST, Opcode.FST):
                addr = (a + imm_or_zero) & MASK64
                store_value = b if arity > 1 else 0
                memory[addr] = store_value & MASK64
            elif is_cond_branch:
                flags_in = arch_regs[flags_index]
                taken = self._branch_condition(opcode, flags_in)
                if target is None:
                    raise EmulationError(f"conditional branch at pc={pc} has no target")
                next_pc = target if taken else pc + 1
            elif opcode is Opcode.SUB:
                result = (a - b) & MASK64
                if sets_flags:
                    flags_result = sub_flags(a, b)
            elif opcode is Opcode.CMP:
                flags_result = sub_flags(a, b)
            elif opcode is Opcode.MOV:
                result = a
                if sets_flags:
                    flags_result = flags_from_result(result)
            elif opcode is Opcode.MOVI:
                result = imm_or_zero & MASK64
                if sets_flags:
                    flags_result = flags_from_result(result)
            elif opcode is Opcode.AND:
                result = a & b
                if sets_flags:
                    flags_result = logic_flags(result)
            elif opcode is Opcode.OR:
                result = a | b
                if sets_flags:
                    flags_result = logic_flags(result)
            elif opcode is Opcode.XOR:
                result = a ^ b
                if sets_flags:
                    flags_result = logic_flags(result)
            elif opcode is Opcode.SHL:
                result = (a << (b & 63)) & MASK64
                if sets_flags:
                    flags_result = logic_flags(result)
            elif opcode is Opcode.SHR:
                result = (a & MASK64) >> (b & 63)
                if sets_flags:
                    flags_result = logic_flags(result)
            elif opcode is Opcode.NOT:
                result = (~a) & MASK64
                if sets_flags:
                    flags_result = logic_flags(result)
            elif opcode is Opcode.NEG:
                result = (-a) & MASK64
                if sets_flags:
                    flags_result = sub_flags(0, a)
            elif opcode is Opcode.MIN:
                result = min(a, b)
                if sets_flags:
                    flags_result = flags_from_result(result)
            elif opcode is Opcode.MAX:
                result = max(a, b)
                if sets_flags:
                    flags_result = flags_from_result(result)
            elif opcode is Opcode.MUL:
                result = (a * b) & MASK64
                if sets_flags:
                    flags_result = flags_from_result(result)
            elif opcode is Opcode.DIV:
                result = (a // b) & MASK64 if b else MASK64
                if sets_flags:
                    flags_result = flags_from_result(result)
            elif opcode is Opcode.MOD:
                result = (a % b) & MASK64 if b else 0
                if sets_flags:
                    flags_result = flags_from_result(result)
            elif opcode is Opcode.FADD:
                result = (a + b) & MASK64
            elif opcode is Opcode.FSUB:
                result = (a - b) & MASK64
            elif opcode in (Opcode.FMOV, Opcode.FCVT):
                result = a
            elif opcode is Opcode.FMUL:
                result = (a * b) & MASK64
            elif opcode is Opcode.FMA:
                c = src_values[2] if arity > 2 else 0
                result = (a * b + c) & MASK64
            elif opcode is Opcode.FDIV:
                result = (a // b) & MASK64 if b else MASK64
            elif opcode is Opcode.FSQRT:
                result = int((a & MASK64) ** 0.5) & MASK64
            elif opcode is Opcode.JMP:
                if target is None:
                    raise EmulationError(f"jump at pc={pc} has no target")
                taken = True
                next_pc = target
            elif opcode is Opcode.JMPI:
                taken = True
                next_pc = a & MASK64
                if not 0 <= next_pc < length:
                    raise EmulationError(
                        f"indirect jump at pc={pc} targets invalid pc {next_pc}"
                    )
            elif opcode is Opcode.CALL:
                if target is None:
                    raise EmulationError(f"call at pc={pc} has no target")
                call_stack.append(pc + 1)
                taken = True
                next_pc = target
            elif opcode is Opcode.RET:
                taken = True
                if call_stack:
                    next_pc = call_stack.pop()
                else:
                    next_pc = halt_pc
            elif opcode is Opcode.NOP:
                pass
            else:  # pragma: no cover - defensive, all opcodes are handled above
                raise EmulationError(f"unimplemented opcode {opcode}")

            if result is not None and dst is not None:
                arch_regs[dst] = result & MASK64
            if flags_result is not None:
                arch_regs[flags_index] = flags_result & MASK64

            inst = DynInst(
                seq,
                pc,
                uop,
                src_values,
                result,
                flags_result,
                flags_in,
                addr,
                store_value,
                taken,
                next_pc,
            )
            append(inst)
            if on_inst is not None:
                on_inst(inst)
            seq += 1
            if next_pc == halt_pc or not 0 <= next_pc < length:
                self.halted = True
                pc = halt_pc
                break
            pc = next_pc
        self.pc = pc
        self.seq = seq
        return out


def generate_trace(
    program: Program, max_uops: int, state: ArchState | None = None
) -> Iterator[DynInst]:
    """Convenience wrapper: lazily emit the committed trace of ``program``."""
    return Emulator(program, state=state).run(max_uops)


def collect_trace(
    program: Program, max_uops: int, state: ArchState | None = None
) -> list[DynInst]:
    """Materialise the committed trace of ``program`` (at most ``max_uops`` µ-ops)."""
    return list(generate_trace(program, max_uops, state=state))
