"""Static micro-operations (µ-ops).

A :class:`MicroOp` is one element of a :class:`~repro.isa.program.Program`.  It is a
*static* instruction: the architectural emulator turns it into dynamic instances
(:class:`~repro.isa.trace.DynInst`) every time control flow reaches it.

The µ-op model follows the paper's conventions:

* at most one destination register, plus an optional implicit write of the flags
  register (``sets_flags``);
* value-prediction eligibility is "produces a result of 64 bits or less that can be read
  by a subsequent µ-op" (Section 4.2), i.e. every µ-op with a destination register;
* loads and stores compute their address as ``base register + immediate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.isa import registers as regs
from repro.isa.opcode import (
    Opcode,
    OpClass,
    is_branch,
    is_conditional_branch,
    is_load,
    is_memory,
    is_single_cycle_alu,
    is_store,
    latency_of,
    opclass_of,
)

#: Bits of :attr:`MicroOp.hot_mask` — the one-read classification bitmask used by
#: the simulator's per-committed-µ-op fast paths.
HOT_BRANCH = 1
HOT_COND_BRANCH = 2
HOT_LOAD = 4
HOT_STORE = 8
HOT_MEMORY = 16
HOT_VP_ELIGIBLE = 32
HOT_DST = 64
HOT_SETS_FLAGS = 128
HOT_NOP = 256

#: Opcodes that take a control-flow target label.
_TARGET_OPCODES = frozenset(
    {
        Opcode.BEQ,
        Opcode.BNE,
        Opcode.BLT,
        Opcode.BGE,
        Opcode.BGT,
        Opcode.BLE,
        Opcode.BCS,
        Opcode.BVS,
        Opcode.JMP,
        Opcode.CALL,
    }
)


@dataclass(frozen=True)
class MicroOp:
    """A static micro-operation.

    Parameters
    ----------
    opcode:
        The operation to perform.
    dst:
        Destination register id, or ``None`` for µ-ops that do not produce a register
        result (stores, branches, ``nop``, ``cmp``).
    srcs:
        Source register ids, in operand order.  Conditional branches implicitly source
        the flags register; loads source their base register; stores source
        ``(base, data)``.
    imm:
        Immediate operand (second ALU operand, address offset, or ``movi`` value).
    target:
        Control-flow target label for direct branches/jumps/calls.  Resolved to a static
        PC by :meth:`repro.isa.program.Program.resolve`.
    sets_flags:
        Whether this µ-op writes the architectural flags register.
    imm_label:
        If set, the immediate is the static PC of this label (used to materialise
        indirect-branch targets); resolved together with ``target``.
    """

    opcode: Opcode
    dst: int | None = None
    srcs: tuple[int, ...] = ()
    imm: int | None = None
    target: str | None = None
    sets_flags: bool = False
    imm_label: str | None = None
    comment: str = field(default="", compare=False)

    # Derived classification (``opclass``, ``latency``, ``is_branch``,
    # ``is_conditional_branch``, ``is_load``, ``is_store``, ``is_memory``,
    # ``is_single_cycle_alu``, ``reads_flags``, ``writes_flags``, ``vp_eligible``) is
    # precomputed once per *static* µ-op in ``__post_init__`` as plain instance
    # attributes — deliberately not dataclass fields nor properties, so they do not
    # participate in equality/hashing yet cost a single attribute load on the
    # simulator's per-dynamic-instance hot paths.

    def __post_init__(self) -> None:
        for reg in self.srcs:
            if not regs.is_valid_reg(reg):
                raise ProgramError(f"{self.opcode.value}: invalid source register id {reg}")
        if self.dst is not None and not regs.is_valid_reg(self.dst):
            raise ProgramError(f"{self.opcode.value}: invalid destination register id {self.dst}")
        if self.opcode in _TARGET_OPCODES and self.target is None:
            raise ProgramError(f"{self.opcode.value}: missing branch target label")
        if self.opcode not in _TARGET_OPCODES and self.target is not None:
            raise ProgramError(f"{self.opcode.value}: unexpected branch target label")
        if self.opcode is Opcode.CMP and not self.sets_flags:
            object.__setattr__(self, "sets_flags", True)
        opclass = opclass_of(self.opcode)
        if self.sets_flags and opclass not in (
            OpClass.INT_ALU,
            OpClass.INT_MUL,
            OpClass.INT_DIV,
        ):
            raise ProgramError(f"{self.opcode.value}: only integer µ-ops may set flags")
        # Precompute the per-static-µ-op classification consumed by the hot loops.
        set_attr = object.__setattr__
        set_attr(self, "opclass", opclass)
        set_attr(self, "latency", latency_of(self.opcode))
        set_attr(self, "is_branch", is_branch(self.opcode))
        set_attr(self, "is_conditional_branch", is_conditional_branch(self.opcode))
        set_attr(self, "is_load", is_load(self.opcode))
        set_attr(self, "is_store", is_store(self.opcode))
        set_attr(self, "is_memory", is_memory(self.opcode))
        set_attr(self, "is_single_cycle_alu", is_single_cycle_alu(self.opcode))
        set_attr(self, "reads_flags", self.is_conditional_branch)
        set_attr(self, "writes_flags", self.sets_flags)
        set_attr(self, "vp_eligible", self.dst is not None)
        sources = self.srcs + (regs.FLAGS_REG,) if self.reads_flags else self.srcs
        set_attr(self, "_source_registers", sources)
        destinations: tuple[int, ...] = ()
        if self.dst is not None:
            destinations += (self.dst,)
        if self.writes_flags:
            destinations += (regs.FLAGS_REG,)
        set_attr(self, "_destination_registers", destinations)
        # Public precomputed aliases for the simulator's hot loops (one attribute
        # load instead of a method call per dynamic use).
        set_attr(self, "src_regs", sources)
        set_attr(self, "dst_regs", destinations)
        # One-read classification bitmask for the per-committed-µ-op paths (see
        # HOT_* constants below): the commit loop reads a single attribute and
        # tests integer bits instead of up to eight attribute loads.
        mask = 0
        if self.is_branch:
            mask |= HOT_BRANCH
        if self.is_conditional_branch:
            mask |= HOT_COND_BRANCH
        if self.is_load:
            mask |= HOT_LOAD
        if self.is_store:
            mask |= HOT_STORE
        if self.is_memory:
            mask |= HOT_MEMORY
        if self.vp_eligible:
            mask |= HOT_VP_ELIGIBLE
        if self.dst is not None:
            mask |= HOT_DST
        if self.sets_flags:
            mask |= HOT_SETS_FLAGS
        if opclass is OpClass.NOP:
            mask |= HOT_NOP
        set_attr(self, "hot_mask", mask)

    # ------------------------------------------------------------------ helpers
    def source_registers(self) -> tuple[int, ...]:
        """All architectural registers read by this µ-op, including implicit flags."""
        return self._source_registers

    def destination_registers(self) -> tuple[int, ...]:
        """All architectural registers written by this µ-op, including implicit flags."""
        return self._destination_registers

    def __str__(self) -> str:
        parts = [self.opcode.value]
        if self.dst is not None:
            parts.append(regs.reg_name(self.dst))
        parts.extend(regs.reg_name(s) for s in self.srcs)
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.imm_label is not None:
            parts.append(f"#@{self.imm_label}")
        if self.target is not None:
            parts.append(f"->{self.target}")
        if self.sets_flags:
            parts.append("[flags]")
        return " ".join(parts)
