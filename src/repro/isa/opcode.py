"""Opcodes, operation classes and execution latencies of the reproduction ISA.

The ISA deliberately mirrors the µ-op classes and latencies of the paper's baseline
machine (Table 1):

=================  ==========  ====================================================
Operation class    Latency     Notes
=================  ==========  ====================================================
``INT_ALU``        1 cycle     EOLE's Early/Late-Execution candidates
``INT_MUL``        3 cycles    pipelined
``INT_DIV``        25 cycles   not pipelined
``FP_ALU``         3 cycles    pipelined
``FP_MUL``         5 cycles    pipelined
``FP_DIV``         10 cycles   not pipelined
``LOAD``           cache       latency comes from the memory hierarchy model
``STORE``          1 cycle     address generation; data written at commit
``BR_COND`` etc.   1 cycle     resolved on an ALU port
=================  ==========  ====================================================
"""

from __future__ import annotations

from enum import Enum, IntEnum, unique


@unique
class OpClass(IntEnum):
    """Coarse operation class used for scheduling, FU selection and EOLE eligibility."""

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    FP_ALU = 3
    FP_MUL = 4
    FP_DIV = 5
    LOAD = 6
    STORE = 7
    BR_COND = 8
    BR_DIRECT = 9
    BR_INDIRECT = 10
    CALL = 11
    RET = 12
    NOP = 13


#: Fixed execution latency per operation class, in cycles.  ``LOAD`` is listed with its
#: address-generation latency only; the cache hierarchy adds the access latency.
OPCLASS_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 25,
    OpClass.FP_ALU: 3,
    OpClass.FP_MUL: 5,
    OpClass.FP_DIV: 10,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BR_COND: 1,
    OpClass.BR_DIRECT: 1,
    OpClass.BR_INDIRECT: 1,
    OpClass.CALL: 1,
    OpClass.RET: 1,
    OpClass.NOP: 1,
}

#: Operation classes whose functional unit is not pipelined (Table 1: MulDiv 3c/25c*,
#: FPMulDiv 5c/10c* — the division latencies are marked "not pipelined").
UNPIPELINED_CLASSES: frozenset[OpClass] = frozenset({OpClass.INT_DIV, OpClass.FP_DIV})

#: Classes that are single-cycle ALU operations — the only ones eligible for Early and
#: Late Execution in the paper (Sections 3.2 and 3.3).
SINGLE_CYCLE_ALU_CLASSES: frozenset[OpClass] = frozenset({OpClass.INT_ALU})

#: Branch classes.
BRANCH_CLASSES: frozenset[OpClass] = frozenset(
    {OpClass.BR_COND, OpClass.BR_DIRECT, OpClass.BR_INDIRECT, OpClass.CALL, OpClass.RET}
)

#: Memory classes.
MEMORY_CLASSES: frozenset[OpClass] = frozenset({OpClass.LOAD, OpClass.STORE})


@unique
class Opcode(Enum):
    """Concrete µ-ops of the reproduction ISA."""

    # Integer single-cycle ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MOV = "mov"
    MOVI = "movi"
    CMP = "cmp"
    NOT = "not"
    NEG = "neg"
    MIN = "min"
    MAX = "max"
    # Integer multi-cycle.
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    # Floating-point (modelled over the integer value domain, see isa/emulator.py).
    FADD = "fadd"
    FSUB = "fsub"
    FMOV = "fmov"
    FCVT = "fcvt"
    FMUL = "fmul"
    FMA = "fma"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    # Memory.
    LD = "ld"
    FLD = "fld"
    ST = "st"
    FST = "fst"
    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BGT = "bgt"
    BLE = "ble"
    BCS = "bcs"
    BVS = "bvs"
    JMP = "jmp"
    JMPI = "jmpi"
    CALL = "call"
    RET = "ret"
    # Miscellaneous.
    NOP = "nop"


#: Map from opcode to its operation class.
OPCODE_CLASS: dict[Opcode, OpClass] = {
    Opcode.ADD: OpClass.INT_ALU,
    Opcode.SUB: OpClass.INT_ALU,
    Opcode.AND: OpClass.INT_ALU,
    Opcode.OR: OpClass.INT_ALU,
    Opcode.XOR: OpClass.INT_ALU,
    Opcode.SHL: OpClass.INT_ALU,
    Opcode.SHR: OpClass.INT_ALU,
    Opcode.MOV: OpClass.INT_ALU,
    Opcode.MOVI: OpClass.INT_ALU,
    Opcode.CMP: OpClass.INT_ALU,
    Opcode.NOT: OpClass.INT_ALU,
    Opcode.NEG: OpClass.INT_ALU,
    Opcode.MIN: OpClass.INT_ALU,
    Opcode.MAX: OpClass.INT_ALU,
    Opcode.MUL: OpClass.INT_MUL,
    Opcode.DIV: OpClass.INT_DIV,
    Opcode.MOD: OpClass.INT_DIV,
    Opcode.FADD: OpClass.FP_ALU,
    Opcode.FSUB: OpClass.FP_ALU,
    Opcode.FMOV: OpClass.FP_ALU,
    Opcode.FCVT: OpClass.FP_ALU,
    Opcode.FMUL: OpClass.FP_MUL,
    Opcode.FMA: OpClass.FP_MUL,
    Opcode.FDIV: OpClass.FP_DIV,
    Opcode.FSQRT: OpClass.FP_DIV,
    Opcode.LD: OpClass.LOAD,
    Opcode.FLD: OpClass.LOAD,
    Opcode.ST: OpClass.STORE,
    Opcode.FST: OpClass.STORE,
    Opcode.BEQ: OpClass.BR_COND,
    Opcode.BNE: OpClass.BR_COND,
    Opcode.BLT: OpClass.BR_COND,
    Opcode.BGE: OpClass.BR_COND,
    Opcode.BGT: OpClass.BR_COND,
    Opcode.BLE: OpClass.BR_COND,
    Opcode.BCS: OpClass.BR_COND,
    Opcode.BVS: OpClass.BR_COND,
    Opcode.JMP: OpClass.BR_DIRECT,
    Opcode.JMPI: OpClass.BR_INDIRECT,
    Opcode.CALL: OpClass.CALL,
    Opcode.RET: OpClass.RET,
    Opcode.NOP: OpClass.NOP,
}

#: Conditional branch opcodes that depend on flags bits that cannot be derived exactly
#: from a predicted result (Carry / Overflow, Section 4.2): a branch of this kind that
#: consumes approximated flags can be mis-resolved even when the value prediction of the
#: flag producer is numerically correct.
APPROXIMATE_FLAG_BRANCHES: frozenset[Opcode] = frozenset({Opcode.BCS, Opcode.BVS})


def opclass_of(opcode: Opcode) -> OpClass:
    """Return the :class:`OpClass` of ``opcode``."""
    return OPCODE_CLASS[opcode]


def latency_of(opcode: Opcode) -> int:
    """Return the fixed execution latency of ``opcode`` (loads: address generation only)."""
    return OPCLASS_LATENCY[OPCODE_CLASS[opcode]]


def is_branch(opcode: Opcode) -> bool:
    """True if ``opcode`` is any kind of control-flow instruction."""
    return OPCODE_CLASS[opcode] in BRANCH_CLASSES


def is_conditional_branch(opcode: Opcode) -> bool:
    """True if ``opcode`` is a conditional branch."""
    return OPCODE_CLASS[opcode] is OpClass.BR_COND


def is_memory(opcode: Opcode) -> bool:
    """True if ``opcode`` accesses memory."""
    return OPCODE_CLASS[opcode] in MEMORY_CLASSES


def is_load(opcode: Opcode) -> bool:
    """True if ``opcode`` is a load."""
    return OPCODE_CLASS[opcode] is OpClass.LOAD


def is_store(opcode: Opcode) -> bool:
    """True if ``opcode`` is a store."""
    return OPCODE_CLASS[opcode] is OpClass.STORE


def is_single_cycle_alu(opcode: Opcode) -> bool:
    """True if ``opcode`` is a single-cycle ALU operation (EE/LE candidate)."""
    return OPCODE_CLASS[opcode] in SINGLE_CYCLE_ALU_CLASSES
