"""Workload specifications: the knobs that shape a synthetic benchmark.

The paper evaluates 19 SPEC CPU2000/2006 programs (Table 3).  Those binaries (and the
gem5 checkpoints to run them) are not available here, so each program is replaced by a
synthetic analogue: a loop kernel whose *behavioural knobs* — value predictability,
instruction mix, branch behaviour, memory footprint, dependency structure — are chosen
to mimic what the paper reports for that program (IPC band, value-prediction benefit,
Early/Late-Execution coverage).  The knobs are collected in :class:`WorkloadSpec`;
:mod:`repro.workloads.kernels` turns a spec into an executable program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadSpec:
    """Per-iteration composition and memory behaviour of a synthetic kernel.

    All ``*_ops`` / ``*_loads`` / ``stores`` counts are per inner-loop iteration.
    Footprints are in 8-byte words and must be powers of two (they are used as masks).
    """

    name: str
    description: str = ""

    # The loop-carried critical chain.  Its length in cycles bounds the baseline IPC;
    # its predictable portion is what value prediction (and hence EOLE) collapses.
    chain_alu_ops: int = 4          # predictable single-cycle ops (accumulate constants)
    chain_unpred_ops: int = 0       # hash-walk steps: a second, unpredictable serial chain
    chain_fp_ops: int = 0           # predictable FP ops (3-cycle latency each)
    chain_loads: int = 0            # loads inside the chain (strided addresses)
    chain_values_predictable: bool = True   # whether the chain-load values are predictable
    chain_footprint_words: int = 1 << 10
    unpred_chain_footprint_words: int = 1 << 9  # footprint of the hash-walk chain (L1-resident)

    # Integer ALU behaviour.
    pred_chains: int = 2           # independent accumulator chains (stride-predictable)
    pred_chain_ops: int = 3        # dependent ops per chain
    invariant_alu_ops: int = 2     # ops whose result is identical every iteration
    immediate_alu_ops: int = 2     # movi + dependent ops (Early-Execution friendly)
    unpred_alu_ops: int = 2        # ops consuming load results (hard to predict)

    # Memory behaviour.
    strided_loads: int = 2
    strided_values_predictable: bool = True
    strided_footprint_words: int = 1 << 10
    random_loads: int = 0
    random_footprint_words: int = 1 << 16
    pointer_chase_loads: int = 0
    chase_footprint_words: int = 1 << 12
    stores: int = 1

    # Floating point / long latency.
    fp_chains: int = 0
    fp_chain_ops: int = 0
    fp_mul_ops: int = 0
    int_mul_ops: int = 0
    int_div_ops: int = 0

    # Control flow.
    data_dep_branches: int = 0     # branches on (mostly unpredictable) data
    pred_branches: int = 0         # extra well-behaved branches
    inner_loop_trip: int = 0       # 0 disables the inner loop
    calls: int = 0
    indirect_jump_targets: int = 0  # 0 disables the indirect-jump switch block

    # Mapping back to the paper.
    paper_benchmark: str = ""
    paper_ipc: float | None = None
    category: str = "INT"

    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        for attr in (
            "chain_alu_ops",
            "chain_unpred_ops",
            "chain_fp_ops",
            "chain_loads",
            "pred_chains",
            "pred_chain_ops",
            "invariant_alu_ops",
            "immediate_alu_ops",
            "unpred_alu_ops",
            "strided_loads",
            "random_loads",
            "pointer_chase_loads",
            "stores",
            "fp_chains",
            "fp_chain_ops",
            "fp_mul_ops",
            "int_mul_ops",
            "int_div_ops",
            "data_dep_branches",
            "pred_branches",
            "inner_loop_trip",
            "calls",
            "indirect_jump_targets",
        ):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{self.name}: {attr} must be non-negative")
        for attr in (
            "strided_footprint_words",
            "random_footprint_words",
            "chase_footprint_words",
            "chain_footprint_words",
            "unpred_chain_footprint_words",
        ):
            value = getattr(self, attr)
            if value <= 0 or value & (value - 1):
                raise ConfigurationError(f"{self.name}: {attr} must be a positive power of two")
        if self.category not in ("INT", "FP"):
            raise ConfigurationError(f"{self.name}: category must be INT or FP")
