"""The 19-benchmark synthetic suite mirroring Table 3 of the paper.

Each entry pairs a SPEC CPU2000/2006 program used in the paper with a synthetic
analogue whose behavioural knobs (see :class:`~repro.workloads.spec.WorkloadSpec`) are
chosen to land in the same qualitative regime: IPC band, value-prediction benefit,
Early/Late-Execution coverage, memory-boundedness and branch behaviour.  The mapping is
a *substitution*, documented in DESIGN.md §2 — per-benchmark absolute numbers are not
expected to match the paper, but the spread across the suite (which programs benefit
from VP/EOLE, which are insensitive, which are memory-bound) is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.isa.emulator import ArchState
from repro.isa.program import Program
from repro.workloads.kernels import build_program, make_arch_state
from repro.workloads.spec import WorkloadSpec


@dataclass
class Workload:
    """A runnable synthetic benchmark: spec + lazily built program + fresh state factory."""

    spec: WorkloadSpec
    _program: Program | None = field(default=None, repr=False)
    _case_labels: list[str] = field(default_factory=list, repr=False)

    @property
    def name(self) -> str:
        """Workload name (the SPEC analogue's short name)."""
        return self.spec.name

    @property
    def paper_benchmark(self) -> str:
        """The paper benchmark this workload stands in for (e.g. ``"429.mcf"``)."""
        return self.spec.paper_benchmark

    @property
    def program(self) -> Program:
        """The kernel program (built on first use, then cached)."""
        if self._program is None:
            self._program, self._case_labels = build_program(self.spec)
        return self._program

    def make_state(self) -> ArchState:
        """A fresh architectural state with the workload's memory arrays initialised.

        A new state must be used for every simulation run, because the emulator mutates
        memory and registers.
        """
        program = self.program  # ensure built so case labels exist
        return make_arch_state(self.spec, program, self._case_labels)


# --------------------------------------------------------------------------- the suite
_SPECS: list[WorkloadSpec] = [
    WorkloadSpec(
        name="gzip",
        paper_benchmark="164.gzip",
        paper_ipc=0.984,
        category="INT",
        description="LZ-style byte crunching: unpredictable load-fed chain, some branches",
        chain_alu_ops=2,
        chain_loads=2,
        chain_values_predictable=False,
        chain_footprint_words=1 << 13,
        chain_unpred_ops=5,
        unpred_chain_footprint_words=1 << 11,
        pred_chains=1,
        pred_chain_ops=2,
        invariant_alu_ops=1,
        immediate_alu_ops=2,
        unpred_alu_ops=2,
        strided_loads=1,
        strided_values_predictable=False,
        strided_footprint_words=1 << 13,
        stores=1,
        data_dep_branches=1,
        pred_branches=1,
    ),
    WorkloadSpec(
        name="wupwise",
        paper_benchmark="168.wupwise",
        paper_ipc=1.553,
        category="FP",
        description="FP accumulation chains with predictable operands: big VP benefit",
        chain_alu_ops=5,
        chain_fp_ops=6,
        chain_loads=1,
        chain_values_predictable=True,
        chain_unpred_ops=3,
        pred_chains=1,
        pred_chain_ops=2,
        invariant_alu_ops=2,
        immediate_alu_ops=2,
        unpred_alu_ops=1,
        strided_loads=1,
        strided_values_predictable=True,
        strided_footprint_words=1 << 12,
        stores=1,
        pred_branches=1,
    ),
    WorkloadSpec(
        name="applu",
        paper_benchmark="173.applu",
        paper_ipc=1.591,
        category="FP",
        description="Structured-grid sweeps: strided FP with predictable values",
        chain_alu_ops=7,
        chain_fp_ops=6,
        chain_loads=1,
        chain_values_predictable=True,
        chain_unpred_ops=3,
        pred_chains=2,
        pred_chain_ops=2,
        invariant_alu_ops=2,
        immediate_alu_ops=2,
        unpred_alu_ops=1,
        strided_loads=2,
        strided_values_predictable=True,
        strided_footprint_words=1 << 13,
        stores=2,
        fp_chains=1,
        fp_chain_ops=2,
        fp_mul_ops=1,
        pred_branches=1,
    ),
    WorkloadSpec(
        name="vpr",
        paper_benchmark="175.vpr",
        paper_ipc=1.326,
        category="INT",
        description="Place & route: hash-walk chain, moderate branches, moderate VP",
        chain_alu_ops=4,
        chain_loads=0,
        chain_unpred_ops=4,
        pred_chains=2,
        pred_chain_ops=2,
        invariant_alu_ops=2,
        immediate_alu_ops=2,
        unpred_alu_ops=2,
        strided_loads=1,
        strided_values_predictable=True,
        strided_footprint_words=1 << 12,
        random_loads=1,
        random_footprint_words=1 << 13,
        stores=1,
        data_dep_branches=1,
        pred_branches=1,
        calls=1,
    ),
    WorkloadSpec(
        name="art",
        paper_benchmark="179.art",
        paper_ipc=1.211,
        category="FP",
        description="Neural-net scan: highly regular, most of the chain predictable",
        chain_alu_ops=14,
        chain_fp_ops=4,
        chain_loads=1,
        chain_values_predictable=True,
        chain_unpred_ops=3,
        pred_chains=3,
        pred_chain_ops=2,
        invariant_alu_ops=3,
        immediate_alu_ops=3,
        unpred_alu_ops=1,
        strided_loads=2,
        strided_values_predictable=True,
        strided_footprint_words=1 << 14,
        stores=1,
        fp_chains=1,
        fp_chain_ops=2,
        pred_branches=2,
        inner_loop_trip=8,
    ),
    WorkloadSpec(
        name="crafty",
        paper_benchmark="186.crafty",
        paper_ipc=1.769,
        category="INT",
        description="Chess search: bit-twiddling on immediates, Early-Execution friendly",
        chain_alu_ops=5,
        chain_loads=1,
        chain_values_predictable=True,
        chain_footprint_words=1 << 10,
        chain_unpred_ops=5,
        pred_chains=1,
        pred_chain_ops=2,
        invariant_alu_ops=3,
        immediate_alu_ops=6,
        unpred_alu_ops=3,
        strided_loads=1,
        strided_values_predictable=False,
        strided_footprint_words=1 << 11,
        stores=1,
        data_dep_branches=1,
        pred_branches=2,
        calls=1,
    ),
    WorkloadSpec(
        name="parser",
        paper_benchmark="197.parser",
        paper_ipc=0.544,
        category="INT",
        description="Linked-structure walking with hard branches: low IPC, low coverage",
        chain_alu_ops=2,
        chain_unpred_ops=4,
        unpred_chain_footprint_words=1 << 12,
        pred_chains=1,
        pred_chain_ops=1,
        invariant_alu_ops=1,
        immediate_alu_ops=1,
        unpred_alu_ops=2,
        strided_loads=1,
        strided_values_predictable=False,
        strided_footprint_words=1 << 12,
        pointer_chase_loads=1,
        chase_footprint_words=1 << 15,
        stores=1,
        data_dep_branches=2,
        calls=1,
    ),
    WorkloadSpec(
        name="vortex",
        paper_benchmark="255.vortex",
        paper_ipc=1.781,
        category="INT",
        description="Object database: wide ILP, many calls and stores, issue-width hungry",
        chain_alu_ops=5,
        chain_loads=1,
        chain_values_predictable=True,
        chain_unpred_ops=4,
        pred_chains=3,
        pred_chain_ops=2,
        invariant_alu_ops=3,
        immediate_alu_ops=3,
        unpred_alu_ops=2,
        strided_loads=2,
        strided_values_predictable=True,
        strided_footprint_words=1 << 13,
        stores=3,
        pred_branches=2,
        calls=2,
    ),
    WorkloadSpec(
        name="bzip2",
        paper_benchmark="401.bzip2",
        paper_ipc=0.888,
        category="INT",
        description="Burrows-Wheeler: long predictable integer chains, notable VP benefit",
        chain_alu_ops=26,
        chain_loads=1,
        chain_values_predictable=True,
        chain_unpred_ops=5,
        pred_chains=1,
        pred_chain_ops=3,
        invariant_alu_ops=1,
        immediate_alu_ops=2,
        unpred_alu_ops=2,
        strided_loads=1,
        strided_values_predictable=False,
        strided_footprint_words=1 << 14,
        stores=1,
        data_dep_branches=1,
        pred_branches=1,
    ),
    WorkloadSpec(
        name="gcc",
        paper_benchmark="403.gcc",
        paper_ipc=1.055,
        category="INT",
        description="Compiler: branchy, call/indirect heavy, mixed predictability",
        chain_alu_ops=6,
        chain_loads=1,
        chain_values_predictable=True,
        chain_unpred_ops=3,
        pred_chains=1,
        pred_chain_ops=2,
        invariant_alu_ops=2,
        immediate_alu_ops=3,
        unpred_alu_ops=2,
        strided_loads=1,
        strided_values_predictable=True,
        strided_footprint_words=1 << 13,
        random_loads=1,
        random_footprint_words=1 << 14,
        stores=2,
        data_dep_branches=2,
        pred_branches=2,
        calls=2,
        indirect_jump_targets=4,
    ),
    WorkloadSpec(
        name="gamess",
        paper_benchmark="416.gamess",
        paper_ipc=1.929,
        category="FP",
        description="Quantum chemistry: high-IPC FP with immediate-fed integer glue",
        chain_alu_ops=4,
        chain_fp_ops=3,
        chain_values_predictable=True,
        chain_unpred_ops=4,
        pred_chains=2,
        pred_chain_ops=2,
        invariant_alu_ops=3,
        immediate_alu_ops=5,
        unpred_alu_ops=1,
        strided_loads=2,
        strided_values_predictable=True,
        strided_footprint_words=1 << 12,
        stores=1,
        fp_chains=1,
        fp_chain_ops=2,
        fp_mul_ops=2,
        pred_branches=1,
        inner_loop_trip=4,
    ),
    WorkloadSpec(
        name="mcf",
        paper_benchmark="429.mcf",
        paper_ipc=0.105,
        category="INT",
        description="Network simplex: serial pointer chasing over a DRAM-resident graph",
        chain_alu_ops=2,
        chain_unpred_ops=0,
        pred_chains=1,
        pred_chain_ops=2,
        invariant_alu_ops=1,
        immediate_alu_ops=1,
        unpred_alu_ops=2,
        strided_loads=0,
        pointer_chase_loads=2,
        chase_footprint_words=1 << 19,
        stores=1,
        data_dep_branches=2,
    ),
    WorkloadSpec(
        name="milc",
        paper_benchmark="433.milc",
        paper_ipc=0.459,
        category="FP",
        description="Lattice QCD: memory-bound FP, little value predictability (<10% offload)",
        chain_alu_ops=1,
        chain_unpred_ops=2,
        unpred_chain_footprint_words=1 << 12,
        pred_chains=0,
        pred_chain_ops=1,
        invariant_alu_ops=1,
        immediate_alu_ops=1,
        unpred_alu_ops=2,
        strided_loads=1,
        strided_values_predictable=False,
        strided_footprint_words=1 << 16,
        random_loads=1,
        random_footprint_words=1 << 19,
        stores=1,
        fp_chains=2,
        fp_chain_ops=2,
        fp_mul_ops=2,
    ),
    WorkloadSpec(
        name="namd",
        paper_benchmark="444.namd",
        paper_ipc=1.860,
        category="FP",
        description="Molecular dynamics: very wide ILP, ~60% offloadable, issue-width hungry",
        chain_alu_ops=7,
        chain_fp_ops=1,
        chain_loads=1,
        chain_values_predictable=True,
        chain_unpred_ops=2,
        pred_chains=6,
        pred_chain_ops=3,
        invariant_alu_ops=6,
        immediate_alu_ops=6,
        unpred_alu_ops=1,
        strided_loads=2,
        strided_values_predictable=True,
        strided_footprint_words=1 << 12,
        stores=1,
        fp_chains=2,
        fp_chain_ops=2,
        fp_mul_ops=1,
        pred_branches=1,
        inner_loop_trip=8,
    ),
    WorkloadSpec(
        name="gobmk",
        paper_benchmark="445.gobmk",
        paper_ipc=0.766,
        category="INT",
        description="Go engine: hard data-dependent branches, calls, modest predictability",
        chain_alu_ops=2,
        chain_loads=1,
        chain_values_predictable=False,
        chain_footprint_words=1 << 12,
        chain_unpred_ops=2,
        pred_chains=1,
        pred_chain_ops=2,
        invariant_alu_ops=2,
        immediate_alu_ops=2,
        unpred_alu_ops=2,
        strided_loads=1,
        strided_values_predictable=False,
        strided_footprint_words=1 << 13,
        random_loads=1,
        random_footprint_words=1 << 13,
        stores=1,
        data_dep_branches=3,
        pred_branches=1,
        calls=2,
    ),
    WorkloadSpec(
        name="hmmer",
        paper_benchmark="456.hmmer",
        paper_ipc=2.477,
        category="INT",
        description="Profile HMM inner loop: huge integer ILP, low VP coverage, IQ hungry",
        chain_alu_ops=1,
        chain_loads=2,
        chain_values_predictable=False,
        chain_footprint_words=1 << 10,
        chain_unpred_ops=4,
        pred_chains=1,
        pred_chain_ops=1,
        invariant_alu_ops=1,
        immediate_alu_ops=1,
        unpred_alu_ops=8,
        strided_loads=4,
        strided_values_predictable=False,
        strided_footprint_words=1 << 10,
        stores=2,
        pred_branches=1,
        inner_loop_trip=16,
    ),
    WorkloadSpec(
        name="sjeng",
        paper_benchmark="458.sjeng",
        paper_ipc=1.321,
        category="INT",
        description="Chess: branchy search with indirect dispatch, moderate predictability",
        chain_alu_ops=3,
        chain_loads=1,
        chain_values_predictable=True,
        chain_footprint_words=1 << 11,
        chain_unpred_ops=4,
        pred_chains=1,
        pred_chain_ops=2,
        invariant_alu_ops=2,
        immediate_alu_ops=3,
        unpred_alu_ops=2,
        strided_loads=1,
        strided_values_predictable=False,
        strided_footprint_words=1 << 12,
        stores=1,
        data_dep_branches=2,
        pred_branches=1,
        calls=1,
        indirect_jump_targets=4,
    ),
    WorkloadSpec(
        name="h264ref",
        paper_benchmark="464.h264ref",
        paper_ipc=1.312,
        category="INT",
        description="Video encode: strided pixel loads with predictable values, good VP benefit",
        chain_alu_ops=14,
        chain_loads=2,
        chain_values_predictable=True,
        chain_unpred_ops=3,
        pred_chains=3,
        pred_chain_ops=2,
        invariant_alu_ops=2,
        immediate_alu_ops=3,
        unpred_alu_ops=2,
        strided_loads=3,
        strided_values_predictable=True,
        strided_footprint_words=1 << 13,
        stores=2,
        data_dep_branches=1,
        pred_branches=1,
        inner_loop_trip=4,
    ),
    WorkloadSpec(
        name="lbm",
        paper_benchmark="470.lbm",
        paper_ipc=0.748,
        category="FP",
        description="Lattice-Boltzmann streaming: DRAM-bandwidth bound, low offload",
        chain_alu_ops=1,
        chain_loads=2,
        chain_values_predictable=False,
        chain_footprint_words=1 << 19,
        chain_unpred_ops=2,
        unpred_chain_footprint_words=1 << 12,
        pred_chains=1,
        pred_chain_ops=1,
        invariant_alu_ops=1,
        immediate_alu_ops=1,
        unpred_alu_ops=2,
        strided_loads=3,
        strided_values_predictable=False,
        strided_footprint_words=1 << 19,
        stores=3,
        fp_chains=2,
        fp_chain_ops=2,
        fp_mul_ops=1,
    ),
]

_SUITE: dict[str, Workload] = {spec.name: Workload(spec) for spec in _SPECS}

#: Workload names in the paper's Table 3 order.
SUITE_ORDER: tuple[str, ...] = tuple(spec.name for spec in _SPECS)

#: A small representative subset (fast CI / examples): covers high-VP, low-VP,
#: memory-bound, IQ-hungry and offload-heavy behaviours.
FAST_SUBSET: tuple[str, ...] = ("wupwise", "crafty", "mcf", "namd", "hmmer", "gcc")


def workload(name: str) -> Workload:
    """Look up a workload by name."""
    if name not in _SUITE:
        raise ConfigurationError(f"unknown workload {name!r}; known: {sorted(_SUITE)}")
    return _SUITE[name]


def all_workloads() -> list[Workload]:
    """All 19 workloads, in Table 3 order."""
    return [_SUITE[name] for name in SUITE_ORDER]


def fast_workloads() -> list[Workload]:
    """The representative fast subset (see :data:`FAST_SUBSET`)."""
    return [_SUITE[name] for name in FAST_SUBSET]


def workload_names() -> list[str]:
    """Names of all workloads in suite order."""
    return list(SUITE_ORDER)
