"""Random program generator, used by property-based tests and robustness studies.

The generator produces syntactically valid, terminating programs with a random mix of
ALU, memory and control-flow µ-ops.  It is intentionally independent from the curated
suite in :mod:`repro.workloads.suite`: its purpose is to exercise the emulator and the
pipeline simulator on inputs nobody hand-tuned, so invariants (in-order commit, IPC
bounds, no deadlock, architectural equivalence of configurations) can be checked over a
broad input space.
"""

from __future__ import annotations

import random

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program

#: Memory region used by generated loads/stores (kept small so runs stay cache-friendly).
GENERATOR_MEMORY_BASE = 0x0800_0000
GENERATOR_MEMORY_WORDS = 1 << 10


class RandomProgramGenerator:
    """Generates random loop kernels from a seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def generate(
        self,
        body_ops: int = 40,
        num_accumulators: int = 6,
        branch_probability: float = 0.15,
        memory_probability: float = 0.2,
        fp_probability: float = 0.1,
        muldiv_probability: float = 0.05,
    ) -> Program:
        """Produce a random, infinite-loop kernel program."""
        rng = random.Random(self.seed)
        builder = ProgramBuilder(f"random_{self.seed}")
        accumulators = [16 + index for index in range(num_accumulators)]
        temporaries = [8 + index for index in range(8)]
        fp_regs = [32 + index for index in range(6)]

        builder.movi(1, 0)  # loop counter
        builder.movi(2, 0)  # memory offset
        for reg in accumulators:
            builder.movi(reg, rng.randrange(1, 1000))
        for index, reg in enumerate(fp_regs):
            builder.movi(temporaries[0], index + 2)
            builder.fcvt(reg, temporaries[0])

        builder.label("loop")
        skip_counter = 0
        for _index in range(body_ops):
            roll = rng.random()
            dst = rng.choice(temporaries)
            a = rng.choice(accumulators)
            b = rng.choice(accumulators)
            if roll < branch_probability:
                skip_counter += 1
                label = f"skip_{skip_counter}"
                builder.and_(dst, rng.choice(accumulators), imm=rng.choice((1, 3, 7)))
                builder.cmp(dst, imm=0)
                rng.choice((builder.beq, builder.bne))(label)
                builder.addi(rng.choice(accumulators), rng.choice(accumulators), 1)
                builder.label(label)
            elif roll < branch_probability + memory_probability:
                offset_mask = GENERATOR_MEMORY_WORDS * 8 - 1
                builder.addi(2, 2, 8)
                builder.and_(2, 2, imm=offset_mask)
                if rng.random() < 0.5:
                    builder.ld(dst, 2, GENERATOR_MEMORY_BASE)
                else:
                    builder.st(2, rng.choice(accumulators), GENERATOR_MEMORY_BASE)
            elif roll < branch_probability + memory_probability + fp_probability:
                builder.fadd(rng.choice(fp_regs), rng.choice(fp_regs), rng.choice(fp_regs))
            elif roll < branch_probability + memory_probability + fp_probability + muldiv_probability:
                if rng.random() < 0.5:
                    builder.mul(dst, a, b)
                else:
                    builder.div(dst, a, b)
            else:
                operation = rng.choice(
                    (builder.add, builder.sub, builder.and_, builder.or_, builder.xor)
                )
                if rng.random() < 0.4:
                    operation(rng.choice(accumulators), rng.choice(accumulators), b)
                else:
                    operation(dst, a, b)
        builder.addi(1, 1, 1)
        builder.cmp(1, imm=1 << 40)
        builder.bne("loop")
        return builder.build()
