"""Kernel generator: turn a :class:`~repro.workloads.spec.WorkloadSpec` into a program.

Every synthetic benchmark is a steady-state loop whose body is assembled from a small
set of behavioural building blocks (predictable accumulator chains, loop-invariant ALU
work, immediate-fed ALU work, strided/random/pointer-chasing loads, stores, FP chains,
data-dependent branches, calls, indirect jumps).  The blocks are chosen so that the
micro-architectural phenomena the paper relies on all occur and can be dialled per
workload:

* stride- and context-predictable results → value-prediction coverage, Late Execution;
* immediate/predicted operands inside a rename group → Early Execution;
* unpredictable load-dependent results → the uncovered fraction;
* footprints sized against the Table 1 cache hierarchy → L1/L2/DRAM behaviour;
* data-dependent branches → TAGE (high- and low-confidence) behaviour.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.emulator import ArchState
from repro.isa.program import Program
from repro.workloads.spec import WorkloadSpec

# Memory map of the synthetic kernels (byte addresses, 8-byte words).
STRIDED_BASE = 0x0100_0000
RANDOM_BASE = 0x0200_0000
CHASE_BASE = 0x0300_0000
STORE_BASE = 0x0400_0000
JUMP_TABLE_BASE = 0x0500_0000
CHAIN_BASE = 0x0600_0000

#: Value stored in every word of the chain array when the chain is predictable.
CHAIN_CONSTANT_VALUE = 42

#: Practically-infinite outer loop bound: the emulator stops at the requested µ-op count.
OUTER_ITERATIONS = 1 << 40

# Register allocation convention (see module docstring of repro.isa.registers).
R_ITER = 1          # outer iteration counter
R_STRIDE_OFF = 2    # strided-array byte offset
R_RANDOM_STATE = 3  # xorshift state for random addresses
R_CHASE_PTR = 4     # pointer-chase cursor (absolute address)
R_INNER = 5         # inner loop counter
R_STORE_OFF = 6     # store-array byte offset
R_ADDR_TMP = 7      # address scratch
R_TMP_BASE = 8      # r8..r15: temporaries (load results, branch data)
R_ACC_BASE = 16     # r16..r25: accumulators for predictable chains
R_CHAIN_UNPRED = 26  # cursor of the unpredictable loop-carried hash-walk chain
R_CHAIN = 27        # accumulator of the predictable loop-carried critical chain
R_CONST_ONE = 28
R_CONST_STRIDE = 29
R_INVARIANT_A = 30
R_INVARIANT_B = 31
F_ACC_BASE = 32     # f0..f11 as accumulators (register ids 32..43)
F_CONST_ADD = 44    # f12
F_CONST_MUL = 45    # f13
F_TMP = 46          # f14


class _KernelEmitter:
    """Stateful helper emitting the loop body blocks for one spec."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.builder = ProgramBuilder(spec.name)
        self._label_counter = 0
        self._tmp_rotation = 0
        self._last_load_reg = R_INVARIANT_A  # something predictable until a load happens

    # ------------------------------------------------------------------ helpers
    def _label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def _tmp(self) -> int:
        reg = R_TMP_BASE + (self._tmp_rotation % 8)
        self._tmp_rotation += 1
        return reg

    # ------------------------------------------------------------------ initialisation
    def emit_init(self) -> None:
        b = self.builder
        b.movi(R_ITER, 0)
        b.movi(R_STRIDE_OFF, 0)
        b.movi(R_RANDOM_STATE, 0x9E3779B9)
        b.movi(R_CHASE_PTR, CHASE_BASE)
        b.movi(R_STORE_OFF, 0)
        b.movi(R_CONST_ONE, 1)
        b.movi(R_CONST_STRIDE, 8)
        b.movi(R_INVARIANT_A, 0x1234_5678)
        b.movi(R_INVARIANT_B, 0x0FED_CBA9)
        b.movi(R_CHAIN, 7)
        b.movi(R_CHAIN_UNPRED, 0x1357_9BDF)
        for chain in range(10):
            b.movi(R_ACC_BASE + chain, 100 + chain)
        # Floating-point constants and accumulators.
        tmp = self._tmp()
        b.movi(tmp, 7)
        b.fcvt(F_CONST_ADD, tmp)
        b.movi(tmp, 3)
        b.fcvt(F_CONST_MUL, tmp)
        for chain in range(12):
            b.movi(tmp, 50 + chain)
            b.fcvt(F_ACC_BASE + chain, tmp)

    # ------------------------------------------------------------------ body blocks
    def emit_critical_chain(self) -> None:
        """The loop-carried critical chains that bound baseline IPC.

        Two serial chains are carried across iterations:

        * the **predictable chain** (``R_CHAIN`` / ``F_ACC_BASE``): constant integer
          increments, constant-valued chain loads and constant FP increments.  Its
          latency is what value prediction — and therefore EOLE — collapses.
        * the **unpredictable chain** (``R_CHAIN_UNPRED``): a hash-walk whose next
          address depends on the previously loaded (pseudo-random) value.  The value
          predictor cannot learn it, so it remains the serial floor under VP — which is
          how per-workload VP speedups are kept in a realistic range.
        """
        spec = self.spec
        b = self.builder
        mask = spec.chain_footprint_words * 8 - 1
        load_budget = spec.chain_loads
        alu_budget = spec.chain_alu_ops
        if load_budget and not spec.strided_loads:
            # Keep the chain-load addresses moving even when there is no independent
            # strided-load block advancing the shared offset register.
            b.addi(R_STRIDE_OFF, R_STRIDE_OFF, 8)
        # Interleave loads into the ALU chain so the load latency sits on the chain.
        while alu_budget > 0 or load_budget > 0:
            if load_budget > 0:
                # Address: strided walk of the chain array, derived from the offset
                # register (not from the chain value, so the address stays predictable).
                b.and_(R_ADDR_TMP, R_STRIDE_OFF, imm=mask)
                loaded = self._tmp()
                b.ld(loaded, R_ADDR_TMP, CHAIN_BASE)
                b.add(R_CHAIN, R_CHAIN, loaded)
                load_budget -= 1
            steps = min(alu_budget, 3) if load_budget > 0 else alu_budget
            for _step in range(steps):
                b.addi(R_CHAIN, R_CHAIN, 5)
            alu_budget -= steps
        for _op in range(spec.chain_fp_ops):
            b.fadd(F_ACC_BASE, F_ACC_BASE, F_CONST_ADD)
        unpred_mask = (spec.unpred_chain_footprint_words - 1) << 3
        for _op in range(spec.chain_unpred_ops):
            # Hash walk: the next address depends on the value just loaded.
            b.and_(R_ADDR_TMP, R_CHAIN_UNPRED, imm=unpred_mask)
            b.ld(R_CHAIN_UNPRED, R_ADDR_TMP, RANDOM_BASE)

    def emit_predictable_chains(self) -> None:
        spec = self.spec
        b = self.builder
        for chain in range(spec.pred_chains):
            acc = R_ACC_BASE + (chain % 11)
            for _op in range(spec.pred_chain_ops):
                b.addi(acc, acc, 3 + chain)

    def emit_invariant_alu(self) -> None:
        b = self.builder
        for index in range(self.spec.invariant_alu_ops):
            dst = self._tmp()
            if index % 3 == 0:
                b.add(dst, R_INVARIANT_A, R_INVARIANT_B)
            elif index % 3 == 1:
                b.xor(dst, R_INVARIANT_A, R_INVARIANT_B)
            else:
                b.and_(dst, R_INVARIANT_A, R_INVARIANT_B)

    def emit_immediate_alu(self) -> None:
        b = self.builder
        previous = None
        for index in range(self.spec.immediate_alu_ops):
            dst = self._tmp()
            if index % 2 == 0 or previous is None:
                b.movi(dst, 0x40 + index)
            else:
                b.addi(dst, previous, index + 1)
            previous = dst

    def emit_strided_loads(self) -> None:
        spec = self.spec
        if not spec.strided_loads:
            return
        b = self.builder
        mask = spec.strided_footprint_words * 8 - 1
        b.addi(R_STRIDE_OFF, R_STRIDE_OFF, 8)
        b.and_(R_STRIDE_OFF, R_STRIDE_OFF, imm=mask)
        for index in range(spec.strided_loads):
            dst = self._tmp()
            b.ld(dst, R_STRIDE_OFF, STRIDED_BASE + index * 64)
            self._last_load_reg = dst

    def emit_random_loads(self) -> None:
        spec = self.spec
        if not spec.random_loads:
            return
        b = self.builder
        index_mask = spec.random_footprint_words - 1
        for _index in range(spec.random_loads):
            # xorshift step: unpredictable addresses and values.
            b.shl(R_ADDR_TMP, R_RANDOM_STATE, 13)
            b.xor(R_RANDOM_STATE, R_RANDOM_STATE, R_ADDR_TMP)
            b.shr(R_ADDR_TMP, R_RANDOM_STATE, 7)
            b.xor(R_RANDOM_STATE, R_RANDOM_STATE, R_ADDR_TMP)
            b.and_(R_ADDR_TMP, R_RANDOM_STATE, imm=index_mask)
            b.shl(R_ADDR_TMP, R_ADDR_TMP, 3)
            dst = self._tmp()
            b.ld(dst, R_ADDR_TMP, RANDOM_BASE)
            self._last_load_reg = dst

    def emit_pointer_chase(self) -> None:
        for _index in range(self.spec.pointer_chase_loads):
            self.builder.ld(R_CHASE_PTR, R_CHASE_PTR, 0)
            self._last_load_reg = R_CHASE_PTR

    def emit_unpredictable_alu(self) -> None:
        b = self.builder
        source = self._last_load_reg
        for index in range(self.spec.unpred_alu_ops):
            dst = self._tmp()
            if index % 2 == 0:
                b.add(dst, source, R_ACC_BASE + (index % 11))
            else:
                b.xor(dst, source, R_ACC_BASE + (index % 11))
            source = dst

    def emit_stores(self) -> None:
        spec = self.spec
        if not spec.stores:
            return
        b = self.builder
        mask = spec.strided_footprint_words * 8 - 1
        b.addi(R_STORE_OFF, R_STORE_OFF, 8)
        b.and_(R_STORE_OFF, R_STORE_OFF, imm=mask)
        for index in range(spec.stores):
            b.st(R_STORE_OFF, R_ACC_BASE + (index % 11), STORE_BASE + index * 64)
        if spec.stores >= 2:
            # A load that reads back a just-stored location: exercises store-to-load
            # forwarding and (before Store Sets train) memory-order speculation.
            dst = self._tmp()
            b.ld(dst, R_STORE_OFF, STORE_BASE)

    def emit_fp(self) -> None:
        spec = self.spec
        b = self.builder
        for chain in range(spec.fp_chains):
            acc = F_ACC_BASE + 1 + (chain % 11)
            for _op in range(spec.fp_chain_ops):
                b.fadd(acc, acc, F_CONST_ADD)
        for index in range(spec.fp_mul_ops):
            acc = F_ACC_BASE + 1 + (index % 11)
            b.fmul(acc, acc, F_CONST_MUL)

    def emit_muldiv(self) -> None:
        spec = self.spec
        b = self.builder
        for index in range(spec.int_mul_ops):
            dst = self._tmp()
            b.mul(dst, R_ACC_BASE + (index % 11), R_CONST_STRIDE)
        for index in range(spec.int_div_ops):
            dst = self._tmp()
            b.div(dst, R_ACC_BASE + (index % 11), R_CONST_STRIDE)

    def emit_data_dependent_branches(self) -> None:
        b = self.builder
        for index in range(self.spec.data_dep_branches):
            bit = self._tmp()
            b.and_(bit, self._last_load_reg, imm=1 << (index % 3))
            b.cmp(bit, imm=0)
            skip = self._label("ddskip")
            b.beq(skip)
            b.addi(R_ACC_BASE + (index % 11), R_ACC_BASE + (index % 11), 1)
            b.label(skip)

    def emit_predictable_branches(self) -> None:
        b = self.builder
        for index in range(self.spec.pred_branches):
            bit = self._tmp()
            b.and_(bit, R_ITER, imm=3 << index)
            b.cmp(bit, imm=0)
            skip = self._label("pbskip")
            b.bne(skip)
            b.addi(R_ACC_BASE + ((index + 5) % 11), R_ACC_BASE + ((index + 5) % 11), 2)
            b.label(skip)

    def emit_calls(self, function_labels: list[str]) -> None:
        for index in range(self.spec.calls):
            self.builder.call(function_labels[index % len(function_labels)])

    def emit_indirect_jump(self) -> list[str]:
        """Emit an indirect-jump switch; returns the case labels (for jump-table init)."""
        spec = self.spec
        targets = spec.indirect_jump_targets
        if targets <= 0:
            return []
        b = self.builder
        selector = self._tmp()
        b.and_(selector, self._last_load_reg, imm=targets - 1)
        b.shl(selector, selector, 3)
        b.ld(R_ADDR_TMP, selector, JUMP_TABLE_BASE)
        b.jmpi(R_ADDR_TMP)
        end_label = self._label("switch_end")
        case_labels = []
        for case in range(targets):
            case_label = self._label("case")
            b.label(case_label)
            case_labels.append(case_label)
            b.addi(R_ACC_BASE + (case % 11), R_ACC_BASE + (case % 11), case + 1)
            b.jmp(end_label)
        b.label(end_label)
        return case_labels

    # ------------------------------------------------------------------ program assembly
    def emit_functions(self) -> list[str]:
        """Emit small leaf functions used by the call block (before the main loop)."""
        if not self.spec.calls:
            return []
        b = self.builder
        labels = []
        entry_skip = self._label("skip_functions")
        b.jmp(entry_skip)
        for index in range(min(self.spec.calls, 3)):
            label = self._label("leaf")
            b.label(label)
            labels.append(label)
            tmp = self._tmp()
            b.add(tmp, R_INVARIANT_A, R_INVARIANT_B)
            b.addi(tmp, tmp, index)
            b.ret()
        b.label(entry_skip)
        return labels

    def build(self) -> tuple[Program, list[str]]:
        """Assemble the full program; returns it plus the indirect-jump case labels."""
        spec = self.spec
        b = self.builder
        self.emit_init()
        function_labels = self.emit_functions()

        b.label("outer")
        case_labels: list[str] = []

        def emit_body() -> None:
            self.emit_critical_chain()
            self.emit_immediate_alu()
            self.emit_predictable_chains()
            self.emit_strided_loads()
            self.emit_invariant_alu()
            self.emit_random_loads()
            self.emit_pointer_chase()
            self.emit_unpredictable_alu()
            self.emit_fp()
            self.emit_muldiv()
            self.emit_data_dependent_branches()
            self.emit_predictable_branches()
            if function_labels:
                self.emit_calls(function_labels)
            case_labels.extend(self.emit_indirect_jump())
            self.emit_stores()

        if spec.inner_loop_trip > 0:
            b.movi(R_INNER, 0)
            b.label("inner")
            emit_body()
            b.addi(R_INNER, R_INNER, 1)
            b.cmp(R_INNER, imm=spec.inner_loop_trip)
            b.bne("inner")
        else:
            emit_body()

        b.addi(R_ITER, R_ITER, 1)
        b.cmp(R_ITER, imm=OUTER_ITERATIONS)
        b.bne("outer")
        return b.build(), case_labels


def build_program(spec: WorkloadSpec) -> tuple[Program, list[str]]:
    """Build the program of ``spec``; returns ``(program, indirect_case_labels)``."""
    return _KernelEmitter(spec).build()


def make_arch_state(spec: WorkloadSpec, program: Program, case_labels: list[str]) -> ArchState:
    """Fresh architectural state with the memory arrays of ``spec`` initialised."""
    state = ArchState()
    if spec.strided_loads and spec.strided_values_predictable:
        values = [1000 + 7 * index for index in range(spec.strided_footprint_words)]
        state.initialise_array(STRIDED_BASE, values)
    if spec.chain_loads and spec.chain_values_predictable:
        values = [CHAIN_CONSTANT_VALUE] * spec.chain_footprint_words
        state.initialise_array(CHAIN_BASE, values)
    if spec.pointer_chase_loads:
        words = spec.chase_footprint_words
        # Full-period affine (LCG) permutation: successor = a*i + c (mod words) with
        # a ≡ 1 (mod 4) and c odd.  Successive pointers are spread irregularly across
        # the array, so neither the stride prefetcher nor the value predictor can learn
        # the walk — the behaviour that makes mcf-style codes memory-latency bound.
        multiplier = 5
        increment = (words // 3) | 1
        for index in range(words):
            successor = (multiplier * index + increment) % words
            state.write_mem(CHASE_BASE + 8 * index, CHASE_BASE + 8 * successor)
    if case_labels:
        for slot, label in enumerate(case_labels[: spec.indirect_jump_targets]):
            state.write_mem(JUMP_TABLE_BASE + 8 * slot, program.pc_of(label))
    return state
