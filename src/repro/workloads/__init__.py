"""Synthetic workloads: the 19 SPEC-analogue kernels and a random program generator."""

from repro.workloads.generator import RandomProgramGenerator
from repro.workloads.kernels import (
    CHASE_BASE,
    JUMP_TABLE_BASE,
    OUTER_ITERATIONS,
    RANDOM_BASE,
    STORE_BASE,
    STRIDED_BASE,
    build_program,
    make_arch_state,
)
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import (
    FAST_SUBSET,
    SUITE_ORDER,
    Workload,
    all_workloads,
    fast_workloads,
    workload,
    workload_names,
)

__all__ = [
    "CHASE_BASE",
    "FAST_SUBSET",
    "JUMP_TABLE_BASE",
    "OUTER_ITERATIONS",
    "RANDOM_BASE",
    "RandomProgramGenerator",
    "STORE_BASE",
    "STRIDED_BASE",
    "SUITE_ORDER",
    "Workload",
    "WorkloadSpec",
    "all_workloads",
    "build_program",
    "fast_workloads",
    "make_arch_state",
    "workload",
    "workload_names",
]
