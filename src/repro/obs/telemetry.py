"""Campaign telemetry: per-cell wall-clock, throughput and trace-cache rows.

The campaign executor wraps every simulated cell with a
:class:`TraceCacheSnapshot` and a wall-clock timer and stores the resulting
:func:`cell_telemetry` row alongside the simulation result in the JSONL
ResultStore (``record["telemetry"]``).  ``repro-campaign report --metrics``
renders those rows; the structured heartbeat log
(:mod:`repro.campaign.progress`) covers the live-progress side.

This module deliberately does not import the executor — the executor imports it —
and adds nothing to the result itself, so stored results stay byte-compatible.
"""

from __future__ import annotations

import os
import socket

from repro.trace.cache import shared_trace_cache


class TraceCacheSnapshot:
    """Counter snapshot of the shared trace cache, for per-cell deltas."""

    __slots__ = ("captures", "hits", "store_hits")

    def __init__(self) -> None:
        self.captures = shared_trace_cache.captures
        self.hits = shared_trace_cache.hits
        self.store_hits = shared_trace_cache.store_hits

    def delta(self) -> dict:
        """Trace-cache activity since this snapshot was taken."""
        return {
            "captures": shared_trace_cache.captures - self.captures,
            "hits": shared_trace_cache.hits - self.hits,
            "store_hits": shared_trace_cache.store_hits - self.store_hits,
        }


def cell_telemetry(result, seconds: float, snapshot: TraceCacheSnapshot) -> dict:
    """The telemetry row stored with one simulated cell.

    ``uops_per_second`` uses the *full* committed count (warm-up included) — it
    measures simulator throughput, not the measurement window.  ``worker_host``
    disambiguates ``worker_pid`` once rows from a distributed fleet
    (:mod:`repro.campaign.coordinator`) land in one shared store; the coordinator
    additionally stamps its ``worker`` id and ``lease_id`` onto the row.
    """
    committed = result.full_stats.committed_uops
    return {
        "wall_seconds": seconds,
        "uops_per_second": committed / seconds if seconds > 0 else 0.0,
        "trace_cache": snapshot.delta(),
        "worker_pid": os.getpid(),
        "worker_host": socket.gethostname(),
    }
