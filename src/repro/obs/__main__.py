"""``python -m repro.obs`` — entry point for the observability CLI."""

import sys

from repro.obs.cli import main

sys.exit(main())
