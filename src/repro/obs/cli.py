"""``repro-obs`` — run one traced/metered single-cell simulation from the shell.

Two subcommands:

* ``repro-obs trace`` — run one cell with ``REPRO_PIPE_TRACE=1`` and export the
  event buffer as Perfetto trace-event JSON (``--perfetto``) and/or Konata
  O3PipeView text (``--konata``).  The exported JSON is validated against the
  trace-event schema before it is written, so CI can rely on the exit status.
* ``repro-obs metrics`` — run one cell with ``REPRO_METRICS=1`` and print the
  drained metrics payload as a ``repro-report``-style table or as JSON.

Also reachable as ``python -m repro.obs``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.obs.metrics import METRICS_ENV_VAR, metrics_report
from repro.obs.tracer import (
    PIPE_TRACE_BUFFER_ENV_VAR,
    PIPE_TRACE_ENV_VAR,
    to_konata,
    to_trace_events,
    validate_trace_events,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Pipeline-event tracing and metrics for single-cell simulations.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cell_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--config", default="EOLE_4_64", help="named pipeline configuration")
        p.add_argument("--workload", default="gcc", help="workload name from the suite")
        p.add_argument("--max-uops", type=int, default=4000)
        p.add_argument("--warmup-uops", type=int, default=1000)

    trace = sub.add_parser("trace", help="run one traced cell and export the event buffer")
    add_cell_arguments(trace)
    trace.add_argument(
        "--buffer", type=int, default=None, help="ring-buffer capacity (events)"
    )
    trace.add_argument("--perfetto", metavar="PATH", help="write Perfetto trace-event JSON")
    trace.add_argument("--konata", metavar="PATH", help="write Konata/O3PipeView text")

    metrics = sub.add_parser("metrics", help="run one metered cell and dump the metrics")
    add_cell_arguments(metrics)
    metrics.add_argument("--format", choices=("table", "json"), default="table")
    return parser


def _simulate(args) -> "tuple":
    """Run one cell exactly as the campaign executor would, returning the simulator.

    Imports are deferred so ``repro.obs`` stays import-light for the hot paths.
    """
    from repro.pipeline.config import named_config
    from repro.pipeline.simulator import Simulator
    from repro.trace.cache import shared_trace_cache, trace_cache_enabled
    from repro.workloads.suite import workload

    config = named_config(args.config)
    wl = workload(args.workload)
    trace = (
        shared_trace_cache.trace_for(wl, args.max_uops, config)
        if trace_cache_enabled()
        else None
    )
    simulator = Simulator(
        config,
        wl.program,
        max_uops=args.max_uops,
        warmup_uops=args.warmup_uops,
        arch_state=wl.make_state() if trace is None else None,
        workload_name=wl.name,
        trace=trace,
    )
    result = simulator.run()
    return simulator, result


def _with_env(overrides: dict, fn):
    """Run ``fn`` with environment overrides, restoring the previous values.

    The CLI is also exercised in-process by the tests, so mutating ``os.environ``
    without restoring it would leak tracing into unrelated simulations.
    """
    previous = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        return fn()
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _cmd_trace(args) -> int:
    overrides = {PIPE_TRACE_ENV_VAR: "1"}
    if args.buffer is not None:
        overrides[PIPE_TRACE_BUFFER_ENV_VAR] = str(args.buffer)
    simulator, result = _with_env(overrides, lambda: _simulate(args))
    tracer = simulator.tracer
    if tracer is None:  # pragma: no cover - env override failed
        print("error: tracer was not enabled", file=sys.stderr)
        return 1
    metadata = {
        "config": args.config,
        "workload": args.workload,
        "max_uops": args.max_uops,
        "warmup_uops": args.warmup_uops,
        "ipc": result.ipc,
    }
    print(
        f"{args.config}/{args.workload}: {tracer.emitted} events emitted, "
        f"{len(tracer)} retained, {tracer.dropped} dropped "
        f"(buffer {tracer.capacity})"
    )
    if args.perfetto:
        payload = to_trace_events(tracer, metadata)
        validate_trace_events(payload)
        with open(args.perfetto, "w") as fh:
            json.dump(payload, fh, separators=(",", ":"))
        print(f"perfetto: {args.perfetto} ({len(payload['traceEvents'])} trace events)")
    if args.konata:
        text = to_konata(tracer)
        with open(args.konata, "w") as fh:
            fh.write(text)
        print(f"konata: {args.konata} ({text.count(chr(10))} lines)")
    return 0


def _cmd_metrics(args) -> int:
    _, result = _with_env({METRICS_ENV_VAR: "1"}, lambda: _simulate(args))
    payload = result.extra.get("metrics")
    if payload is None:  # pragma: no cover - env override failed
        print("error: metrics were not enabled", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(metrics_report(payload))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"trace": _cmd_trace, "metrics": _cmd_metrics}
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # pragma: no cover - shell pipeline closed early
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
