"""Observability layer: pipeline event tracing, unified metrics, campaign telemetry.

Three tiers, each zero-overhead when disabled (see ``docs/observability.md``):

* :mod:`repro.obs.tracer` — ``REPRO_PIPE_TRACE=1`` records per-µ-op lifecycle
  events into a bounded ring buffer, exportable as Chrome/Perfetto trace-event
  JSON and gem5-O3PipeView/Konata text;
* :mod:`repro.obs.metrics` — ``REPRO_METRICS=1`` collects registered counters and
  histograms and drains every statistics source into one flat namespace;
* :mod:`repro.obs.telemetry` — per-cell wall-clock / µops-per-second /
  trace-cache rows stored through the campaign's JSONL ResultStore.

The CLI lives in :mod:`repro.obs.cli` (``repro-obs`` / ``python -m repro.obs``)
and is *not* imported here — it pulls in the campaign layer.
"""

from repro.obs.metrics import (
    METRICS_ENV_VAR,
    MetricsRegistry,
    drain_simulator_metrics,
    maybe_sim_metrics,
    metrics_enabled,
    metrics_report,
    unified_metrics,
)
from repro.obs.telemetry import TraceCacheSnapshot, cell_telemetry
from repro.obs.tracer import (
    PIPE_TRACE_BUFFER_ENV_VAR,
    PIPE_TRACE_ENV_VAR,
    PipeTracer,
    maybe_tracer,
    pipe_trace_enabled,
    to_konata,
    to_trace_events,
    validate_trace_events,
    write_konata,
    write_trace_events,
)

__all__ = [
    "METRICS_ENV_VAR",
    "MetricsRegistry",
    "PIPE_TRACE_BUFFER_ENV_VAR",
    "PIPE_TRACE_ENV_VAR",
    "PipeTracer",
    "TraceCacheSnapshot",
    "cell_telemetry",
    "drain_simulator_metrics",
    "maybe_sim_metrics",
    "maybe_tracer",
    "metrics_enabled",
    "metrics_report",
    "pipe_trace_enabled",
    "to_konata",
    "to_trace_events",
    "unified_metrics",
    "validate_trace_events",
    "write_konata",
    "write_trace_events",
]
