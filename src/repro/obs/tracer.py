"""Pipeline event tracer: per-µ-op lifecycle events in a bounded ring buffer.

``REPRO_PIPE_TRACE=1`` makes :class:`repro.pipeline.simulator.Simulator` emit one
event per pipeline stage a µ-op passes through — fetch, VP lookup, early execution,
dispatch, wake-up, issue, completion, commit and squash — each stamped with the
cycle, the µ-op's sequence number, its PC, its pool slot (the arena index of the
pooled ``InflightOp`` record) and an optional cause string.  The hook sites in the
simulator, the issue queue and the emulator are plain ``if tracer is not None``
checks, so the disabled path (the default) stays byte-identical and free.

Events land in a bounded ring buffer (:class:`PipeTracer`), oldest-first eviction;
``REPRO_PIPE_TRACE_BUFFER`` sizes it (default 65 536 events).  Two exporters turn
the buffer into timeline files:

* :func:`to_trace_events` — Chrome/Perfetto trace-event JSON (load in
  https://ui.perfetto.dev or ``chrome://tracing``); each pool slot becomes a
  timeline lane, each µ-op lifecycle a chain of complete ("X") spans.
* :func:`to_konata` — gem5 O3PipeView-style text, loadable in the Konata
  pipeline viewer.

The schema is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
from collections import deque

#: Environment variable enabling the pipeline event tracer (default off).
PIPE_TRACE_ENV_VAR = "REPRO_PIPE_TRACE"

#: Environment variable sizing the event ring buffer (default 65 536 events).
PIPE_TRACE_BUFFER_ENV_VAR = "REPRO_PIPE_TRACE_BUFFER"

DEFAULT_BUFFER_CAPACITY = 65536

#: Every stage string the simulator emits, in canonical lifecycle order.  The
#: ``span`` stages bound the Perfetto spans; the ``instant`` stages annotate them.
SPAN_STAGES = ("fetch", "dispatch", "issue", "complete", "commit")
INSTANT_STAGES = ("vp_lookup", "early_exec", "wakeup")
ALL_STAGES = SPAN_STAGES + INSTANT_STAGES + ("squash",)

#: O3PipeView timestamps are ticks; gem5 uses 500/1000 ticks per cycle.  Konata
#: only needs the ratio to be constant.
TICKS_PER_CYCLE = 1000


def pipe_trace_enabled() -> bool:
    """True when ``REPRO_PIPE_TRACE`` explicitly enables event tracing."""
    return os.environ.get(PIPE_TRACE_ENV_VAR, "0").lower() in ("1", "on", "true")


def trace_buffer_capacity() -> int:
    """Ring-buffer capacity from ``REPRO_PIPE_TRACE_BUFFER`` (default 65 536)."""
    raw = os.environ.get(PIPE_TRACE_BUFFER_ENV_VAR)
    if not raw:
        return DEFAULT_BUFFER_CAPACITY
    try:
        capacity = int(raw)
    except ValueError:
        return DEFAULT_BUFFER_CAPACITY
    return max(1, capacity)


def maybe_tracer() -> "PipeTracer | None":
    """A :class:`PipeTracer` when tracing is enabled, else None (the hot default)."""
    if not pipe_trace_enabled():
        return None
    return PipeTracer(capacity=trace_buffer_capacity())


class PipeTracer:
    """Bounded ring buffer of ``(cycle, stage, seq, pc, slot, cause)`` events.

    When the buffer is full the *oldest* events are evicted — the tail of a run is
    usually what a timeline investigation needs.  ``emitted`` counts every event
    ever offered, so ``dropped`` reports how much history the ring lost.
    """

    __slots__ = ("capacity", "_events", "emitted")

    def __init__(self, capacity: int = DEFAULT_BUFFER_CAPACITY) -> None:
        self.capacity = max(1, int(capacity))
        self._events: deque = deque(maxlen=self.capacity)
        self.emitted = 0

    def emit(self, cycle: int, stage: str, op, cause: str | None = None) -> None:
        """Record one lifecycle event for pooled record ``op`` (seq/pc/slot)."""
        self.emitted += 1
        self._events.append((cycle, stage, op.seq, op.pc, op.slot, cause))

    def emit_slot(
        self,
        cycle: int,
        stage: str,
        seq: int,
        pc: int,
        slot: int,
        cause: str | None = None,
    ) -> None:
        """Record one lifecycle event from SoA columns.

        The structure-of-arrays stage loops pass ``seq``/``pc`` read from the
        pool's ``c_seq``/``c_pc`` columns (mirrors of the record fields), so the
        emitted tuples are byte-identical to :meth:`emit` on the same µ-op.
        """
        self.emitted += 1
        self._events.append((cycle, stage, seq, pc, slot, cause))

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound (emitted − retained)."""
        return self.emitted - len(self._events)

    def events(self) -> list:
        """The retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0


# --------------------------------------------------------------------- lifecycles
def _lifecycles(events) -> list[dict]:
    """Fold the flat event stream into per-µ-op lifecycle records.

    Sequence numbers are *reused* after a squash re-fetch, so a lifecycle is keyed
    by seq but restarted whenever a new "fetch" event for that seq arrives.  Stale
    "complete" events from already-squashed wheel entries carry cause
    ``"squashed"`` and are excluded — they belong to the dead incarnation.
    """
    open_by_seq: dict[int, dict] = {}
    finished: list[dict] = []

    def close(rec: dict) -> None:
        finished.append(rec)

    for cycle, stage, seq, pc, slot, cause in events:
        if stage == "fetch":
            prior = open_by_seq.pop(seq, None)
            if prior is not None:
                close(prior)
            open_by_seq[seq] = {
                "seq": seq,
                "pc": pc,
                "slot": slot,
                "stages": {"fetch": cycle},
                "instants": [],
                "squashed": False,
                "disasm": cause or "uop",
            }
            continue
        rec = open_by_seq.get(seq)
        if rec is None:
            continue  # ring overflow ate the fetch event; skip the partial tail
        if stage == "squash":
            rec["squashed"] = True
            rec["stages"]["squash"] = cycle
            close(open_by_seq.pop(seq))
        elif stage == "complete" and cause == "squashed":
            continue
        elif stage in ("dispatch", "issue", "complete", "commit"):
            rec["stages"][stage] = cycle
            if stage == "commit":
                close(open_by_seq.pop(seq))
        else:  # vp_lookup / early_exec / wakeup
            rec["instants"].append((cycle, stage, cause))
    finished.extend(open_by_seq.values())
    finished.sort(key=lambda rec: (rec["stages"].get("fetch", 0), rec["seq"]))
    return finished


# ----------------------------------------------------------------- Perfetto export
def to_trace_events(tracer: PipeTracer, metadata: dict | None = None) -> dict:
    """Chrome/Perfetto trace-event JSON for the tracer's retained events.

    Each pool slot becomes a named thread lane (``tid``); each µ-op lifecycle
    becomes a chain of complete ("X") spans between consecutive stages, with
    instant ("i") markers for VP lookups, early execution and wake-ups.
    """
    events = tracer.events()
    lifecycles = _lifecycles(events)
    trace_events: list[dict] = []
    slots = sorted({rec["slot"] for rec in lifecycles})
    for slot in slots:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": slot,
                "args": {"name": f"pool slot {slot}"},
            }
        )
    for rec in lifecycles:
        stages = rec["stages"]
        present = [s for s in SPAN_STAGES if s in stages]
        base_args = {"seq": rec["seq"], "pc": f"0x{rec['pc']:x}", "uop": rec["disasm"]}
        for start_stage, end_stage in zip(present, present[1:]):
            start, end = stages[start_stage], stages[end_stage]
            trace_events.append(
                {
                    "name": start_stage,
                    "ph": "X",
                    "pid": 0,
                    "tid": rec["slot"],
                    "ts": start,
                    "dur": max(end - start, 0),
                    "args": base_args,
                }
            )
        terminal = "squash" if rec["squashed"] else ("commit" if "commit" in stages else None)
        if terminal is not None and terminal in stages:
            trace_events.append(
                {
                    "name": terminal,
                    "ph": "i",
                    "pid": 0,
                    "tid": rec["slot"],
                    "ts": stages[terminal],
                    "s": "t",
                    "args": base_args,
                }
            )
        for cycle, stage, cause in rec["instants"]:
            args = dict(base_args)
            if cause is not None:
                args["cause"] = cause
            trace_events.append(
                {
                    "name": stage,
                    "ph": "i",
                    "pid": 0,
                    "tid": rec["slot"],
                    "ts": cycle,
                    "s": "t",
                    "args": args,
                }
            )
    payload = {"traceEvents": trace_events, "displayTimeUnit": "ns"}
    other = {"emitted": tracer.emitted, "dropped": tracer.dropped}
    if metadata:
        other.update(metadata)
    payload["otherData"] = other
    return payload


def write_trace_events(tracer: PipeTracer, path, metadata: dict | None = None) -> dict:
    """Export + write the Perfetto JSON to ``path``; returns the payload."""
    payload = to_trace_events(tracer, metadata)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=None, separators=(",", ":"))
    return payload


# ------------------------------------------------------------------- Konata export
def to_konata(tracer: PipeTracer) -> str:
    """gem5 O3PipeView-style text dump (Konata pipeline viewer compatible).

    One record per µ-op lifecycle::

        O3PipeView:fetch:<tick>:0x<pc>:0:<seq>:<disasm>
        O3PipeView:decode:<tick>
        O3PipeView:rename:<tick>
        O3PipeView:dispatch:<tick>
        O3PipeView:issue:<tick>
        O3PipeView:complete:<tick>
        O3PipeView:retire:<tick>:store:0

    Squashed µ-ops get ``retire:0`` (gem5's convention for never-retired).
    Lifecycles whose fetch event was evicted by the ring bound are skipped.
    """
    lines: list[str] = []
    for rec in _lifecycles(tracer.events()):
        stages = rec["stages"]
        fetch = stages.get("fetch")
        if fetch is None:
            continue
        tick = lambda cycle: cycle * TICKS_PER_CYCLE  # noqa: E731
        dispatch = stages.get("dispatch", fetch)
        issue = stages.get("issue", dispatch)
        complete = stages.get("complete", issue)
        lines.append(
            f"O3PipeView:fetch:{tick(fetch)}:0x{rec['pc']:08x}:0:{rec['seq']}:{rec['disasm']}"
        )
        lines.append(f"O3PipeView:decode:{tick(fetch)}")
        lines.append(f"O3PipeView:rename:{tick(dispatch)}")
        lines.append(f"O3PipeView:dispatch:{tick(dispatch)}")
        lines.append(f"O3PipeView:issue:{tick(issue)}")
        lines.append(f"O3PipeView:complete:{tick(complete)}")
        if rec["squashed"] or "commit" not in stages:
            lines.append("O3PipeView:retire:0:store:0")
        else:
            lines.append(f"O3PipeView:retire:{tick(stages['commit'])}:store:0")
    return "\n".join(lines) + ("\n" if lines else "")


def write_konata(tracer: PipeTracer, path) -> str:
    """Export + write the Konata text to ``path``; returns the text."""
    text = to_konata(tracer)
    with open(path, "w") as fh:
        fh.write(text)
    return text


# ---------------------------------------------------------------------- validation
def validate_trace_events(payload) -> None:
    """Validate a trace-event payload against the (minimal) Chrome schema.

    Pure-python on purpose — CI runs it without any jsonschema dependency.
    Raises :class:`ValueError` on the first violation.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload must contain a 'traceEvents' list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where}: missing or empty 'name'")
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            raise ValueError(f"{where}: unsupported phase {phase!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: '{key}' must be an integer")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where}: 'ts' must be a non-negative number")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: 'dur' must be a non-negative number")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where}: 'args' must be an object")
