"""Unified metrics registry: counters and histograms under one namespace.

The simulator's statistics live in several places — :class:`SimStats` counters,
:class:`PredictorStatistics` on the value predictor, TAGE/BTB rates, per-cache and
DRAM statistics, structure peak occupancies.  This module folds them into one flat,
introspectable namespace (``sim.*``, ``vp.*``, ``bpu.*``, ``cache.*``, ``dram.*``,
``iq.*`` …) and adds *registered* metrics: histograms and counters that only exist
when ``REPRO_METRICS=1`` opts in (IQ occupancy, wake-up list depths, scheduler skip
distances, squash depths and causes).

The registry follows the repo's kill-switch discipline: with ``REPRO_METRICS``
unset, :func:`maybe_sim_metrics` returns None, every hook site is a single
``is not None`` check, and simulation results are byte-identical to before this
module existed.  When enabled, the drained payload rides in
``SimulationResult.extra["metrics"]`` and round-trips through the JSONL result
store like any other field.
"""

from __future__ import annotations

import os

#: Environment variable enabling registered metrics collection (default off).
METRICS_ENV_VAR = "REPRO_METRICS"


def metrics_enabled() -> bool:
    """True when ``REPRO_METRICS`` explicitly enables metrics collection."""
    return os.environ.get(METRICS_ENV_VAR, "0").lower() in ("1", "on", "true")


def maybe_sim_metrics() -> "MetricsRegistry | None":
    """A fresh registry when metrics are enabled, else None (the hot default)."""
    return MetricsRegistry() if metrics_enabled() else None


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """A named integer-valued histogram with exact or power-of-two buckets.

    ``power_of_two=True`` buckets each sample by its highest set bit (1, 2, 4, 8,
    …) — the right shape for long-tailed quantities such as scheduler skip
    distances and squash depths; exact buckets suit bounded ones (IQ occupancy).
    """

    __slots__ = ("name", "power_of_two", "buckets", "count", "total")

    def __init__(self, name: str, power_of_two: bool = False) -> None:
        self.name = name
        self.power_of_two = power_of_two
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0

    def record(self, value: int, weight: int = 1) -> None:
        if self.power_of_two and value > 1:
            key = 1 << (value.bit_length() - 1)
        else:
            key = value
        self.buckets[key] = self.buckets.get(key, 0) + weight
        self.count += weight
        self.total += value * weight

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "buckets": {str(key): self.buckets[key] for key in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Create-or-return registry of named counters and histograms."""

    __slots__ = ("_counters", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str, power_of_two: bool = False) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, power_of_two)
        return histogram

    def to_dict(self) -> dict:
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].to_dict() for name in sorted(self._histograms)
            },
        }


# ------------------------------------------------------------------ unified drain
def unified_metrics(sim) -> dict:
    """One flat scalar namespace over every statistics source of a simulator.

    Duck-typed on purpose (``sim`` is any object with ``stats``/``predictor``/
    ``bpu``/``hierarchy``/``iq``/``rob``/``lsq``) so this module never imports the
    pipeline package — the simulator imports *us*.
    """
    out: dict[str, float] = {}
    stats = sim.stats.to_dict()
    for name in sorted(stats):
        out[f"sim.{name}"] = stats[name]
    cycles = stats.get("cycles", 0)
    out["sim.ipc"] = stats.get("committed_uops", 0) / cycles if cycles else 0.0

    predictor = getattr(sim, "predictor", None)
    if predictor is not None:
        vp = predictor.stats
        out["vp.lookups"] = vp.lookups
        out["vp.confident_predictions"] = vp.confident_predictions
        out["vp.correct_used"] = vp.correct_used
        out["vp.incorrect_used"] = vp.incorrect_used
        out["vp.unused_correct"] = vp.unused_correct
        out["vp.coverage"] = vp.coverage
        out["vp.accuracy"] = vp.accuracy
        for source in sorted(vp.per_source):
            out[f"vp.component.{source}"] = vp.per_source[source]

    bpu = getattr(sim, "bpu", None)
    if bpu is not None:
        out["bpu.tage.misprediction_rate"] = bpu.tage.misprediction_rate
        out["bpu.tage.high_confidence_misprediction_rate"] = (
            bpu.tage.high_confidence_misprediction_rate
        )
        out["bpu.btb.hit_rate"] = bpu.btb.hit_rate

    hierarchy = getattr(sim, "hierarchy", None)
    if hierarchy is not None:
        for level in ("l1i", "l1d", "l2"):
            cache = getattr(hierarchy, level)
            out[f"cache.{level}.accesses"] = cache.stats.accesses
            out[f"cache.{level}.hits"] = cache.stats.hits
            out[f"cache.{level}.misses"] = cache.stats.misses
            out[f"cache.{level}.hit_rate"] = cache.stats.hit_rate
        dram = hierarchy.dram.stats
        out["dram.reads"] = dram.reads
        out["dram.row_hits"] = dram.row_hits
        out["dram.row_conflicts"] = dram.row_conflicts
        out["dram.queueing_cycles"] = dram.queueing_cycles

    iq = getattr(sim, "iq", None)
    if iq is not None:
        out["iq.peak_occupancy"] = iq.peak_occupancy
    rob = getattr(sim, "rob", None)
    if rob is not None:
        out["rob.peak_occupancy"] = rob.peak_occupancy
    lsq = getattr(sim, "lsq", None)
    if lsq is not None:
        out["lsq.peak_lq_occupancy"] = lsq.peak_lq_occupancy
        out["lsq.peak_sq_occupancy"] = lsq.peak_sq_occupancy
    pool = getattr(sim, "pool", None)
    if pool is not None:
        # Structure occupancy of the in-flight record pool.  For the columnar
        # (SoA) pool the working-set size is read off a column — every slot owns
        # one element per column, so ``len(c_seq)`` *is* the arena size; the
        # object-record pool reports the same number via ``allocated``.
        columns = getattr(pool, "c_seq", None)
        out["pool.allocated"] = len(columns) if columns is not None else pool.allocated
        out["pool.free"] = pool.free_count
        out["pool.deferred"] = pool.deferred_count
    return out


def drain_simulator_metrics(sim) -> dict:
    """The full metrics payload for ``SimulationResult.extra["metrics"]``."""
    payload = {"scalars": unified_metrics(sim)}
    registry = getattr(sim, "metrics", None)
    if registry is not None:
        payload.update(registry.to_dict())
    return payload


def metrics_report(payload: dict) -> str:
    """A ``repro-report``-style text dump of a drained metrics payload."""
    lines: list[str] = []
    scalars = payload.get("scalars", {})
    if scalars:
        lines.append("scalars")
        width = max(len(name) for name in scalars)
        for name in sorted(scalars):
            value = scalars[name]
            rendered = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<{width}}  {rendered}")
    counters = payload.get("counters", {})
    if counters:
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    histograms = payload.get("histograms", {})
    if histograms:
        lines.append("histograms")
        for name in sorted(histograms):
            hist = histograms[name]
            lines.append(
                f"  {name}  count={hist['count']} sum={hist['sum']} mean={hist['mean']:.3g}"
            )
            buckets = hist.get("buckets", {})
            for key in sorted(buckets, key=lambda k: int(k)):
                lines.append(f"    {key:>10}  {buckets[key]}")
    return "\n".join(lines)
