"""Trace capture: run the architectural emulator once, keep the columnar result.

Capture is keyed by ``(workload, capture budget)``: the emulator is deterministic
given the workload's program and initial architectural state, so a captured trace can
be replayed by any number of timing-model configurations.  The capture budget includes
slack over the committed-µ-op target because the pipeline fetches ahead of commit (by
at most the ROB plus the front-end, see ``Simulator.__init__``); replay is bit-exact
as long as the captured trace is at least as long as the lazily-bounded emulation the
simulator would otherwise run.
"""

from __future__ import annotations

from repro.isa.emulator import ArchState, Emulator
from repro.isa.program import Program
from repro.trace.encoding import CapturedTrace

#: Default fetch-ahead slack added to the committed-µ-op target at capture time.
#: Must cover ``rob_size + frontend_capacity + 64`` of any configuration replaying the
#: trace; 512 covers every named configuration (192 + 120 + 64 = 376) with margin.
#: Configurations needing more trigger a longer re-capture (see ``required_length``).
DEFAULT_TRACE_SLACK = 512


def required_length(max_uops: int, config) -> int:
    """Trace length needed to replay ``config`` for ``max_uops`` committed µ-ops.

    Mirrors the simulator's bounded-slack emulator budget: fetch runs ahead of commit
    by at most the ROB plus the front-end.
    """
    return max_uops + config.rob_size + config.frontend_capacity + 64


def capture_budget(max_uops: int, minimum: int = 0) -> int:
    """Capture budget for a ``max_uops`` run: default slack, or more if required."""
    return max(max_uops + DEFAULT_TRACE_SLACK, minimum)


def capture_trace(
    program: Program, budget: int, state: ArchState | None = None
) -> CapturedTrace:
    """Emulate ``program`` for up to ``budget`` µ-ops and encode the committed stream.

    Uses the emulator's batched fast path (:meth:`Emulator.run_batch`, bit-identical
    to the step-wise reference) — capture is the one place that materialises a whole
    stream at once.
    """
    emulator = Emulator(program, state=state)
    instructions = emulator.run_batch(budget)
    return CapturedTrace.from_instructions(
        program, instructions, halted=emulator.halted, budget=budget
    )


def capture_workload_trace(workload, budget: int) -> CapturedTrace:
    """Capture a workload's committed trace from a fresh architectural state."""
    return capture_trace(workload.program, budget, state=workload.make_state())
