"""In-process trace cache: capture each workload's committed stream at most once.

The cache sits between the execution layers and the emulator, mirroring the result
cache → result store → simulate layering of :mod:`repro.analysis.runner`:

1. an in-memory hit (same process) is free — the materialised ``DynInst`` tuple is
   shared by every simulation replaying it;
2. an on-disk hit (``REPRO_TRACE_STORE``, a previous process/session) costs one
   columnar decode;
3. anything left is captured by running the architectural emulator once.

Entries are keyed by workload name; an entry is reused only when its capture covers
the requested replay length (:meth:`CapturedTrace.covers`), so a configuration with an
unusually deep fetch-ahead window transparently triggers a longer re-capture.

``REPRO_TRACE_CACHE=0`` disables the cache globally (every simulation then emulates
inline, the pre-trace behaviour) — useful for the determinism tests and for A/B
benchmarking.
"""

from __future__ import annotations

import os

from repro.trace.capture import capture_budget, capture_workload_trace, required_length
from repro.trace.encoding import CapturedTrace
from repro.trace.store import TraceStore, default_trace_store

#: Environment variable disabling the trace cache when set to ``0``/``off``/``false``.
TRACE_CACHE_ENV_VAR = "REPRO_TRACE_CACHE"


def trace_cache_enabled() -> bool:
    """True unless ``REPRO_TRACE_CACHE`` explicitly disables trace reuse."""
    return os.environ.get(TRACE_CACHE_ENV_VAR, "1").lower() not in ("0", "off", "false")


class TraceCache:
    """Per-process cache of captured workload traces."""

    def __init__(self, store: TraceStore | None = None) -> None:
        self._traces: dict[tuple[str, int], CapturedTrace] = {}
        self._store = store
        self.captures = 0
        self.hits = 0
        self.store_hits = 0

    def _resolve_store(self) -> TraceStore | None:
        return self._store if self._store is not None else default_trace_store()

    def trace_for(self, workload, max_uops: int, config) -> CapturedTrace:
        """The committed trace of ``workload``, long enough to replay ``config``.

        The required length mirrors the simulator's fetch-ahead window
        (:func:`repro.trace.capture.required_length`); reuse order is
        memory → disk → capture.
        """
        return self._acquire(workload, required_length(max_uops, config), max_uops)

    def trace_for_many(self, workload, requests) -> CapturedTrace:
        """One trace covering every ``(max_uops, config)`` request (multi-replay).

        The one-decode-N-consumers entry point of the multi-config replay engine
        (:mod:`repro.pipeline.multi_replay`): the required length is the *maximum*
        fetch-ahead window across the requested configuration planes, so a batch
        mixing shallow and deep front-ends costs one capture instead of the serial
        path's re-capture ratchet (capture for the shallow config, throw away,
        re-capture longer when the deep config arrives).
        """
        requests = list(requests)
        if not requests:
            raise ValueError("trace_for_many needs at least one (max_uops, config)")
        needed = max(required_length(m, config) for m, config in requests)
        return self._acquire(workload, needed, max(m for m, _ in requests))

    def trace_for_length(self, workload, length: int) -> CapturedTrace:
        """A trace of at least ``length`` committed µ-ops (trace-level studies).

        Used by consumers that walk the committed stream directly (offline predictor
        evaluation, workload characterisation) rather than replaying it through the
        timing model.
        """
        return self._acquire(workload, length, length)

    def _acquire(self, workload, needed: int, max_uops: int) -> CapturedTrace:
        """Memory → disk → capture, re-capturing when a cached trace is too short.

        Entries are keyed by the *program object*, not the workload name: an ad-hoc
        workload sharing a registry name (a different program) must never replay the
        registry twin's trace.  The trace holds its program alive, so the id cannot
        be recycled while the entry exists; the identity check makes that explicit.
        """
        program = workload.program
        key = (workload.name, id(program))
        trace = self._traces.get(key)
        if trace is not None and trace.program is program and trace.covers(needed):
            self.hits += 1
            return trace
        store = self._resolve_store()
        if store is not None:
            stored = store.load(program)
            if stored is not None and stored.covers(needed):
                self.store_hits += 1
                self._traces[key] = stored
                return stored
        trace = capture_workload_trace(workload, capture_budget(max_uops, needed))
        self.captures += 1
        self._traces[key] = trace
        if store is not None:
            store.save(trace)
        return trace

    def clear(self) -> None:
        """Drop every cached trace (the counters survive)."""
        self._traces.clear()

    def __len__(self) -> int:
        return len(self._traces)


#: Shared per-process cache used by the execution layers (campaign executor, runner,
#: predictor evaluation).  Clear with ``shared_trace_cache.clear()``.
shared_trace_cache = TraceCache()
