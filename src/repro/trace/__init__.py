"""Trace capture/replay subsystem.

Captures a workload's committed µ-op stream once per (workload, budget) into a compact
columnar encoding, caches it in process (and optionally on disk), and replays it into
any number of timing-model configurations — see docs/performance.md.
"""

from repro.trace.cache import (
    TRACE_CACHE_ENV_VAR,
    TraceCache,
    shared_trace_cache,
    trace_cache_enabled,
)
from repro.trace.capture import (
    DEFAULT_TRACE_SLACK,
    capture_budget,
    capture_trace,
    capture_workload_trace,
    required_length,
)
from repro.trace.encoding import (
    TRACE_FORMAT_VERSION,
    CapturedTrace,
    TraceEncodingError,
    program_fingerprint,
)
from repro.trace.store import TRACE_STORE_ENV_VAR, TraceStore, default_trace_store

__all__ = [
    "TRACE_CACHE_ENV_VAR",
    "TRACE_FORMAT_VERSION",
    "TRACE_STORE_ENV_VAR",
    "DEFAULT_TRACE_SLACK",
    "CapturedTrace",
    "TraceCache",
    "TraceEncodingError",
    "TraceStore",
    "capture_budget",
    "capture_trace",
    "capture_workload_trace",
    "default_trace_store",
    "program_fingerprint",
    "required_length",
    "shared_trace_cache",
    "trace_cache_enabled",
]
