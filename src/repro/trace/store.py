"""Optional on-disk trace store (one binary file per captured trace).

Lives alongside the campaign result store: point ``REPRO_TRACE_STORE`` at a directory
and every trace capture lands on disk, so later processes (e.g. repeated benchmark
sessions, CI runs restoring a cache) skip the emulation entirely.  Files are
content-addressed by the program fingerprint — a workload whose kernel changes gets a
new file automatically, and a stored trace is only reused when its blob round-trips
against the *current* program (see :meth:`CapturedTrace.from_bytes`).

A trace file is rewritten when a longer capture of the same program supersedes it (a
configuration with a larger fetch-ahead window asked for more slack); the store keeps
exactly one file per program.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.faults import InjectedFault, active_faults
from repro.faults.sites import (
    TRACE_SAVE_CORRUPT,
    TRACE_SAVE_CRASH,
    TRACE_SAVE_TRUNCATED,
)
from repro.isa.program import Program
from repro.trace.encoding import CapturedTrace, TraceEncodingError, program_fingerprint

#: Environment variable naming the default on-disk trace store directory (opt-in).
TRACE_STORE_ENV_VAR = "REPRO_TRACE_STORE"


class TraceStore:
    """A directory of captured traces, keyed by program fingerprint."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)

    def _path_for(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint[:32]}.trace"

    def load(self, program: Program) -> CapturedTrace | None:
        """The stored trace for ``program``, or ``None`` (missing, corrupt or stale)."""
        path = self._path_for(program_fingerprint(program))
        if not path.exists():
            return None
        try:
            return CapturedTrace.from_bytes(path.read_bytes(), program)
        except (TraceEncodingError, OSError):
            return None

    def save(self, trace: CapturedTrace) -> Path:
        """Persist ``trace`` (atomically) and return its path.

        Concurrent writers of the same fingerprint (two campaign workers capturing
        one workload) must never share a temp file: each save stages through its own
        ``mkstemp`` name in the store directory and publishes with an atomic
        ``os.replace``, so readers observe either the old complete file or the new
        complete file — never interleaved bytes.  The payload is fsynced before the
        rename; a crash mid-save leaves only a ``*.tmp`` orphan, which
        :meth:`load`/:meth:`__len__` never look at (they match ``*.trace`` only).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path_for(trace.fingerprint)
        blob = trace.to_bytes()
        faults = active_faults()
        if faults is not None:
            if faults.fires(TRACE_SAVE_TRUNCATED) is not None:
                # A torn blob published whole (no atomic-rename semantics): the
                # column table no longer matches the payload length, so loads
                # reject it and the next writer recaptures.
                blob = blob[: max(1, len(blob) // 2)]
            if faults.fires(TRACE_SAVE_CORRUPT) is not None:
                # Silent bit rot with the length intact: only the payload
                # checksum catches it.
                flip_at = (blob.find(b"\n") + 1 + len(blob)) // 2
                mutable = bytearray(blob)
                mutable[flip_at] ^= 0xFF
                blob = bytes(mutable)
        handle, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{trace.fingerprint[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(blob)
                stream.flush()
                os.fsync(stream.fileno())
            if faults is not None:
                # Simulated SIGKILL between mkstemp and rename: nothing is
                # published, the tmp orphan stays for fsck to sweep.
                faults.crash_if(TRACE_SAVE_CRASH)
            os.replace(tmp_name, path)
        except InjectedFault:
            raise
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*.trace"))


# ---------------------------------------------------------------- default store (env)
_default_store: TraceStore | None = None
_default_store_path: str | None = None


def default_trace_store() -> TraceStore | None:
    """The process-wide trace store named by ``REPRO_TRACE_STORE``, or ``None``."""
    global _default_store, _default_store_path
    path = os.environ.get(TRACE_STORE_ENV_VAR)
    if not path:
        _default_store = None
        _default_store_path = None
        return None
    if _default_store is None or _default_store_path != path:
        _default_store = TraceStore(path)
        _default_store_path = path
    return _default_store
