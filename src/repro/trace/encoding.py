"""Compact columnar encoding of a committed µ-op trace.

A :class:`CapturedTrace` stores the dynamic fields of a committed
:class:`~repro.isa.trace.DynInst` stream as parallel typed arrays (one column per
field) instead of one Python object per µ-op.  Static fields are *interned*: a dynamic
record stores only its static PC, and the µ-op itself is recovered from the owning
:class:`~repro.isa.program.Program` at replay time.  Optional columns (result, flags,
address, store value) are stored sparsely — a one-byte presence flag per µ-op plus a
dense value array holding only the present entries.

Replay is lazy: :meth:`CapturedTrace.instructions` materialises the ``DynInst`` tuple
once per trace and caches it, so every simulation replaying the same capture shares the
same (immutable, never-mutated-by-the-pipeline) ``DynInst`` objects with zero copying.

The same columns serialise to a flat binary blob (:meth:`CapturedTrace.to_bytes` /
:meth:`CapturedTrace.from_bytes`) for the on-disk trace store
(:mod:`repro.trace.store`).
"""

from __future__ import annotations

import hashlib
import json
import sys
import zlib
from array import array
from collections.abc import Iterable, Iterator

from repro.errors import ReproError
from repro.isa.program import Program
from repro.isa.trace import DynInst

#: Bump whenever the binary layout (or the semantics of a column) changes; stored
#: traces with a different version are ignored by the store.
TRACE_FORMAT_VERSION = 1

#: Optional (sparse) DynInst columns, in serialisation order.
_OPTIONAL_FIELDS = ("result", "flags_result", "flags_in", "addr", "store_value")


class TraceEncodingError(ReproError):
    """A trace blob could not be decoded (corrupt, wrong version, wrong program)."""


def program_fingerprint(program: Program) -> str:
    """Content hash identifying a program's static µ-op stream (the intern table).

    Two programs share a fingerprint iff replaying a trace captured from one against
    the other reconstitutes identical ``DynInst`` records, so the fingerprint is the
    key of the on-disk trace store.
    """
    hasher = hashlib.sha256()
    hasher.update(program.name.encode())
    for pc, uop in enumerate(program.uops):
        hasher.update(f"{pc}:{uop}\n".encode())
    for label in sorted(program.labels):
        hasher.update(f"@{label}={program.labels[label]}\n".encode())
    return hasher.hexdigest()


def validate_blob(blob: bytes) -> tuple[dict, memoryview]:
    """Structurally validate a trace blob without a program: header + payload.

    Checks everything that can be checked from the bytes alone — header syntax,
    format version, byte order, column-length/payload-length consistency, and the
    payload checksum when the header carries one (pre-CRC legacy blobs pass
    unverified).  Raises :class:`TraceEncodingError` on any violation; the program
    fingerprint is *not* checked (that needs the program — see
    :meth:`CapturedTrace.from_bytes`).  This is the audit primitive behind
    ``repro-campaign fsck``.
    """
    newline = blob.find(b"\n")
    if newline < 0:
        raise TraceEncodingError("trace blob has no header")
    try:
        header = json.loads(blob[:newline])
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise TraceEncodingError(f"corrupt trace header: {error}") from error
    if not isinstance(header, dict):
        raise TraceEncodingError("trace header is not an object")
    if header.get("format") != TRACE_FORMAT_VERSION:
        raise TraceEncodingError(f"unsupported trace format {header.get('format')}")
    if header.get("byteorder") != sys.byteorder:
        raise TraceEncodingError("trace captured on a different byte order")
    payload = memoryview(blob)[newline + 1 :]
    column_bytes = header.get("column_bytes")
    if not isinstance(column_bytes, list) or not all(
        isinstance(size, int) and size >= 0 for size in column_bytes
    ):
        raise TraceEncodingError("trace header has no valid column table")
    if sum(column_bytes) != len(payload):
        raise TraceEncodingError("trace blob is truncated")
    expected_crc = header.get("payload_crc32")
    if expected_crc is not None and zlib.crc32(payload) != expected_crc:
        raise TraceEncodingError("trace payload checksum mismatch (corrupt blob)")
    return header, payload


class CapturedTrace:
    """One workload's committed µ-op stream in columnar form.

    Attributes
    ----------
    program:
        The program the trace was captured from (owns the interned static µ-ops).
    length:
        Number of dynamic µ-ops captured.
    halted:
        True when the program ran to completion within the capture budget — the trace
        is the *entire* committed stream and satisfies any replay length requirement.
    budget:
        The capture budget (µ-ops) the emulator ran with.
    """

    __slots__ = (
        "program",
        "length",
        "halted",
        "budget",
        "fingerprint",
        "_pcs",
        "_next_pcs",
        "_taken",
        "_src_offsets",
        "_src_values",
        "_presence",
        "_values",
        "_insts",
    )

    def __init__(
        self,
        program: Program,
        pcs: array,
        next_pcs: array,
        taken: bytearray,
        src_offsets: array,
        src_values: array,
        presence: dict[str, bytearray],
        values: dict[str, array],
        halted: bool,
        budget: int,
        fingerprint: str | None = None,
    ) -> None:
        self.program = program
        self.length = len(pcs)
        self.halted = halted
        self.budget = budget
        self.fingerprint = (
            fingerprint if fingerprint is not None else program_fingerprint(program)
        )
        self._pcs = pcs
        self._next_pcs = next_pcs
        self._taken = taken
        self._src_offsets = src_offsets
        self._src_values = src_values
        self._presence = presence
        self._values = values
        self._insts: tuple[DynInst, ...] | None = None

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_instructions(
        cls,
        program: Program,
        instructions: Iterable[DynInst],
        halted: bool,
        budget: int,
    ) -> "CapturedTrace":
        """Capture a committed ``DynInst`` stream.

        The columnar encoding is built *lazily* (:meth:`_ensure_columns`): an
        in-process capture already holds the materialised stream, which replay
        shares directly, so the columns are only needed if the trace is
        serialised to the on-disk store.
        """
        trace = cls.__new__(cls)
        trace.program = program
        instructions = tuple(instructions)
        trace.length = len(instructions)
        trace.halted = halted
        trace.budget = budget
        trace.fingerprint = program_fingerprint(program)
        trace._pcs = None
        trace._next_pcs = None
        trace._taken = None
        trace._src_offsets = None
        trace._src_values = None
        trace._presence = None
        trace._values = None
        trace._insts = instructions
        return trace

    def _ensure_columns(self) -> None:
        """Build the columnar encoding from the captured stream (serialisation)."""
        if self._pcs is not None:
            return
        instructions = self._insts
        pcs = array("i")
        next_pcs = array("i")
        taken = bytearray()
        src_offsets = array("I", [0])
        src_values = array("Q")
        presence = {name: bytearray() for name in _OPTIONAL_FIELDS}
        values = {name: array("Q") for name in _OPTIONAL_FIELDS}
        # One bound-method tuple per column, hoisted out of the per-µ-op loop.
        pcs_append = pcs.append
        next_pcs_append = next_pcs.append
        taken_append = taken.append
        src_values_extend = src_values.extend
        src_offsets_append = src_offsets.append
        optional = [
            (name, presence[name].append, values[name].append)
            for name in _OPTIONAL_FIELDS
        ]
        for inst in instructions:
            pcs_append(inst.pc)
            next_pcs_append(inst.next_pc)
            taken_append(1 if inst.taken else 0)
            src_values_extend(inst.src_values)
            src_offsets_append(len(src_values))
            for name, presence_append, values_append in optional:
                value = getattr(inst, name)
                if value is None:
                    presence_append(0)
                else:
                    presence_append(1)
                    values_append(value)
        self._pcs = pcs
        self._next_pcs = next_pcs
        self._taken = taken
        self._src_offsets = src_offsets
        self._src_values = src_values
        self._presence = presence
        self._values = values

    # ------------------------------------------------------------------ replay
    def instructions(self) -> tuple[DynInst, ...]:
        """Materialise (once) and return the decoded ``DynInst`` stream.

        The tuple is cached on the trace: every simulation replaying this capture
        shares the same ``DynInst`` objects (the timing pipeline never mutates them).
        """
        if self._insts is None:
            self._insts = tuple(self._decode())
        return self._insts

    def replay(self) -> Iterator[DynInst]:
        """A fresh iterator over the committed stream (what the simulator consumes)."""
        return iter(self.instructions())

    def _decode(self) -> Iterator[DynInst]:
        uops = self.program.uops
        pcs = self._pcs
        next_pcs = self._next_pcs
        taken = self._taken
        src_offsets = self._src_offsets
        src_values = self._src_values
        presence = [self._presence[name] for name in _OPTIONAL_FIELDS]
        values = [self._values[name] for name in _OPTIONAL_FIELDS]
        cursors = [0] * len(_OPTIONAL_FIELDS)
        for seq in range(self.length):
            optional: list[int | None] = []
            for column in range(len(_OPTIONAL_FIELDS)):
                if presence[column][seq]:
                    optional.append(values[column][cursors[column]])
                    cursors[column] += 1
                else:
                    optional.append(None)
            pc = pcs[seq]
            yield DynInst(
                seq=seq,
                pc=pc,
                uop=uops[pc],
                src_values=tuple(src_values[src_offsets[seq] : src_offsets[seq + 1]]),
                result=optional[0],
                flags_result=optional[1],
                flags_in=optional[2],
                addr=optional[3],
                store_value=optional[4],
                taken=bool(taken[seq]),
                next_pc=next_pcs[seq],
            )

    def covers(self, required_length: int) -> bool:
        """True if replaying this trace is equivalent to emulating ``required_length``.

        A complete (halted) trace covers any requirement; a budget-truncated one only
        covers requirements within its capture budget.
        """
        return self.halted or self.length >= required_length

    def __len__(self) -> int:
        return self.length

    # ------------------------------------------------------------------ serialisation
    def to_bytes(self) -> bytes:
        """Serialise header + columns into one binary blob (for the on-disk store)."""
        self._ensure_columns()
        columns: list[bytes] = [
            self._pcs.tobytes(),
            self._next_pcs.tobytes(),
            bytes(self._taken),
            self._src_offsets.tobytes(),
            self._src_values.tobytes(),
        ]
        for name in _OPTIONAL_FIELDS:
            columns.append(bytes(self._presence[name]))
            columns.append(self._values[name].tobytes())
        payload = b"".join(columns)
        header = json.dumps(
            {
                "format": TRACE_FORMAT_VERSION,
                "byteorder": sys.byteorder,
                "program": self.fingerprint,
                "program_name": self.program.name,
                "length": self.length,
                "halted": self.halted,
                "budget": self.budget,
                "column_bytes": [len(column) for column in columns],
                # Header keys are additive (readers use .get), so stamping the
                # checksum does not bump the format version: pre-CRC readers
                # ignore it, and pre-CRC blobs are accepted without verification.
                "payload_crc32": zlib.crc32(payload),
            },
            sort_keys=True,
        ).encode()
        return header + b"\n" + payload

    @classmethod
    def from_bytes(cls, blob: bytes, program: Program) -> "CapturedTrace":
        """Decode a blob produced by :meth:`to_bytes` against ``program``.

        Raises :class:`TraceEncodingError` on format/version/byte-order mismatch,
        truncation, a payload-checksum mismatch, or if the blob was captured from a
        different program.
        """
        header, payload = validate_blob(blob)
        fingerprint = program_fingerprint(program)
        if header.get("program") != fingerprint:
            raise TraceEncodingError(
                f"trace was captured from a different program "
                f"({header.get('program_name')!r})"
            )
        column_bytes = header["column_bytes"]
        offsets = [0]
        for size in column_bytes:
            offsets.append(offsets[-1] + size)
        chunks = [payload[offsets[i] : offsets[i + 1]] for i in range(len(column_bytes))]

        def as_array(typecode: str, chunk: memoryview) -> array:
            out = array(typecode)
            out.frombytes(chunk)
            return out

        pcs = as_array("i", chunks[0])
        next_pcs = as_array("i", chunks[1])
        taken = bytearray(chunks[2])
        src_offsets = as_array("I", chunks[3])
        src_values = as_array("Q", chunks[4])
        presence: dict[str, bytearray] = {}
        values: dict[str, array] = {}
        for index, name in enumerate(_OPTIONAL_FIELDS):
            presence[name] = bytearray(chunks[5 + 2 * index])
            values[name] = as_array("Q", chunks[6 + 2 * index])
        return cls(
            program, pcs, next_pcs, taken, src_offsets, src_values, presence, values,
            halted=bool(header["halted"]), budget=int(header["budget"]),
            fingerprint=fingerprint,
        )
