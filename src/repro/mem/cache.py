"""Set-associative cache model with LRU replacement and MSHR accounting.

The timing simulator uses caches as *latency oracles*: an access at a given cycle
returns whether it hit and lets the hierarchy accumulate the resulting latency.  Tag
arrays and replacement state are modelled exactly; contention is approximated through a
bounded number of MSHRs (outstanding misses) per cache, matching the baseline's 64-MSHR
L1D/L2 (Table 1).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class CacheStatistics:
    """Hit/miss/prefetch counters of one cache level."""

    __slots__ = ("accesses", "hits", "misses", "prefetches", "mshr_stall_cycles")

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.prefetches = 0
        self.mshr_stall_cycles = 0

    @property
    def hit_rate(self) -> float:
        """Hit rate over demand accesses."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Miss rate over demand accesses."""
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of cache: set-associative, LRU, write-allocate."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        line_size: int = 64,
        latency: int = 2,
        mshrs: int = 64,
    ) -> None:
        if size_bytes <= 0 or line_size <= 0 or associativity <= 0:
            raise ConfigurationError(f"{name}: cache geometry must be positive")
        if size_bytes % (line_size * associativity):
            raise ConfigurationError(f"{name}: size must be a multiple of line*associativity")
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.latency = latency
        self.mshrs = mshrs
        self.num_sets = size_bytes // (line_size * associativity)
        # Each set is an MRU-ordered list of line tags.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        # Completion cycles of outstanding misses (bounded by the MSHR count).
        self._outstanding: list[int] = []
        self.stats = CacheStatistics()

    # ------------------------------------------------------------------ geometry
    def line_address(self, address: int) -> int:
        """Line-aligned address of ``address``."""
        return address // self.line_size

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    # ------------------------------------------------------------------ access
    def probe(self, address: int) -> bool:
        """True if ``address`` currently hits, without updating any state."""
        line = self.line_address(address)
        return line in self._sets[self._set_index(line)]

    def access(self, address: int, *, is_prefetch: bool = False) -> bool:
        """Access ``address``; returns hit/miss and updates LRU + contents.

        Misses allocate the line (write-allocate for stores as well); the caller is
        responsible for charging the next-level latency.
        """
        line = address // self.line_size
        ways = self._sets[line % self.num_sets]
        if is_prefetch:
            self.stats.prefetches += 1
        else:
            self.stats.accesses += 1
        if ways and ways[0] == line:
            # Already most-recently-used (the dominant case for sequential
            # instruction fetch): hit with no list reshuffle.
            if not is_prefetch:
                self.stats.hits += 1
            return True
        if line in ways:
            if not is_prefetch:
                self.stats.hits += 1
            ways.remove(line)
            ways.insert(0, line)
            return True
        if not is_prefetch:
            self.stats.misses += 1
        ways.insert(0, line)
        if len(ways) > self.associativity:
            ways.pop()
        return False

    def fill(self, address: int) -> None:
        """Install a line without counting a demand access (prefetch fill)."""
        self.access(address, is_prefetch=True)

    # ------------------------------------------------------------------ MSHRs
    def mshr_delay(self, cycle: int, completion_cycle: int) -> int:
        """Account an outstanding miss; returns extra delay if all MSHRs are busy."""
        self._outstanding = [c for c in self._outstanding if c > cycle]
        delay = 0
        if len(self._outstanding) >= self.mshrs:
            earliest = min(self._outstanding)
            delay = max(0, earliest - cycle)
            self.stats.mshr_stall_cycles += delay
        self._outstanding.append(completion_cycle + delay)
        return delay
