"""Memory hierarchy substrate: caches, MSHRs, stride prefetcher and DRAM model."""

from repro.mem.cache import Cache, CacheStatistics
from repro.mem.dram import DRAMModel, DRAMStatistics
from repro.mem.hierarchy import MemoryHierarchy, MemoryHierarchyConfig
from repro.mem.prefetcher import StridePrefetcher

__all__ = [
    "Cache",
    "CacheStatistics",
    "DRAMModel",
    "DRAMStatistics",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
    "StridePrefetcher",
]
