"""The full memory hierarchy of the baseline machine (Table 1).

``L1I`` and ``L1D`` are 4-way 32 KB caches (2-cycle L1D), backed by a unified 16-way
2 MB L2 (12 cycles) with a degree-8 stride prefetcher, backed by the DDR3-like DRAM
model (75–185 cycles).  The hierarchy exposes three latency oracles used by the
pipeline: instruction fetch, data load and data store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.cache import Cache
from repro.mem.dram import DRAMModel
from repro.mem.prefetcher import StridePrefetcher


@dataclass
class MemoryHierarchyConfig:
    """Geometry and latency knobs of the memory hierarchy (defaults: Table 1)."""

    l1i_size: int = 32 * 1024
    l1i_assoc: int = 4
    l1i_latency: int = 1
    l1d_size: int = 32 * 1024
    l1d_assoc: int = 4
    l1d_latency: int = 2
    l1_mshrs: int = 64
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 16
    l2_latency: int = 12
    l2_mshrs: int = 64
    line_size: int = 64
    prefetch_degree: int = 8
    prefetch_distance: int = 1
    dram_min_latency: int = 75
    dram_max_latency: int = 185


class MemoryHierarchy:
    """L1I + L1D + unified L2 + stride prefetcher + DRAM."""

    def __init__(self, config: MemoryHierarchyConfig | None = None) -> None:
        self.config = config if config is not None else MemoryHierarchyConfig()
        cfg = self.config
        self.l1i = Cache(
            "L1I", cfg.l1i_size, cfg.l1i_assoc, cfg.line_size, cfg.l1i_latency, cfg.l1_mshrs
        )
        self.l1d = Cache(
            "L1D", cfg.l1d_size, cfg.l1d_assoc, cfg.line_size, cfg.l1d_latency, cfg.l1_mshrs
        )
        self.l2 = Cache(
            "L2", cfg.l2_size, cfg.l2_assoc, cfg.line_size, cfg.l2_latency, cfg.l2_mshrs
        )
        self.prefetcher = StridePrefetcher(cfg.prefetch_degree, cfg.prefetch_distance)
        self.dram = DRAMModel(cfg.dram_min_latency, cfg.dram_max_latency)

    # ------------------------------------------------------------------ data side
    def _l2_and_beyond(self, address: int, cycle: int) -> int:
        """Latency of an access that missed in the L1D, starting at the L2."""
        latency = self.config.l2_latency
        if not self.l2.access(address):
            dram_latency = self.dram.read(address, cycle + latency)
            latency += dram_latency
            latency += self.l2.mshr_delay(cycle, cycle + latency)
        return latency

    def load(self, address: int, pc: int, cycle: int) -> int:
        """Total latency, in cycles, of a demand load issued at ``cycle``."""
        latency = self.config.l1d_latency
        if not self.l1d.access(address):
            latency += self._l2_and_beyond(address, cycle + latency)
            latency += self.l1d.mshr_delay(cycle, cycle + latency)
        for prefetch_address in self.prefetcher.observe(pc, address):
            self.l2.fill(prefetch_address)
        return latency

    def store(self, address: int, pc: int, cycle: int) -> int:
        """Latency charged to a store's cache update (performed post-commit).

        Stores retire through a write buffer, so this latency does not stall commit in
        the pipeline model; it is still computed so that store misses warm the caches
        and occupy DRAM banks.
        """
        latency = self.config.l1d_latency
        if not self.l1d.access(address):
            latency += self._l2_and_beyond(address, cycle + latency)
        for prefetch_address in self.prefetcher.observe(pc, address):
            self.l2.fill(prefetch_address)
        return latency

    # ------------------------------------------------------------------ instruction side
    def fetch(self, pc: int, cycle: int) -> int:
        """Latency of fetching the cache line holding static ``pc``.

        Static PCs are µ-op indices; they are scaled by a nominal 4 bytes per µ-op to
        form instruction addresses.
        """
        address = pc * 4
        latency = self.config.l1i_latency
        if not self.l1i.access(address):
            latency += self._l2_and_beyond(address, cycle + latency)
        return latency
