"""Single-channel DDR3-like main-memory latency model.

Table 1 of the paper specifies a single channel of DDR3-1600 (11-11-11), 2 ranks,
8 banks per rank, 8K row buffers, with a minimum read latency of 75 cycles and a
maximum of 185 cycles (CPU cycles at 4 GHz).  This model captures the aspects that
matter to the pipeline study:

* row-buffer hits are cheap, row conflicts expensive;
* a bank can only serve one request at a time, so bursts of misses queue up;
* latency is bounded by the paper's [75, 185] cycle window.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class DRAMStatistics:
    """Access counters of the DRAM model."""

    __slots__ = ("reads", "row_hits", "row_conflicts", "queueing_cycles")

    def __init__(self) -> None:
        self.reads = 0
        self.row_hits = 0
        self.row_conflicts = 0
        self.queueing_cycles = 0

    @property
    def row_hit_rate(self) -> float:
        """Fraction of reads that hit an open row."""
        return self.row_hits / self.reads if self.reads else 0.0


class DRAMModel:
    """Bank-aware open-page DRAM latency model."""

    def __init__(
        self,
        min_latency: int = 75,
        max_latency: int = 185,
        row_conflict_penalty: int = 36,
        ranks: int = 2,
        banks_per_rank: int = 8,
        row_size: int = 8192,
        bank_occupancy: int = 24,
    ) -> None:
        if min_latency <= 0 or max_latency < min_latency:
            raise ConfigurationError("invalid DRAM latency window")
        self.min_latency = min_latency
        self.max_latency = max_latency
        self.row_conflict_penalty = row_conflict_penalty
        self.num_banks = ranks * banks_per_rank
        self.row_size = row_size
        self.bank_occupancy = bank_occupancy
        self._open_rows: list[int | None] = [None] * self.num_banks
        self._bank_ready: list[int] = [0] * self.num_banks
        self.stats = DRAMStatistics()

    def _bank_of(self, address: int) -> int:
        return (address // self.row_size) % self.num_banks

    def _row_of(self, address: int) -> int:
        return address // (self.row_size * self.num_banks)

    def read(self, address: int, cycle: int) -> int:
        """Latency (in CPU cycles) of a read issued at ``cycle``."""
        self.stats.reads += 1
        bank = self._bank_of(address)
        row = self._row_of(address)
        latency = self.min_latency
        if self._open_rows[bank] == row:
            self.stats.row_hits += 1
        else:
            self.stats.row_conflicts += 1
            latency += self.row_conflict_penalty
            self._open_rows[bank] = row
        queue_delay = max(0, self._bank_ready[bank] - cycle)
        self.stats.queueing_cycles += queue_delay
        latency += queue_delay
        latency = min(latency, self.max_latency)
        self._bank_ready[bank] = cycle + queue_delay + self.bank_occupancy
        return latency
