"""Stride prefetcher attached to the L2 cache (Table 1: degree 8, distance 1).

The prefetcher observes demand accesses (PC, address), detects constant strides per
static load/store, and issues prefetch fills for the next ``degree`` lines.  It is the
reason strided-streaming workloads (e.g. the ``libquantum``-like analogues) do not pay a
DRAM access per element.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class StridePrefetcherStatistics:
    """Counters for prefetch training and issue."""

    __slots__ = ("trained", "issued")

    def __init__(self) -> None:
        self.trained = 0
        self.issued = 0


class StridePrefetcher:
    """Per-PC stride detector issuing ``degree`` prefetches at ``distance`` strides ahead."""

    def __init__(self, degree: int = 8, distance: int = 1, table_entries: int = 256) -> None:
        if degree <= 0 or distance <= 0 or table_entries <= 0:
            raise ConfigurationError("prefetcher parameters must be positive")
        self.degree = degree
        self.distance = distance
        self.table_entries = table_entries
        # pc -> (last_address, last_stride, confidence)
        self._table: dict[int, tuple[int, int, int]] = {}
        self.stats = StridePrefetcherStatistics()

    def observe(self, pc: int, address: int) -> list[int]:
        """Record a demand access and return the addresses to prefetch (possibly empty)."""
        entry = self._table.get(pc)
        prefetches: list[int] = []
        if entry is None:
            if len(self._table) >= self.table_entries:
                # Evict an arbitrary (oldest-inserted) entry to bound the table.
                self._table.pop(next(iter(self._table)))
            self._table[pc] = (address, 0, 0)
            return prefetches
        last_address, last_stride, confidence = entry
        stride = address - last_address
        if stride != 0 and stride == last_stride:
            confidence = min(confidence + 1, 3)
        elif stride != 0:
            confidence = 0
        if confidence >= 1 and stride != 0:
            self.stats.trained += 1
            for step in range(self.distance, self.distance + self.degree):
                prefetches.append(address + stride * step)
            self.stats.issued += len(prefetches)
        self._table[pc] = (address, stride if stride != 0 else last_stride, confidence)
        return prefetches
