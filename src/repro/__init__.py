"""repro — a from-scratch reproduction of *EOLE: Paving the Way for an Effective
Implementation of Value Prediction* (Perais & Seznec, ISCA 2014).

The package is organised bottom-up:

* :mod:`repro.isa` — the µ-op ISA, programs and the architectural emulator;
* :mod:`repro.vp` — value predictors (VTAGE, 2-Delta Stride, the paper's hybrid, FPC);
* :mod:`repro.bpu` — TAGE branch prediction with confidence, BTB, RAS;
* :mod:`repro.mem` — caches, stride prefetcher and the DRAM model;
* :mod:`repro.ooo` — ROB, issue queue, LSQ, Store Sets, FU pool, banked PRF;
* :mod:`repro.core` — the paper's contribution: Early/Late Execution and EOLE variants;
* :mod:`repro.pipeline` — the cycle-level simulator and the named machine configurations;
* :mod:`repro.workloads` — the 19 synthetic SPEC-analogue kernels;
* :mod:`repro.analysis` — experiment harness regenerating every table and figure.

Quickstart::

    from repro.pipeline import baseline_vp_6_64, eole_4_64, simulate
    from repro.workloads import workload

    wl = workload("namd")
    base = simulate(baseline_vp_6_64(), wl.program, max_uops=8000,
                    arch_state=wl.make_state(), workload_name=wl.name)
    eole = simulate(eole_4_64(), wl.program, max_uops=8000,
                    arch_state=wl.make_state(), workload_name=wl.name)
    print(base.ipc, eole.ipc, eole.ipc / base.ipc)
"""

from repro.core import EOLEConfig, EOLEVariant, eole_config
from repro.pipeline import (
    PipelineConfig,
    SimulationResult,
    Simulator,
    baseline_6_64,
    baseline_vp_6_64,
    eole_4_64,
    eole_6_64,
    named_config,
    simulate,
)
from repro.workloads import Workload, WorkloadSpec, all_workloads, workload

__version__ = "1.0.0"

__all__ = [
    "EOLEConfig",
    "EOLEVariant",
    "PipelineConfig",
    "SimulationResult",
    "Simulator",
    "Workload",
    "WorkloadSpec",
    "all_workloads",
    "baseline_6_64",
    "baseline_vp_6_64",
    "eole_4_64",
    "eole_6_64",
    "eole_config",
    "named_config",
    "simulate",
    "workload",
    "__version__",
]
