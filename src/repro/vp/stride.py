"""Computational value predictors: Stride and 2-Delta Stride.

The 2-Delta Stride predictor (Eickemeyer & Vassiliadis, 1993) is the computational half
of the paper's VTAGE-2DStride hybrid (Table 2: 8192 entries, full 51-bit tags in the
original — we model full tags as "no aliasing").

Because stride predictors need the *previous* value of an instruction to predict the
current one, multiple in-flight instances of the same static µ-op must chain
speculatively.  We keep a speculative last value per entry, advance it at prediction
time, and fall back to the committed last value after a pipeline squash (see
:meth:`StridePredictor.recover`).  This mirrors the in-flight tracking the paper points
out as a burden of computational predictors (Section 2, "Value Prediction").
"""

from __future__ import annotations

from repro.bpu.history import GlobalHistory
from repro.errors import ConfigurationError
from repro.vp.base import ValuePredictor, VPrediction
from repro.vp.confidence import FPCPolicy, PAPER_FPC_VECTOR

_MASK64 = (1 << 64) - 1


def _mix_pc(pc: int) -> int:
    pc &= _MASK64
    pc ^= pc >> 15
    pc = (pc * 0xBF58476D1CE4E5B9) & _MASK64
    return pc ^ (pc >> 29)


class _StrideEntry:
    """One stride-table entry (committed state plus the speculative chain)."""

    __slots__ = ("tag", "valid", "last_value", "stride1", "stride2", "confidence",
                 "spec_last", "inflight", "spec_dirty")

    def __init__(self) -> None:
        self.tag = 0
        self.valid = False
        self.last_value = 0
        self.stride1 = 0  # most recently observed delta
        self.stride2 = 0  # confirmed delta used for prediction
        self.confidence = 0
        self.spec_last = 0
        self.inflight = 0
        # True while the entry sits on the predictor's ``_spec_dirty`` list, so a
        # chain that drains and restarts between squashes is not appended twice.
        self.spec_dirty = False


class StridePredictor(ValuePredictor):
    """Classic single-delta stride predictor."""

    name = "stride"
    #: Number of distinct deltas that must agree before the prediction delta changes.
    two_delta = False

    def __init__(
        self,
        entries: int = 8192,
        tag_bits: int = 51,
        value_bits: int = 64,
        stride_bits: int = 64,
        fpc_vector=PAPER_FPC_VECTOR,
        seed: int = 0x5712DE,
    ) -> None:
        super().__init__()
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError("stride predictor entry count must be a power of two")
        self.entries = entries
        self.tag_bits = tag_bits
        self.value_bits = value_bits
        self.stride_bits = stride_bits
        self._index_mask = entries - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._policy = FPCPolicy(fpc_vector, seed=seed)
        # Entries are allocated lazily on first training: a fresh ``None`` slot
        # behaves exactly like a never-written entry (``valid`` False), and the
        # synthetic kernels touch a small fraction of the 8K-entry table, so eager
        # construction would dominate predictor set-up time.
        self._table: list[_StrideEntry | None] = [None] * entries
        # (index, tag) per static PC — pure memoisation of the two hash formulas,
        # consulted twice per eligible µ-op (predict at fetch, train at commit).
        self._pc_cache: dict[int, tuple[int, int]] = {}
        # Entries whose speculative chain may have advanced past the committed
        # value since the last squash: exactly the entries :meth:`recover` must
        # repair.  Appended when ``inflight`` leaves zero, so recovery walks the
        # handful of live chains instead of the whole table.
        self._spec_dirty: list[_StrideEntry] = []
        self._saturation = self._policy.saturation

    # ------------------------------------------------------------------ indexing
    def _index(self, pc: int) -> int:
        return _mix_pc(pc) & self._index_mask

    def _tag(self, pc: int) -> int:
        return pc & self._tag_mask

    def _index_and_tag(self, pc: int) -> tuple[int, int]:
        cached = self._pc_cache.get(pc)
        if cached is None:
            cached = (_mix_pc(pc) & self._index_mask, pc & self._tag_mask)
            self._pc_cache[pc] = cached
        return cached

    # ------------------------------------------------------------------ interface
    def lookup_parts(self, pc: int, history: GlobalHistory) -> tuple[int, bool] | None:
        """:meth:`predict` without the :class:`VPrediction` wrapper.

        Returns ``(value, confident)`` on a table hit (advancing the speculative
        chain exactly like :meth:`predict`), ``None`` on a miss.  Used by the hybrid,
        which wraps the arbitration winner once.
        """
        cached = self._pc_cache.get(pc)
        if cached is None:
            cached = (_mix_pc(pc) & self._index_mask, pc & self._tag_mask)
            self._pc_cache[pc] = cached
        index, tag = cached
        entry = self._table[index]
        if entry is None or not entry.valid or entry.tag != tag:
            return None
        predicted = (entry.spec_last + entry.stride2) & _MASK64
        confident = entry.confidence >= self._saturation
        # Advance the speculative chain so back-to-back instances predict correctly.
        entry.spec_last = predicted
        if not entry.spec_dirty:
            entry.spec_dirty = True
            self._spec_dirty.append(entry)
        entry.inflight += 1
        return predicted, confident

    def predict(self, pc: int, history: GlobalHistory) -> VPrediction | None:
        parts = self.lookup_parts(pc, history)
        if parts is None:
            return None
        return VPrediction(parts[0], parts[1], self.name, meta=None)

    def train(self, pc: int, actual: int, prediction: VPrediction | None) -> None:
        if prediction is None:
            self.train_parts(pc, actual, False, 0)
        else:
            self.train_parts(pc, actual, True, prediction.value)

    def train_parts(
        self, pc: int, actual: int, had_prediction: bool, predicted_value: int
    ) -> None:
        """:meth:`train` taking the prediction flattened to ``(hit, value)``."""
        actual &= _MASK64
        cached = self._pc_cache.get(pc)
        if cached is None:
            cached = (_mix_pc(pc) & self._index_mask, pc & self._tag_mask)
            self._pc_cache[pc] = cached
        index, tag = cached
        entry = self._table[index]
        if entry is not None and entry.valid and entry.tag == tag:
            delta = (actual - entry.last_value) & _MASK64
            predicted_from_committed = (entry.last_value + entry.stride2) & _MASK64
            if had_prediction:
                correct = predicted_value == actual
            else:
                correct = predicted_from_committed == actual
            if correct:
                if entry.confidence < self._saturation and self._policy.allows_increment(
                    entry.confidence
                ):
                    entry.confidence += 1
            else:
                entry.confidence = 0
            if self.two_delta:
                if delta == entry.stride1:
                    entry.stride2 = delta
                entry.stride1 = delta
            else:
                entry.stride2 = delta
                entry.stride1 = delta
            entry.last_value = actual
            if entry.inflight > 0:
                entry.inflight -= 1
            if entry.inflight == 0:
                entry.spec_last = actual
            elif not correct:
                # Repair the speculative chain: the in-flight predictions made from the
                # stale chain are already known wrong, so re-extrapolate the speculative
                # last value from the architectural value for the instances still in
                # flight (the HPCA'14 predictor repairs its speculative window the same
                # way once validation exposes a misprediction).
                entry.spec_last = (actual + entry.stride2 * entry.inflight) & _MASK64
        else:
            if entry is None:
                entry = _StrideEntry()
                self._table[index] = entry
            entry.valid = True
            entry.tag = tag
            entry.last_value = actual
            entry.spec_last = actual
            entry.stride1 = 0
            entry.stride2 = 0
            entry.confidence = 0
            entry.inflight = 0

    def recover(self) -> None:
        """Collapse every speculative chain back onto the committed last value.

        Walks only the entries whose chain advanced since the last squash
        (``_spec_dirty``), not the whole table; entries whose in-flight count
        already drained back to zero are skipped, exactly like the full-table
        reference walk would.
        """
        dirty = self._spec_dirty
        if not dirty:
            return
        for entry in dirty:
            entry.spec_dirty = False
            if entry.inflight:
                entry.inflight = 0
                entry.spec_last = entry.last_value
        dirty.clear()

    def storage_bits(self) -> int:
        per_entry = self.tag_bits + self.value_bits + self.stride_bits + 3 + 1
        return self.entries * per_entry


class TwoDeltaStridePredictor(StridePredictor):
    """2-Delta Stride predictor: the prediction delta only changes once confirmed twice.

    This filters transient delta changes (e.g. loop exits) and is the computational
    component used by the paper's hybrid (Table 2, "2D-Stride").
    """

    name = "2dstride"
    two_delta = True

    def storage_bits(self) -> int:
        # Two stride fields instead of one.
        per_entry = self.tag_bits + self.value_bits + 2 * self.stride_bits + 3 + 1
        return self.entries * per_entry
