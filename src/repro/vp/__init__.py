"""Value prediction: predictors, confidence estimation and the paper's hybrid.

Public entry points:

* :func:`repro.vp.hybrid.default_paper_predictor` — the VTAGE-2DStride hybrid with the
  paper's Table 2 sizing (what every EOLE experiment uses);
* the individual predictors (:class:`LastValuePredictor`, :class:`StridePredictor`,
  :class:`TwoDeltaStridePredictor`, :class:`FCMPredictor`, :class:`VTAGEPredictor`) for
  comparison studies;
* :class:`FPCPolicy` / :class:`ForwardProbabilisticCounter` — the Forward Probabilistic
  Counter confidence mechanism that makes commit-time validation viable.
"""

from repro.vp.base import PredictorStatistics, ValuePredictor, VPrediction
from repro.vp.confidence import (
    DETERMINISTIC_3BIT_VECTOR,
    FPCPolicy,
    ForwardProbabilisticCounter,
    PAPER_FPC_VECTOR,
)
from repro.vp.fcm import FCMPredictor
from repro.vp.hybrid import VTAGE2DStrideHybrid, default_paper_predictor
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import StridePredictor, TwoDeltaStridePredictor
from repro.vp.vtage import VTAGEPredictor, geometric_history_lengths

__all__ = [
    "DETERMINISTIC_3BIT_VECTOR",
    "FCMPredictor",
    "FPCPolicy",
    "ForwardProbabilisticCounter",
    "LastValuePredictor",
    "PAPER_FPC_VECTOR",
    "PredictorStatistics",
    "StridePredictor",
    "TwoDeltaStridePredictor",
    "VPrediction",
    "VTAGE2DStrideHybrid",
    "VTAGEPredictor",
    "ValuePredictor",
    "default_paper_predictor",
    "geometric_history_lengths",
]
