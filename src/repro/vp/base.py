"""Value-predictor interface shared by all predictor implementations.

The timing pipeline interacts with a value predictor in exactly three places, mirroring
the paper's pipeline (Section 4.2):

* at **fetch**, :meth:`ValuePredictor.predict` is consulted for every eligible µ-op; the
  prediction is *used* (written to the PRF at dispatch, consumed by Early/Late
  Execution) only when the predictor reports high confidence;
* at **commit** (the LE/VT stage), :meth:`ValuePredictor.train` is called with the
  architectural result, regardless of whether the prediction was used;
* on a **pipeline squash**, :meth:`ValuePredictor.recover` discards any speculative
  predictor state (e.g. the speculative last-value chain of stride predictors).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.bpu.history import GlobalHistory


class VPrediction:
    """A value prediction returned by :meth:`ValuePredictor.predict`.

    Attributes
    ----------
    value:
        The predicted 64-bit result.
    confident:
        True when the confidence counter backing this prediction is saturated; only then
        does the pipeline actually use the prediction.
    source:
        Short identifier of the component that produced the prediction
        (``"vtage"``, ``"stride"``, ...), used for statistics and debugging.
    meta:
        Opaque component-specific data (table indices, tags, speculative values)
        carried from :meth:`predict` to :meth:`train` so that training does not need to
        recompute fetch-time state.
    """

    __slots__ = ("value", "confident", "source", "meta")

    def __init__(self, value: int, confident: bool, source: str, meta: Any = None) -> None:
        self.value = value
        self.confident = confident
        self.source = source
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VPrediction(value={self.value}, confident={self.confident}, source={self.source})"


@dataclass(slots=True)
class PredictorStatistics:
    """Coverage / accuracy accounting for a value predictor.

    ``coverage`` is the fraction of eligible µ-ops for which a high-confidence
    prediction was supplied; ``accuracy`` is the fraction of *used* predictions that
    were correct — the quantity FPC keeps extremely close to 1.
    """

    lookups: int = 0
    confident_predictions: int = 0
    correct_used: int = 0
    incorrect_used: int = 0
    unused_correct: int = 0
    per_source: dict[str, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of eligible µ-ops predicted with high confidence."""
        return self.confident_predictions / self.lookups if self.lookups else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of used (high-confidence) predictions that were correct."""
        used = self.correct_used + self.incorrect_used
        return self.correct_used / used if used else 1.0

    def record_lookup(self, prediction: VPrediction | None) -> None:
        """Account one fetch-time lookup."""
        self.lookups += 1
        if prediction is not None and prediction.confident:
            self.confident_predictions += 1
            self.per_source[prediction.source] = self.per_source.get(prediction.source, 0) + 1

    def record_outcome(self, prediction: VPrediction | None, actual: int) -> None:
        """Account one commit-time validation."""
        if prediction is None:
            return
        if prediction.confident:
            if prediction.value == actual:
                self.correct_used += 1
            else:
                self.incorrect_used += 1
        elif prediction.value == actual:
            self.unused_correct += 1


class ValuePredictor(ABC):
    """Abstract base class of all value predictors."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = PredictorStatistics()

    # ------------------------------------------------------------------ interface
    @abstractmethod
    def predict(self, pc: int, history: GlobalHistory) -> VPrediction | None:
        """Fetch-time lookup for the µ-op at static ``pc``.

        Returns ``None`` when the predictor has no opinion at all (e.g. tag miss with no
        base component).  The returned prediction's ``confident`` flag decides whether
        the pipeline uses the value.
        """

    @abstractmethod
    def train(self, pc: int, actual: int, prediction: VPrediction | None) -> None:
        """Commit-time update with the architectural result ``actual``."""

    def recover(self) -> None:
        """Discard speculative predictor state after a pipeline squash."""

    @abstractmethod
    def storage_bits(self) -> int:
        """Approximate storage budget of the predictor tables, in bits (Table 2)."""

    # ------------------------------------------------------------------ helpers
    def storage_kilobytes(self) -> float:
        """Storage budget in kilobytes, as reported in Table 2 of the paper."""
        return self.storage_bits() / 8 / 1024

    def lookup(self, pc: int, history: GlobalHistory) -> VPrediction | None:
        """Predict and record statistics in one call (what the pipeline uses)."""
        prediction = self.predict(pc, history)
        self.stats.record_lookup(prediction)
        return prediction

    def validate_and_train(
        self, pc: int, actual: int, prediction: VPrediction | None
    ) -> bool:
        """Record the outcome, train the tables, and return prediction correctness.

        Returns True when either no confident prediction was used or the used
        prediction matches ``actual`` (i.e. "no squash needed").
        """
        self.stats.record_outcome(prediction, actual)
        self.train(pc, actual, prediction)
        if prediction is None or not prediction.confident:
            return True
        return prediction.value == actual

    def train_commit_group(
        self, group: list[tuple[int, int, "VPrediction | None"]]
    ) -> None:
        """Outcome-record and train one commit group of ``(pc, actual, prediction)``.

        The pipeline validates correctness itself (a squash decision cannot wait
        for the whole group) and batches the table updates into one call per
        commit group; the per-item update order — and hence any deterministic
        PRNG draw sequence inside the tables — is exactly the per-µ-op order.
        Subclasses may override to amortise their per-call overhead.
        """
        record_outcome = self.stats.record_outcome
        train = self.train
        for pc, actual, prediction in group:
            record_outcome(prediction, actual)
            train(pc, actual, prediction)

    def train_commit_group_columns(
        self,
        pcs: list[int],
        actuals: list[int],
        predictions: "list[VPrediction | None]",
        batch: bool = False,
    ) -> None:
        """Columnar :meth:`train_commit_group`: parallel pc/actual/prediction
        sequences instead of per-item tuples (what the structure-of-arrays
        commit loop accumulates).  ``batch`` opts into order-safe numpy
        reductions where a subclass has them; the per-item table-update order —
        and hence any deterministic PRNG draw sequence — is always the commit
        order, exactly as in :meth:`train_commit_group`.
        """
        record_outcome = self.stats.record_outcome
        train = self.train
        for pc, actual, prediction in zip(pcs, actuals, predictions):
            record_outcome(prediction, actual)
            train(pc, actual, prediction)
