"""Finite Context Method (FCM) value predictor — Sazeides & Smith, 1997.

A classic context-based predictor: the first-level table records, per static µ-op, a
hash of its last ``order`` committed values; the second-level table maps that value
history to the next value.  It is not part of the paper's evaluated hybrid but is the
canonical context-based baseline cited in Section 2, so it is provided for predictor
comparison studies (``examples/predictor_comparison.py``) and ablation benchmarks.

Only committed state is used for prediction (no speculative value chain); this slightly
under-reports FCM coverage for tight loops, which is consistent with the difficulty the
paper attributes to predictors that require the previous value.
"""

from __future__ import annotations

from repro.bpu.history import GlobalHistory
from repro.errors import ConfigurationError
from repro.vp.base import ValuePredictor, VPrediction
from repro.vp.confidence import FPCPolicy, PAPER_FPC_VECTOR

_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    value &= _MASK64
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    return value ^ (value >> 29)


class FCMPredictor(ValuePredictor):
    """Order-``order`` FCM with FPC confidence on the second-level table."""

    name = "fcm"

    def __init__(
        self,
        first_level_entries: int = 8192,
        second_level_entries: int = 32768,
        order: int = 3,
        value_bits: int = 64,
        fpc_vector=PAPER_FPC_VECTOR,
        seed: int = 0xFC1133,
    ) -> None:
        super().__init__()
        for entries in (first_level_entries, second_level_entries):
            if entries <= 0 or entries & (entries - 1):
                raise ConfigurationError("FCM table sizes must be powers of two")
        if order <= 0:
            raise ConfigurationError("FCM order must be positive")
        self.first_level_entries = first_level_entries
        self.second_level_entries = second_level_entries
        self.order = order
        self.value_bits = value_bits
        self._l1_mask = first_level_entries - 1
        self._l2_mask = second_level_entries - 1
        self._policy = FPCPolicy(fpc_vector, seed=seed)
        # First level: the last ``order`` committed values of each static µ-op.
        self._histories: list[tuple[int, ...]] = [()] * first_level_entries
        # Second level: predicted value + confidence.
        self._values = [0] * second_level_entries
        self._confidence = [0] * second_level_entries
        self._valid = [False] * second_level_entries

    # ------------------------------------------------------------------ indexing
    def _l1_index(self, pc: int) -> int:
        return _mix(pc) & self._l1_mask

    def _l2_index(self, value_history: tuple[int, ...]) -> int:
        digest = 0
        for value in value_history:
            digest = _mix(digest * 3 + value)
        return digest & self._l2_mask

    # ------------------------------------------------------------------ interface
    def predict(self, pc: int, history: GlobalHistory) -> VPrediction | None:
        l1 = self._l1_index(pc)
        context = self._histories[l1]
        if len(context) < self.order:
            return None
        l2 = self._l2_index(context)
        if not self._valid[l2]:
            return None
        confident = self._confidence[l2] >= self._policy.saturation
        return VPrediction(self._values[l2], confident, self.name, meta=(l1, l2))

    def train(self, pc: int, actual: int, prediction: VPrediction | None) -> None:
        actual &= _MASK64
        l1 = self._l1_index(pc)
        context = self._histories[l1]
        if prediction is not None and prediction.meta is not None:
            _, l2 = prediction.meta
        else:
            l2 = self._l2_index(context) if len(context) >= self.order else None
        if l2 is not None:
            if self._valid[l2]:
                if self._values[l2] == actual:
                    if self._confidence[l2] < self._policy.saturation and self._policy.allows_increment(
                        self._confidence[l2]
                    ):
                        self._confidence[l2] += 1
                else:
                    self._confidence[l2] = 0
                    self._values[l2] = actual
            else:
                self._valid[l2] = True
                self._values[l2] = actual
                self._confidence[l2] = 0
        # Advance the committed value history window of this static µ-op.
        self._histories[l1] = (context + (actual,))[-self.order :]

    def storage_bits(self) -> int:
        first_level = self.first_level_entries * 16  # folded history hash per PC
        second_level = self.second_level_entries * (self.value_bits + 3 + 1)
        return first_level + second_level
