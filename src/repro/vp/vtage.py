"""VTAGE — the Value TAgged GEometric history length predictor (Perais & Seznec, 2014).

VTAGE is the context-based half of the paper's hybrid (Table 2).  Like the ITTAGE
indirect-branch predictor it borrows its structure from, it consists of:

* a tagless **base component** — a last-value table indexed by PC; and
* ``num_components`` **tagged components**, each indexed by a hash of the PC and a
  geometrically increasing slice of the *global conditional branch history*, and tagged
  with ``tag_bits + rank`` bits.

The longest-history matching component provides the prediction; Forward Probabilistic
Counters gate its use.  A key property emphasised by the paper is that VTAGE does not
need the previous value of the instruction to predict, so it has no speculative
in-flight state to repair on squashes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.history import FoldedHistoryCache, GlobalHistory
from repro.errors import ConfigurationError
from repro.vp.base import ValuePredictor, VPrediction
from repro.vp.confidence import DeterministicRandom, FPCPolicy, PAPER_FPC_VECTOR

_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    value &= _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def geometric_history_lengths(minimum: int, maximum: int, count: int) -> list[int]:
    """Geometric series of history lengths, shortest first (Seznec & Michaud, 2006)."""
    if count <= 0:
        raise ConfigurationError("need at least one tagged component")
    if count == 1:
        return [maximum]
    if minimum <= 0 or maximum < minimum:
        raise ConfigurationError("invalid geometric history bounds")
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    lengths = []
    for rank in range(count):
        length = int(round(minimum * (ratio**rank)))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return lengths


@dataclass(slots=True)
class _VTAGEMeta:
    """Fetch-time lookup context carried to commit-time training."""

    indices: tuple[int, ...]
    tags: tuple[int, ...]
    provider: int  # -1 = base component, otherwise tagged component rank (0-based)
    base_index: int


class _TaggedEntry:
    __slots__ = ("tag", "value", "confidence", "useful", "valid")

    def __init__(self) -> None:
        self.tag = 0
        self.value = 0
        self.confidence = 0
        self.useful = 0
        self.valid = False


class VTAGEPredictor(ValuePredictor):
    """VTAGE as configured in Table 2 of the EOLE paper (scaled by constructor args)."""

    name = "vtage"

    def __init__(
        self,
        base_entries: int = 8192,
        tagged_entries: int = 1024,
        num_components: int = 6,
        tag_bits: int = 12,
        min_history: int = 2,
        max_history: int = 64,
        value_bits: int = 64,
        fpc_vector=PAPER_FPC_VECTOR,
        seed: int = 0x7A6E,
    ) -> None:
        super().__init__()
        for entries in (base_entries, tagged_entries):
            if entries <= 0 or entries & (entries - 1):
                raise ConfigurationError("VTAGE table sizes must be powers of two")
        self.base_entries = base_entries
        self.tagged_entries = tagged_entries
        self.num_components = num_components
        self.tag_bits = tag_bits
        self.value_bits = value_bits
        self.history_lengths = geometric_history_lengths(min_history, max_history, num_components)
        self._base_mask = base_entries - 1
        self._tagged_mask = tagged_entries - 1
        self._index_width = self._tagged_mask.bit_length()
        self._tag_widths = [tag_bits + rank for rank in range(num_components)]
        self._tag_masks = [(1 << width) - 1 for width in self._tag_widths]
        self._policy = FPCPolicy(fpc_vector, seed=seed)
        self._random = DeterministicRandom(seed ^ 0xBADC0DE)
        # Lookup memoisation (pure caching — the computed indices/tags are identical
        # to the direct formulas): the PC-dependent hash mixes are static per µ-op,
        # and the folded history only changes when the global history bits do,
        # while lookups happen for every VP-eligible µ-op between branches.
        self._pc_mix_cache: dict[int, tuple[tuple[int, ...], tuple[int, ...], int]] = {}
        self._index_fold_cache = FoldedHistoryCache(
            self.history_lengths, [self._index_width] * num_components
        )
        self._tag_fold_cache = FoldedHistoryCache(self.history_lengths, self._tag_widths)
        # Base component (tagless last-value table).
        self._base_values = [0] * base_entries
        self._base_confidence = [0] * base_entries
        self._base_valid = [False] * base_entries
        # Tagged components.  Entries are allocated lazily on first use: a ``None``
        # slot behaves exactly like a never-allocated entry (``valid`` False), and
        # only a small fraction of each 1K-entry component is ever touched.
        self._components: list[list[_TaggedEntry | None]] = [
            [None] * tagged_entries for _ in range(num_components)
        ]

    # ------------------------------------------------------------------ indexing
    def _base_index(self, pc: int) -> int:
        return _mix(pc) & self._base_mask

    def _tagged_index(self, pc: int, history: GlobalHistory, rank: int) -> int:
        length = self.history_lengths[rank]
        folded = history.fold(length, self._tagged_mask.bit_length())
        return (_mix(pc * 2 + rank) ^ folded) & self._tagged_mask

    def _tagged_tag(self, pc: int, history: GlobalHistory, rank: int) -> int:
        length = self.history_lengths[rank]
        width = self.tag_bits + rank
        folded = history.fold(length, width)
        return (_mix(pc * 7 + rank * 3 + 1) ^ folded) & ((1 << width) - 1)

    # ------------------------------------------------------------------ memoisation
    def _pc_mixes(self, pc: int) -> tuple[tuple[int, ...], tuple[int, ...], int]:
        """The PC-dependent halves of every index/tag hash, plus the base index."""
        cached = self._pc_mix_cache.get(pc)
        if cached is None:
            index_mixes = tuple(_mix(pc * 2 + rank) for rank in range(self.num_components))
            tag_mixes = tuple(
                _mix(pc * 7 + rank * 3 + 1) for rank in range(self.num_components)
            )
            cached = (index_mixes, tag_mixes, _mix(pc) & self._base_mask)
            self._pc_mix_cache[pc] = cached
        return cached

    # ------------------------------------------------------------------ interface
    def predict(self, pc: int, history: GlobalHistory) -> VPrediction | None:
        index_mixes, tag_mixes, base_index = self._pc_mixes(pc)
        index_folds = self._index_fold_cache.folds(history)
        tag_folds = self._tag_fold_cache.folds(history)
        tagged_mask = self._tagged_mask
        indices = tuple(
            (mix ^ fold) & tagged_mask for mix, fold in zip(index_mixes, index_folds)
        )
        tags = tuple(
            (mix ^ fold) & mask
            for mix, fold, mask in zip(tag_mixes, tag_folds, self._tag_masks)
        )
        provider = -1
        provider_entry: _TaggedEntry | None = None
        rank = 0
        for component, index, tag in zip(self._components, indices, tags):
            entry = component[index]
            if entry is not None and entry.valid and entry.tag == tag:
                provider = rank
                provider_entry = entry
            rank += 1
        meta = _VTAGEMeta(indices, tags, provider, base_index)
        if provider_entry is not None:
            confident = provider_entry.confidence >= self._policy.saturation
            return VPrediction(provider_entry.value, confident, self.name, meta=meta)
        if self._base_valid[base_index]:
            confident = self._base_confidence[base_index] >= self._policy.saturation
            return VPrediction(self._base_values[base_index], confident, self.name, meta=meta)
        return VPrediction(0, False, self.name, meta=meta)

    # ------------------------------------------------------------------ training helpers
    def _bump_confidence(self, current: int) -> int:
        if current < self._policy.saturation and self._policy.allows_increment(current):
            return current + 1
        return current

    def _train_base(self, base_index: int, actual: int) -> None:
        if self._base_valid[base_index] and self._base_values[base_index] == actual:
            self._base_confidence[base_index] = self._bump_confidence(
                self._base_confidence[base_index]
            )
        elif self._base_valid[base_index]:
            if self._base_confidence[base_index] == 0:
                self._base_values[base_index] = actual
            else:
                self._base_confidence[base_index] = 0
        else:
            self._base_valid[base_index] = True
            self._base_values[base_index] = actual
            self._base_confidence[base_index] = 0

    def _allocate(self, meta: _VTAGEMeta, actual: int) -> None:
        """Allocate a new tagged entry on a component with a longer history."""
        start = meta.provider + 1
        candidates = []
        for rank in range(start, self.num_components):
            entry = self._components[rank][meta.indices[rank]]
            if entry is None or not entry.valid or entry.useful == 0:
                candidates.append(rank)
        if not candidates:
            # Age the useful bits of all longer-history victims, TAGE-style.
            for rank in range(start, self.num_components):
                entry = self._components[rank][meta.indices[rank]]
                if entry is not None and entry.useful > 0:
                    entry.useful -= 1
            return
        # Prefer the shortest eligible history, with a random tie-break to avoid ping-pong.
        choice = candidates[0]
        if len(candidates) > 1 and self._random.chance_half():
            choice = candidates[1]
        entry = self._components[choice][meta.indices[choice]]
        if entry is None:
            entry = _TaggedEntry()
            self._components[choice][meta.indices[choice]] = entry
        entry.valid = True
        entry.tag = meta.tags[choice]
        entry.value = actual
        entry.confidence = 0
        entry.useful = 0

    def train(self, pc: int, actual: int, prediction: VPrediction | None) -> None:
        actual &= _MASK64
        if prediction is None or prediction.meta is None:
            # Should not happen in the pipeline (every eligible µ-op is looked up), but
            # keep the base component learning for robustness.
            self._train_base(self._base_index(pc), actual)
            return
        meta: _VTAGEMeta = prediction.meta
        if meta.provider >= 0:
            entry = self._components[meta.provider][meta.indices[meta.provider]]
            if entry is not None and entry.valid and entry.tag == meta.tags[meta.provider]:
                if entry.value == actual:
                    entry.confidence = self._bump_confidence(entry.confidence)
                    if entry.confidence >= self._policy.saturation:
                        entry.useful = 1
                else:
                    if entry.confidence == 0:
                        entry.value = actual
                        entry.useful = 0
                    else:
                        entry.confidence = 0
                    self._allocate(meta, actual)
            else:
                # The entry was replaced between fetch and commit; treat as a miss.
                self._allocate(meta, actual)
        else:
            predicted_value = prediction.value
            if not (self._base_valid[meta.base_index] and predicted_value == actual):
                self._allocate(meta, actual)
        self._train_base(meta.base_index, actual)

    def storage_bits(self) -> int:
        base = self.base_entries * (self.value_bits + 3)
        tagged = 0
        for rank in range(self.num_components):
            per_entry = self.value_bits + 3 + 1 + (self.tag_bits + rank)
            tagged += self.tagged_entries * per_entry
        return base + tagged
