"""VTAGE — the Value TAgged GEometric history length predictor (Perais & Seznec, 2014).

VTAGE is the context-based half of the paper's hybrid (Table 2).  Like the ITTAGE
indirect-branch predictor it borrows its structure from, it consists of:

* a tagless **base component** — a last-value table indexed by PC; and
* ``num_components`` **tagged components**, each indexed by a hash of the PC and a
  geometrically increasing slice of the *global conditional branch history*, and tagged
  with ``tag_bits + rank`` bits.

The longest-history matching component provides the prediction; Forward Probabilistic
Counters gate its use.  A key property emphasised by the paper is that VTAGE does not
need the previous value of the instruction to predict, so it has no speculative
in-flight state to repair on squashes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.history import GlobalHistory
from repro.errors import ConfigurationError
from repro.vp.base import ValuePredictor, VPrediction
from repro.vp.confidence import DeterministicRandom, FPCPolicy, PAPER_FPC_VECTOR

_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    value &= _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def geometric_history_lengths(minimum: int, maximum: int, count: int) -> list[int]:
    """Geometric series of history lengths, shortest first (Seznec & Michaud, 2006)."""
    if count <= 0:
        raise ConfigurationError("need at least one tagged component")
    if count == 1:
        return [maximum]
    if minimum <= 0 or maximum < minimum:
        raise ConfigurationError("invalid geometric history bounds")
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    lengths = []
    for rank in range(count):
        length = int(round(minimum * (ratio**rank)))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return lengths


@dataclass
class _VTAGEMeta:
    """Fetch-time lookup context carried to commit-time training."""

    indices: tuple[int, ...]
    tags: tuple[int, ...]
    provider: int  # -1 = base component, otherwise tagged component rank (0-based)
    base_index: int


class _TaggedEntry:
    __slots__ = ("tag", "value", "confidence", "useful", "valid")

    def __init__(self) -> None:
        self.tag = 0
        self.value = 0
        self.confidence = 0
        self.useful = 0
        self.valid = False


class VTAGEPredictor(ValuePredictor):
    """VTAGE as configured in Table 2 of the EOLE paper (scaled by constructor args)."""

    name = "vtage"

    def __init__(
        self,
        base_entries: int = 8192,
        tagged_entries: int = 1024,
        num_components: int = 6,
        tag_bits: int = 12,
        min_history: int = 2,
        max_history: int = 64,
        value_bits: int = 64,
        fpc_vector=PAPER_FPC_VECTOR,
        seed: int = 0x7A6E,
    ) -> None:
        super().__init__()
        for entries in (base_entries, tagged_entries):
            if entries <= 0 or entries & (entries - 1):
                raise ConfigurationError("VTAGE table sizes must be powers of two")
        self.base_entries = base_entries
        self.tagged_entries = tagged_entries
        self.num_components = num_components
        self.tag_bits = tag_bits
        self.value_bits = value_bits
        self.history_lengths = geometric_history_lengths(min_history, max_history, num_components)
        self._base_mask = base_entries - 1
        self._tagged_mask = tagged_entries - 1
        self._policy = FPCPolicy(fpc_vector, seed=seed)
        self._random = DeterministicRandom(seed ^ 0xBADC0DE)
        # Base component (tagless last-value table).
        self._base_values = [0] * base_entries
        self._base_confidence = [0] * base_entries
        self._base_valid = [False] * base_entries
        # Tagged components.
        self._components: list[list[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(tagged_entries)] for _ in range(num_components)
        ]

    # ------------------------------------------------------------------ indexing
    def _base_index(self, pc: int) -> int:
        return _mix(pc) & self._base_mask

    def _tagged_index(self, pc: int, history: GlobalHistory, rank: int) -> int:
        length = self.history_lengths[rank]
        folded = history.fold(length, self._tagged_mask.bit_length())
        return (_mix(pc * 2 + rank) ^ folded) & self._tagged_mask

    def _tagged_tag(self, pc: int, history: GlobalHistory, rank: int) -> int:
        length = self.history_lengths[rank]
        width = self.tag_bits + rank
        folded = history.fold(length, width)
        return (_mix(pc * 7 + rank * 3 + 1) ^ folded) & ((1 << width) - 1)

    # ------------------------------------------------------------------ interface
    def predict(self, pc: int, history: GlobalHistory) -> VPrediction | None:
        indices = []
        tags = []
        provider = -1
        provider_entry: _TaggedEntry | None = None
        for rank in range(self.num_components):
            index = self._tagged_index(pc, history, rank)
            tag = self._tagged_tag(pc, history, rank)
            indices.append(index)
            tags.append(tag)
            entry = self._components[rank][index]
            if entry.valid and entry.tag == tag:
                provider = rank
                provider_entry = entry
        base_index = self._base_index(pc)
        meta = _VTAGEMeta(tuple(indices), tuple(tags), provider, base_index)
        if provider_entry is not None:
            confident = provider_entry.confidence >= self._policy.saturation
            return VPrediction(provider_entry.value, confident, self.name, meta=meta)
        if self._base_valid[base_index]:
            confident = self._base_confidence[base_index] >= self._policy.saturation
            return VPrediction(self._base_values[base_index], confident, self.name, meta=meta)
        return VPrediction(0, False, self.name, meta=meta)

    # ------------------------------------------------------------------ training helpers
    def _bump_confidence(self, current: int) -> int:
        if current < self._policy.saturation and self._policy.allows_increment(current):
            return current + 1
        return current

    def _train_base(self, base_index: int, actual: int) -> None:
        if self._base_valid[base_index] and self._base_values[base_index] == actual:
            self._base_confidence[base_index] = self._bump_confidence(
                self._base_confidence[base_index]
            )
        elif self._base_valid[base_index]:
            if self._base_confidence[base_index] == 0:
                self._base_values[base_index] = actual
            else:
                self._base_confidence[base_index] = 0
        else:
            self._base_valid[base_index] = True
            self._base_values[base_index] = actual
            self._base_confidence[base_index] = 0

    def _allocate(self, meta: _VTAGEMeta, actual: int) -> None:
        """Allocate a new tagged entry on a component with a longer history."""
        start = meta.provider + 1
        candidates = []
        for rank in range(start, self.num_components):
            entry = self._components[rank][meta.indices[rank]]
            if not entry.valid or entry.useful == 0:
                candidates.append(rank)
        if not candidates:
            # Age the useful bits of all longer-history victims, TAGE-style.
            for rank in range(start, self.num_components):
                entry = self._components[rank][meta.indices[rank]]
                if entry.useful > 0:
                    entry.useful -= 1
            return
        # Prefer the shortest eligible history, with a random tie-break to avoid ping-pong.
        choice = candidates[0]
        if len(candidates) > 1 and self._random.chance_half():
            choice = candidates[1]
        entry = self._components[choice][meta.indices[choice]]
        entry.valid = True
        entry.tag = meta.tags[choice]
        entry.value = actual
        entry.confidence = 0
        entry.useful = 0

    def train(self, pc: int, actual: int, prediction: VPrediction | None) -> None:
        actual &= _MASK64
        if prediction is None or prediction.meta is None:
            # Should not happen in the pipeline (every eligible µ-op is looked up), but
            # keep the base component learning for robustness.
            self._train_base(self._base_index(pc), actual)
            return
        meta: _VTAGEMeta = prediction.meta
        if meta.provider >= 0:
            entry = self._components[meta.provider][meta.indices[meta.provider]]
            if entry.valid and entry.tag == meta.tags[meta.provider]:
                if entry.value == actual:
                    entry.confidence = self._bump_confidence(entry.confidence)
                    if entry.confidence >= self._policy.saturation:
                        entry.useful = 1
                else:
                    if entry.confidence == 0:
                        entry.value = actual
                        entry.useful = 0
                    else:
                        entry.confidence = 0
                    self._allocate(meta, actual)
            else:
                # The entry was replaced between fetch and commit; treat as a miss.
                self._allocate(meta, actual)
        else:
            predicted_value = prediction.value
            if not (self._base_valid[meta.base_index] and predicted_value == actual):
                self._allocate(meta, actual)
        self._train_base(meta.base_index, actual)

    def storage_bits(self) -> int:
        base = self.base_entries * (self.value_bits + 3)
        tagged = 0
        for rank in range(self.num_components):
            per_entry = self.value_bits + 3 + 1 + (self.tag_bits + rank)
            tagged += self.tagged_entries * per_entry
        return base + tagged
