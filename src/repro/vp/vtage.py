"""VTAGE — the Value TAgged GEometric history length predictor (Perais & Seznec, 2014).

VTAGE is the context-based half of the paper's hybrid (Table 2).  Like the ITTAGE
indirect-branch predictor it borrows its structure from, it consists of:

* a tagless **base component** — a last-value table indexed by PC; and
* ``num_components`` **tagged components**, each indexed by a hash of the PC and a
  geometrically increasing slice of the *global conditional branch history*, and tagged
  with ``tag_bits + rank`` bits.

The longest-history matching component provides the prediction; Forward Probabilistic
Counters gate its use.  A key property emphasised by the paper is that VTAGE does not
need the previous value of the instruction to predict, so it has no speculative
in-flight state to repair on squashes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.history import FoldedRegisterFile, GlobalHistory, fold_bits
from repro.errors import ConfigurationError
from repro.vp.base import ValuePredictor, VPrediction
from repro.vp.confidence import DeterministicRandom, FPCPolicy, PAPER_FPC_VECTOR

_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    value &= _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def geometric_history_lengths(minimum: int, maximum: int, count: int) -> list[int]:
    """Geometric series of history lengths, shortest first (Seznec & Michaud, 2006)."""
    if count <= 0:
        raise ConfigurationError("need at least one tagged component")
    if count == 1:
        return [maximum]
    if minimum <= 0 or maximum < minimum:
        raise ConfigurationError("invalid geometric history bounds")
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    lengths = []
    for rank in range(count):
        length = int(round(minimum * (ratio**rank)))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return lengths


@dataclass(slots=True)
class _VTAGEMeta:
    """Fetch-time lookup context carried to commit-time training.

    Indices and tags of the non-providing components are *not* materialised at
    lookup time: the meta captures the folded-history registers (``folds``, an
    immutable snapshot — the live registers advance with every branch) plus the PC,
    from which commit-time allocation re-derives exactly the indices/tags the lookup
    would have computed.  Only the provider's index/tag (needed on every correct
    prediction) are carried directly.
    """

    pc: int
    folds: tuple
    provider: int  # -1 = base component, otherwise tagged component rank (0-based)
    provider_index: int
    provider_tag: int
    base_index: int
    #: Raw history bits at lookup time; ``None`` holes in ``folds`` (lazily-dormant
    #: registers) are re-folded from this on demand.
    bits: int = 0


class _TaggedEntry:
    __slots__ = ("tag", "value", "confidence", "useful", "valid")

    def __init__(self) -> None:
        self.tag = 0
        self.value = 0
        self.confidence = 0
        self.useful = 0
        self.valid = False


class VTAGEPredictor(ValuePredictor):
    """VTAGE as configured in Table 2 of the EOLE paper (scaled by constructor args)."""

    name = "vtage"

    def __init__(
        self,
        base_entries: int = 8192,
        tagged_entries: int = 1024,
        num_components: int = 6,
        tag_bits: int = 12,
        min_history: int = 2,
        max_history: int = 64,
        value_bits: int = 64,
        fpc_vector=PAPER_FPC_VECTOR,
        seed: int = 0x7A6E,
    ) -> None:
        super().__init__()
        for entries in (base_entries, tagged_entries):
            if entries <= 0 or entries & (entries - 1):
                raise ConfigurationError("VTAGE table sizes must be powers of two")
        self.base_entries = base_entries
        self.tagged_entries = tagged_entries
        self.num_components = num_components
        self.tag_bits = tag_bits
        self.value_bits = value_bits
        self.history_lengths = geometric_history_lengths(min_history, max_history, num_components)
        self._base_mask = base_entries - 1
        self._tagged_mask = tagged_entries - 1
        self._index_width = self._tagged_mask.bit_length()
        self._tag_widths = [tag_bits + rank for rank in range(num_components)]
        self._tag_masks = [(1 << width) - 1 for width in self._tag_widths]
        self._policy = FPCPolicy(fpc_vector, seed=seed)
        self._random = DeterministicRandom(seed ^ 0xBADC0DE)
        # Lookup memoisation (pure caching — the computed indices/tags are identical
        # to the direct formulas): the PC-dependent hash mixes are static per µ-op,
        # and the folded history lives in incrementally-maintained registers attached
        # to the GlobalHistory (O(1) circular-shift update per pushed branch outcome,
        # snapshot/restore on squash) — index folds first, tag folds second.
        self._pc_mix_cache: dict[int, tuple[tuple[int, ...], tuple[int, ...], int]] = {}
        self._fold_widths = [self._index_width] * num_components + self._tag_widths
        self._fold_registers: FoldedRegisterFile | None = None
        #: Longest-history-first probe order: the provider is the longest match,
        #: so the descending walk can stop at the first hit (identical outcome to
        #: the ascending keep-the-last-match walk, fewer probes on hits).
        self._ranks_desc = tuple(range(num_components - 1, -1, -1))
        self._saturation = self._policy.saturation
        # Base component (tagless last-value table).
        self._base_values = [0] * base_entries
        self._base_confidence = [0] * base_entries
        self._base_valid = [False] * base_entries
        # Tagged components.  Entries are allocated lazily on first use: a ``None``
        # slot behaves exactly like a never-allocated entry (``valid`` False), and
        # only a small fraction of each 1K-entry component is ever touched.  The
        # per-component entry counts let lookups skip probing (and hashing into)
        # entirely-empty components.
        self._components: list[list[_TaggedEntry | None]] = [
            [None] * tagged_entries for _ in range(num_components)
        ]
        self._component_sizes = [0] * num_components

    # ------------------------------------------------------------------ indexing
    def _base_index(self, pc: int) -> int:
        return _mix(pc) & self._base_mask

    def _tagged_index(self, pc: int, history: GlobalHistory, rank: int) -> int:
        length = self.history_lengths[rank]
        folded = history.fold(length, self._tagged_mask.bit_length())
        return (_mix(pc * 2 + rank) ^ folded) & self._tagged_mask

    def _tagged_tag(self, pc: int, history: GlobalHistory, rank: int) -> int:
        length = self.history_lengths[rank]
        width = self.tag_bits + rank
        folded = history.fold(length, width)
        return (_mix(pc * 7 + rank * 3 + 1) ^ folded) & ((1 << width) - 1)

    # ------------------------------------------------------------------ memoisation
    def _pc_mixes(self, pc: int) -> tuple[tuple[int, ...], tuple[int, ...], int]:
        """The PC-dependent halves of every index/tag hash, plus the base index."""
        cached = self._pc_mix_cache.get(pc)
        if cached is None:
            index_mixes = tuple(_mix(pc * 2 + rank) for rank in range(self.num_components))
            tag_mixes = tuple(
                _mix(pc * 7 + rank * 3 + 1) for rank in range(self.num_components)
            )
            cached = (index_mixes, tag_mixes, _mix(pc) & self._base_mask)
            self._pc_mix_cache[pc] = cached
        return cached

    def _folds(self, history: GlobalHistory) -> list[int]:
        """The incremental folded registers for ``history`` (attached on first use).

        Index folds occupy ``[0, num_components)``, tag folds occupy
        ``[num_components, 2 * num_components)``.
        """
        registers = self._fold_registers
        if registers is None or registers.history is not history:
            registers = history.folded_registers(
                self.history_lengths + self.history_lengths, self._fold_widths,
                lazy=True,
            )
            self._fold_registers = registers
        return registers.folds

    # ------------------------------------------------------------------ interface
    def predict(self, pc: int, history: GlobalHistory) -> VPrediction | None:
        value, confident, meta = self.lookup_parts(pc, history)
        return VPrediction(value, confident, self.name, meta=meta)

    def lookup_parts(self, pc: int, history: GlobalHistory) -> tuple[int, bool, _VTAGEMeta]:
        """:meth:`predict` without the :class:`VPrediction` wrapper.

        Returns ``(value, confident, meta)``; used by the hybrid, which wraps the
        arbitration winner once per lookup.
        """
        cached = self._pc_mix_cache.get(pc)
        if cached is None:
            cached = self._pc_mixes(pc)
        index_mixes, tag_mixes, base_index = cached
        registers = self._fold_registers
        if registers is None or registers.history is not history:
            registers = history.folded_registers(
                self.history_lengths + self.history_lengths, self._fold_widths,
                lazy=True,
            )
            self._fold_registers = registers
        folds = registers.folds
        num_components = self.num_components
        tagged_mask = self._tagged_mask
        tag_masks = self._tag_masks
        components = self._components
        sizes = self._component_sizes
        provider = -1
        provider_index = 0
        provider_tag = 0
        provider_entry: _TaggedEntry | None = None
        for rank in self._ranks_desc:
            # Longest history first: the first hit *is* the provider.  Empty
            # components cannot hit; the hash is skipped entirely (allocation
            # re-derives it from the meta's fold snapshot when needed).  Tags are
            # only hashed for slots that actually hold an entry.
            if not sizes[rank]:
                continue
            index = (index_mixes[rank] ^ folds[rank]) & tagged_mask
            entry = components[rank][index]
            if entry is not None and entry.valid:
                tag = (tag_mixes[rank] ^ folds[num_components + rank]) & tag_masks[rank]
                if entry.tag == tag:
                    provider = rank
                    provider_index = index
                    provider_tag = tag
                    provider_entry = entry
                    break
        meta = _VTAGEMeta(
            pc,
            registers.folds_tuple(),
            provider,
            provider_index,
            provider_tag,
            base_index,
            history._bits,
        )
        if provider_entry is not None:
            return provider_entry.value, provider_entry.confidence >= self._saturation, meta
        if self._base_valid[base_index]:
            confident = self._base_confidence[base_index] >= self._saturation
            return self._base_values[base_index], confident, meta
        return 0, False, meta

    # ------------------------------------------------------------------ training helpers
    def _bump_confidence(self, current: int) -> int:
        if current < self._policy.saturation and self._policy.allows_increment(current):
            return current + 1
        return current

    def _train_base(self, base_index: int, actual: int) -> None:
        if self._base_valid[base_index]:
            if self._base_values[base_index] == actual:
                confidence = self._base_confidence[base_index]
                if confidence < self._saturation and self._policy.allows_increment(
                    confidence
                ):
                    self._base_confidence[base_index] = confidence + 1
            elif self._base_confidence[base_index] == 0:
                self._base_values[base_index] = actual
            else:
                self._base_confidence[base_index] = 0
        else:
            self._base_valid[base_index] = True
            self._base_values[base_index] = actual
            self._base_confidence[base_index] = 0

    def _meta_index(self, meta: _VTAGEMeta, rank: int) -> int:
        """Re-derive the component index the lookup for ``meta`` would have used."""
        if rank == meta.provider:
            return meta.provider_index
        index_mixes, _, _ = self._pc_mixes(meta.pc)
        fold = meta.folds[rank]
        if fold is None:  # register was dormant at lookup — re-fold from raw bits
            fold = fold_bits(meta.bits, self.history_lengths[rank], self._index_width)
        return (index_mixes[rank] ^ fold) & self._tagged_mask

    def _meta_tag(self, meta: _VTAGEMeta, rank: int) -> int:
        """Re-derive the component tag the lookup for ``meta`` would have used."""
        if rank == meta.provider:
            return meta.provider_tag
        _, tag_mixes, _ = self._pc_mixes(meta.pc)
        fold = meta.folds[self.num_components + rank]
        if fold is None:  # register was dormant at lookup — re-fold from raw bits
            fold = fold_bits(meta.bits, self.history_lengths[rank], self._tag_widths[rank])
        return (tag_mixes[rank] ^ fold) & self._tag_masks[rank]

    def _allocate(self, meta: _VTAGEMeta, actual: int) -> None:
        """Allocate a new tagged entry on a component with a longer history."""
        start = meta.provider + 1
        num_components = self.num_components
        index_mixes, _, _ = self._pc_mixes(meta.pc)
        folds = meta.folds
        tagged_mask = self._tagged_mask
        components = self._components
        bits = meta.bits
        lengths = self.history_lengths
        index_width = self._index_width
        # One fused probe pass over the longer-history components only, re-deriving
        # each index from the meta's fold snapshot (identical to the lookup's).
        # Only the first two candidates matter (the tie-break picks between them,
        # and the aging path needs only "were there any"), so the probe stops at
        # the second hit.
        candidate_count = 0
        first = second = None
        for rank in range(start, num_components):
            fold = folds[rank]
            if fold is None:  # dormant register at lookup time
                fold = fold_bits(bits, lengths[rank], index_width)
            index = (index_mixes[rank] ^ fold) & tagged_mask
            entry = components[rank][index]
            if entry is None or not entry.valid or entry.useful == 0:
                if candidate_count == 0:
                    candidate_count = 1
                    first = (rank, index, entry)
                else:
                    candidate_count = 2
                    second = (rank, index, entry)
                    break
        if not candidate_count:
            # Age the useful bits of all longer-history victims, TAGE-style
            # (rare path: re-probe the same indices).
            for rank in range(start, num_components):
                fold = folds[rank]
                if fold is None:
                    fold = fold_bits(bits, lengths[rank], index_width)
                index = (index_mixes[rank] ^ fold) & tagged_mask
                entry = components[rank][index]
                if entry is not None and entry.useful > 0:
                    entry.useful -= 1
            return
        # Prefer the shortest eligible history, with a random tie-break to avoid ping-pong.
        choice, choice_index, choice_entry = first
        if candidate_count > 1 and self._random.chance_half():
            choice, choice_index, choice_entry = second
        if choice_entry is None:
            choice_entry = _TaggedEntry()
            components[choice][choice_index] = choice_entry
            self._component_sizes[choice] += 1
            if self._component_sizes[choice] == 1:
                # First entry in this component: wake its lazily-dormant folded
                # registers so subsequent lookups read live folds.
                registers = self._fold_registers
                if registers is not None:
                    registers.activate(choice)
                    registers.activate(num_components + choice)
        choice_entry.valid = True
        choice_entry.tag = self._meta_tag(meta, choice)
        choice_entry.value = actual
        choice_entry.confidence = 0
        choice_entry.useful = 0

    def train(self, pc: int, actual: int, prediction: VPrediction | None) -> None:
        if prediction is None or prediction.meta is None:
            # Should not happen in the pipeline (every eligible µ-op is looked up), but
            # keep the base component learning for robustness.
            self._train_base(self._base_index(pc), actual & _MASK64)
            return
        self.train_parts(pc, actual, prediction.meta, prediction.value)

    def train_parts(
        self, pc: int, actual: int, meta: _VTAGEMeta, predicted_value: int
    ) -> None:
        """:meth:`train` taking the lookup flattened to ``(meta, value)``.

        The confidence bump (:meth:`_bump_confidence`, kept as the reference) is
        inlined on the dominant correct-provider path.
        """
        actual &= _MASK64
        if meta.provider >= 0:
            entry = self._components[meta.provider][meta.provider_index]
            if entry is not None and entry.valid and entry.tag == meta.provider_tag:
                if entry.value == actual:
                    confidence = entry.confidence
                    saturation = self._saturation
                    if confidence < saturation and self._policy.allows_increment(
                        confidence
                    ):
                        confidence += 1
                        entry.confidence = confidence
                    if confidence >= saturation:
                        entry.useful = 1
                else:
                    if entry.confidence == 0:
                        entry.value = actual
                        entry.useful = 0
                    else:
                        entry.confidence = 0
                    self._allocate(meta, actual)
            else:
                # The entry was replaced between fetch and commit; treat as a miss.
                self._allocate(meta, actual)
        else:
            if not (self._base_valid[meta.base_index] and predicted_value == actual):
                self._allocate(meta, actual)
        self._train_base(meta.base_index, actual)

    def storage_bits(self) -> int:
        base = self.base_entries * (self.value_bits + 3)
        tagged = 0
        for rank in range(self.num_components):
            per_entry = self.value_bits + 3 + 1 + (self.tag_bits + rank)
            tagged += self.tagged_entries * per_entry
        return base + tagged
