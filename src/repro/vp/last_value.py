"""Last-Value Predictor (LVP) — Lipasti et al., 1996.

Predicts that an instruction will produce the same value as its previous dynamic
instance.  Included both as a historical baseline and as the building block of the
VTAGE base component.
"""

from __future__ import annotations

from repro.bpu.history import GlobalHistory
from repro.errors import ConfigurationError
from repro.vp.base import ValuePredictor, VPrediction
from repro.vp.confidence import FPCPolicy, PAPER_FPC_VECTOR

_MASK64 = (1 << 64) - 1


def _mix_pc(pc: int) -> int:
    """Cheap deterministic PC hash used to index the prediction tables."""
    pc &= _MASK64
    pc ^= pc >> 17
    pc = (pc * 0x9E3779B97F4A7C15) & _MASK64
    return pc ^ (pc >> 31)


class LastValuePredictor(ValuePredictor):
    """A tagged last-value table guarded by FPC confidence counters."""

    name = "lvp"

    def __init__(
        self,
        entries: int = 8192,
        tag_bits: int = 12,
        value_bits: int = 64,
        fpc_vector=PAPER_FPC_VECTOR,
        seed: int = 0xA11CE,
    ) -> None:
        super().__init__()
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError("LVP entry count must be a positive power of two")
        self.entries = entries
        self.tag_bits = tag_bits
        self.value_bits = value_bits
        self._index_mask = entries - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._policy = FPCPolicy(fpc_vector, seed=seed)
        self._tags = [0] * entries
        self._values = [0] * entries
        self._confidence = [0] * entries
        self._valid = [False] * entries

    # ------------------------------------------------------------------ indexing
    def _index(self, pc: int) -> int:
        return _mix_pc(pc) & self._index_mask

    def _tag(self, pc: int) -> int:
        return (_mix_pc(pc * 31 + 17) >> 7) & self._tag_mask

    # ------------------------------------------------------------------ interface
    def predict(self, pc: int, history: GlobalHistory) -> VPrediction | None:
        index = self._index(pc)
        if not self._valid[index] or self._tags[index] != self._tag(pc):
            return None
        confident = self._confidence[index] >= self._policy.saturation
        return VPrediction(self._values[index], confident, self.name, meta=index)

    def train(self, pc: int, actual: int, prediction: VPrediction | None) -> None:
        index = self._index(pc)
        tag = self._tag(pc)
        actual &= _MASK64
        if self._valid[index] and self._tags[index] == tag:
            if self._values[index] == actual:
                if self._confidence[index] < self._policy.saturation and self._policy.allows_increment(
                    self._confidence[index]
                ):
                    self._confidence[index] += 1
            else:
                self._confidence[index] = 0
                self._values[index] = actual
        else:
            self._valid[index] = True
            self._tags[index] = tag
            self._values[index] = actual
            self._confidence[index] = 0

    def storage_bits(self) -> int:
        per_entry = self.tag_bits + self.value_bits + 3 + 1
        return self.entries * per_entry
