"""The VTAGE-2DStride hybrid value predictor evaluated throughout the EOLE paper.

The hybrid combines a computational component (2-Delta Stride) with a context-based
component (VTAGE), following Table 2 and Section 4.2:

* VTAGE provides the prediction whenever one of its *tagged* components hits (the tag
  match means the global-branch-history context is recognised);
* otherwise the 2-Delta Stride component provides the prediction;
* the confidence of the providing component alone decides whether the prediction is
  used (each component carries its own Forward Probabilistic Counters);
* both components are trained at commit with the architectural value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.history import GlobalHistory
from repro.ooo.soa_batch import VALIDATE_MIN_BATCH, record_outcome_counts
from repro.vp.base import ValuePredictor, VPrediction
from repro.vp.confidence import PAPER_FPC_VECTOR
from repro.vp.stride import _MASK64, TwoDeltaStridePredictor
from repro.vp.vtage import VTAGEPredictor


@dataclass(slots=True)
class _HybridMeta:
    """Per-prediction context: the component lookups, for separate training.

    The component results are carried *flattened* (value/confidence/meta fields
    instead of per-component :class:`VPrediction` wrappers): the hybrid performs one
    lookup per VP-eligible µ-op, so avoiding two wrapper allocations per lookup is
    measurable on the simulator's fetch path.
    """

    vtage_value: int
    vtage_confident: bool
    vtage_meta: object
    stride_hit: bool
    stride_value: int
    stride_confident: bool
    chosen: str


class VTAGE2DStrideHybrid(ValuePredictor):
    """The paper's hybrid predictor (Table 2): VTAGE + 2D-Stride, FPC confidence."""

    name = "vtage-2dstride"

    def __init__(
        self,
        vtage: VTAGEPredictor | None = None,
        stride: TwoDeltaStridePredictor | None = None,
        fpc_vector=PAPER_FPC_VECTOR,
        seed: int = 0xE01E,
    ) -> None:
        super().__init__()
        self.vtage = vtage if vtage is not None else VTAGEPredictor(
            fpc_vector=fpc_vector, seed=seed ^ 0x1
        )
        self.stride = stride if stride is not None else TwoDeltaStridePredictor(
            fpc_vector=fpc_vector, seed=seed ^ 0x2
        )

    # ------------------------------------------------------------------ interface
    def predict(self, pc: int, history: GlobalHistory) -> VPrediction | None:
        vtage_value, vtage_confident, vtage_meta = self.vtage.lookup_parts(pc, history)
        stride_parts = self.stride.lookup_parts(pc, history)
        if stride_parts is None:
            stride_hit = stride_confident = False
            stride_value = 0
        else:
            stride_hit = True
            stride_value, stride_confident = stride_parts

        vtage_tagged_hit = vtage_meta.provider >= 0
        # Arbitration: a confident context-based (VTAGE) prediction wins, then a
        # confident computational (2D-Stride) one; with no confident component the
        # VTAGE tagged hit is preferred for training purposes, then the stride entry.
        if vtage_tagged_hit and vtage_confident:
            chosen, value, confident = "vtage", vtage_value, vtage_confident
        elif stride_confident:
            chosen, value, confident = "stride", stride_value, stride_confident
        elif vtage_confident:
            chosen, value, confident = "vtage", vtage_value, vtage_confident
        elif vtage_tagged_hit:
            chosen, value, confident = "vtage", vtage_value, vtage_confident
        elif stride_hit:
            chosen, value, confident = "stride", stride_value, stride_confident
        else:
            chosen, value, confident = "vtage", vtage_value, vtage_confident

        return VPrediction(
            value,
            confident,
            self.name,
            _HybridMeta(
                vtage_value,
                vtage_confident,
                vtage_meta,
                stride_hit,
                stride_value,
                stride_confident,
                chosen,
            ),
        )

    def train(self, pc: int, actual: int, prediction: VPrediction | None) -> None:
        if prediction is None or prediction.meta is None:
            self.vtage.train(pc, actual, None)
            self.stride.train(pc, actual, None)
            return
        meta: _HybridMeta = prediction.meta
        self.vtage.train_parts(pc, actual, meta.vtage_meta, meta.vtage_value)
        self.stride.train_parts(pc, actual, meta.stride_hit, meta.stride_value)

    def train_commit_group(
        self, group: list[tuple[int, int, VPrediction | None]]
    ) -> None:
        """Per-commit-group training with the wrapper layers flattened.

        One call per commit group replaces the per-µ-op
        ``validate_and_train -> record_outcome -> train -> train_parts`` chain;
        the outcome accounting is inlined and the component ``train_parts``
        methods are called directly, in the same per-item order (FPC draw
        sequences are unchanged).
        """
        stats = self.stats
        vtage_train = self.vtage.train_parts
        stride_train = self.stride.train_parts
        for pc, actual, prediction in group:
            if prediction is not None:
                # Inlined PredictorStatistics.record_outcome.
                if prediction.confident:
                    if prediction.value == actual:
                        stats.correct_used += 1
                    else:
                        stats.incorrect_used += 1
                elif prediction.value == actual:
                    stats.unused_correct += 1
                meta: _HybridMeta = prediction.meta
                if meta is not None:
                    vtage_train(pc, actual, meta.vtage_meta, meta.vtage_value)
                    stride_train(pc, actual, meta.stride_hit, meta.stride_value)
                    continue
            self.vtage.train(pc, actual, None)
            self.stride.train(pc, actual, None)

    def train_commit_group_columns(
        self,
        pcs: list[int],
        actuals: list[int],
        predictions: list[VPrediction | None],
        batch: bool = False,
    ) -> None:
        """Columnar :meth:`train_commit_group` (parallel sequences, flattened
        wrappers).  With ``batch=True`` the outcome tallies are computed as one
        numpy equality-mask reduction when the whole group is batchable — the
        tallies are order-independent sums, so the per-item component training
        order (and the FPC draw sequence it drives) is untouched.
        """
        stats = self.stats
        vtage_train = self.vtage.train_parts
        stride_train = self.stride.train_parts
        counted = False
        if batch and len(pcs) >= VALIDATE_MIN_BATCH:
            counts = record_outcome_counts(actuals, predictions)
            if counts is not None:
                stats.correct_used += counts[0]
                stats.incorrect_used += counts[1]
                stats.unused_correct += counts[2]
                counted = True
        for pc, actual, prediction in zip(pcs, actuals, predictions):
            if prediction is not None:
                if not counted:
                    # Inlined PredictorStatistics.record_outcome.
                    if prediction.confident:
                        if prediction.value == actual:
                            stats.correct_used += 1
                        else:
                            stats.incorrect_used += 1
                    elif prediction.value == actual:
                        stats.unused_correct += 1
                meta: _HybridMeta = prediction.meta
                if meta is not None:
                    vtage_train(pc, actual, meta.vtage_meta, meta.vtage_value)
                    stride_train(pc, actual, meta.stride_hit, meta.stride_value)
                    continue
            self.vtage.train(pc, actual, None)
            self.stride.train(pc, actual, None)

    def lookup(self, pc: int, history: GlobalHistory) -> VPrediction | None:
        """One-call fetch path: both component lookups, arbitration and the
        lookup accounting fused (bit-identical to ``predict`` + ``record_lookup``,
        which remain the reference implementations)."""
        vtage = self.vtage
        vtage_value, vtage_confident, vtage_meta = vtage.lookup_parts(pc, history)
        # Inlined TwoDeltaStridePredictor.lookup_parts (kept as the reference).
        stride = self.stride
        cached = stride._pc_cache.get(pc)
        if cached is None:
            parts = stride.lookup_parts(pc, history)
        else:
            index, tag = cached
            entry = stride._table[index]
            if entry is None or not entry.valid or entry.tag != tag:
                parts = None
            else:
                predicted = (entry.spec_last + entry.stride2) & _MASK64
                parts = (predicted, entry.confidence >= stride._saturation)
                entry.spec_last = predicted
                if not entry.spec_dirty:
                    entry.spec_dirty = True
                    stride._spec_dirty.append(entry)
                entry.inflight += 1
        if parts is None:
            stride_hit = stride_confident = False
            stride_value = 0
        else:
            stride_hit = True
            stride_value, stride_confident = parts

        if vtage_confident:
            if vtage_meta.provider >= 0 or not stride_confident:
                chosen, value, confident = "vtage", vtage_value, True
            else:
                chosen, value, confident = "stride", stride_value, True
        elif stride_confident:
            chosen, value, confident = "stride", stride_value, True
        elif vtage_meta.provider >= 0:
            chosen, value, confident = "vtage", vtage_value, False
        elif stride_hit:
            chosen, value, confident = "stride", stride_value, False
        else:
            chosen, value, confident = "vtage", vtage_value, False

        stats = self.stats
        stats.lookups += 1
        if confident:
            stats.confident_predictions += 1
            per_source = stats.per_source
            per_source[self.name] = per_source.get(self.name, 0) + 1
        return VPrediction(
            value,
            confident,
            self.name,
            _HybridMeta(
                vtage_value,
                vtage_confident,
                vtage_meta,
                stride_hit,
                stride_value,
                stride_confident,
                chosen,
            ),
        )

    def recover(self) -> None:
        self.vtage.recover()
        self.stride.recover()

    def storage_bits(self) -> int:
        return self.vtage.storage_bits() + self.stride.storage_bits()


def default_paper_predictor(
    seed: int = 0xE01E, fpc_vector=PAPER_FPC_VECTOR
) -> VTAGE2DStrideHybrid:
    """The hybrid predictor with the paper's Table 2 sizing."""
    return VTAGE2DStrideHybrid(
        vtage=VTAGEPredictor(
            base_entries=8192,
            tagged_entries=1024,
            num_components=6,
            tag_bits=12,
            fpc_vector=fpc_vector,
            seed=seed ^ 0x1,
        ),
        stride=TwoDeltaStridePredictor(
            entries=8192, tag_bits=51, fpc_vector=fpc_vector, seed=seed ^ 0x2
        ),
        seed=seed,
    )
