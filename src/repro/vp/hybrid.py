"""The VTAGE-2DStride hybrid value predictor evaluated throughout the EOLE paper.

The hybrid combines a computational component (2-Delta Stride) with a context-based
component (VTAGE), following Table 2 and Section 4.2:

* VTAGE provides the prediction whenever one of its *tagged* components hits (the tag
  match means the global-branch-history context is recognised);
* otherwise the 2-Delta Stride component provides the prediction;
* the confidence of the providing component alone decides whether the prediction is
  used (each component carries its own Forward Probabilistic Counters);
* both components are trained at commit with the architectural value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.history import GlobalHistory
from repro.vp.base import ValuePredictor, VPrediction
from repro.vp.confidence import PAPER_FPC_VECTOR
from repro.vp.stride import TwoDeltaStridePredictor
from repro.vp.vtage import VTAGEPredictor


@dataclass(slots=True)
class _HybridMeta:
    """Per-prediction context: the component predictions, for separate training."""

    vtage: VPrediction | None
    stride: VPrediction | None
    chosen: str


class VTAGE2DStrideHybrid(ValuePredictor):
    """The paper's hybrid predictor (Table 2): VTAGE + 2D-Stride, FPC confidence."""

    name = "vtage-2dstride"

    def __init__(
        self,
        vtage: VTAGEPredictor | None = None,
        stride: TwoDeltaStridePredictor | None = None,
        fpc_vector=PAPER_FPC_VECTOR,
        seed: int = 0xE01E,
    ) -> None:
        super().__init__()
        self.vtage = vtage if vtage is not None else VTAGEPredictor(
            fpc_vector=fpc_vector, seed=seed ^ 0x1
        )
        self.stride = stride if stride is not None else TwoDeltaStridePredictor(
            fpc_vector=fpc_vector, seed=seed ^ 0x2
        )

    # ------------------------------------------------------------------ interface
    def predict(self, pc: int, history: GlobalHistory) -> VPrediction | None:
        vtage_pred = self.vtage.predict(pc, history)
        stride_pred = self.stride.predict(pc, history)

        vtage_tagged_hit = (
            vtage_pred is not None
            and vtage_pred.meta is not None
            and vtage_pred.meta.provider >= 0
        )
        vtage_confident = vtage_pred is not None and vtage_pred.confident
        stride_confident = stride_pred is not None and stride_pred.confident
        # Arbitration: a confident context-based (VTAGE) prediction wins, then a
        # confident computational (2D-Stride) one; with no confident component the
        # VTAGE tagged hit is preferred for training purposes, then the stride entry.
        if vtage_tagged_hit and vtage_confident:
            chosen, provider = "vtage", vtage_pred
        elif stride_confident:
            chosen, provider = "stride", stride_pred
        elif vtage_confident:
            chosen, provider = "vtage", vtage_pred
        elif vtage_tagged_hit:
            chosen, provider = "vtage", vtage_pred
        elif stride_pred is not None:
            chosen, provider = "stride", stride_pred
        elif vtage_pred is not None:
            chosen, provider = "vtage", vtage_pred
        else:
            return VPrediction(0, False, self.name, meta=_HybridMeta(None, None, "none"))

        meta = _HybridMeta(vtage_pred, stride_pred, chosen)
        return VPrediction(provider.value, provider.confident, self.name, meta=meta)

    def train(self, pc: int, actual: int, prediction: VPrediction | None) -> None:
        if prediction is None or prediction.meta is None:
            self.vtage.train(pc, actual, None)
            self.stride.train(pc, actual, None)
            return
        meta: _HybridMeta = prediction.meta
        self.vtage.train(pc, actual, meta.vtage)
        self.stride.train(pc, actual, meta.stride)

    def recover(self) -> None:
        self.vtage.recover()
        self.stride.recover()

    def storage_bits(self) -> int:
        return self.vtage.storage_bits() + self.stride.storage_bits()


def default_paper_predictor(
    seed: int = 0xE01E, fpc_vector=PAPER_FPC_VECTOR
) -> VTAGE2DStrideHybrid:
    """The hybrid predictor with the paper's Table 2 sizing."""
    return VTAGE2DStrideHybrid(
        vtage=VTAGEPredictor(
            base_entries=8192,
            tagged_entries=1024,
            num_components=6,
            tag_bits=12,
            fpc_vector=fpc_vector,
            seed=seed ^ 0x1,
        ),
        stride=TwoDeltaStridePredictor(
            entries=8192, tag_bits=51, fpc_vector=fpc_vector, seed=seed ^ 0x2
        ),
        seed=seed,
    )
