"""Forward Probabilistic Counters (FPC) — the confidence mechanism enabling EOLE.

Perais & Seznec (HPCA 2014) show that with probabilistic confidence counters the value
predictor only supplies a prediction when it is almost certainly right, which makes
commit-time validation plus pipeline squashing a viable recovery mechanism — the
property EOLE depends on (Section 3.1 of the EOLE paper).

A :class:`ForwardProbabilisticCounter` is a small saturating counter whose *forward*
transitions only happen with a configurable probability per level; any misprediction
resets it.  The EOLE paper uses 3-bit counters controlled by the probability vector
``{1, 1/32, 1/32, 1/32, 1/32, 1/64, 1/64}`` (Section 4.2).
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

from repro.errors import ConfigurationError

#: Probability vector used in the paper for the VTAGE-2DStride hybrid (Section 4.2).
PAPER_FPC_VECTOR: tuple[Fraction, ...] = (
    Fraction(1),
    Fraction(1, 32),
    Fraction(1, 32),
    Fraction(1, 32),
    Fraction(1, 32),
    Fraction(1, 64),
    Fraction(1, 64),
)

#: A deterministic (non-probabilistic) 3-bit vector, useful for ablations.
DETERMINISTIC_3BIT_VECTOR: tuple[Fraction, ...] = tuple(Fraction(1) for _ in range(7))

#: Scaled-down FPC vector used by default in the pipeline configurations.
#:
#: The paper simulates 50M warm-up + 100M instructions, so a static µ-op is typically
#: observed hundreds of thousands of times and the paper's vector (~257 correct
#: observations to saturate) is easily amortised.  The reproduction runs thousands of
#: µ-ops instead (DESIGN.md §5), so the forward probabilities are scaled up by roughly
#: the same factor as the run length is scaled down (~33 correct observations to
#: saturate).  The paper's exact vector remains available as :data:`PAPER_FPC_VECTOR`
#: and is exercised by the FPC ablation benchmark.
SCALED_FPC_VECTOR: tuple[Fraction, ...] = (
    Fraction(1),
    Fraction(1, 4),
    Fraction(1, 4),
    Fraction(1, 4),
    Fraction(1, 4),
    Fraction(1, 8),
    Fraction(1, 8),
)


class DeterministicRandom:
    """A tiny, fast, deterministic pseudo-random source (xorshift64*).

    Hardware FPC implementations use a shared LFSR; a deterministic software PRNG keeps
    simulation results exactly reproducible across runs.
    """

    __slots__ = ("_state",)

    _MASK = (1 << 64) - 1

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        self._state = (seed or 1) & self._MASK

    def next_u64(self) -> int:
        """Next 64-bit pseudo-random value."""
        x = self._state
        x ^= (x >> 12) & self._MASK
        x = (x ^ (x << 25)) & self._MASK
        x ^= x >> 27
        self._state = x & self._MASK
        return (x * 0x2545F4914F6CDD1D) & self._MASK

    def chance(self, probability: Fraction) -> bool:
        """Return True with the given probability."""
        if probability >= 1:
            return True
        if probability <= 0:
            return False
        threshold = int(probability * (1 << 32))
        return (self.next_u64() >> 32) < threshold

    def chance_half(self) -> bool:
        """Fair coin flip."""
        return bool(self.next_u64() & 1)


class FPCPolicy:
    """Shared policy (probability vector + PRNG) for a family of FPC counters."""

    __slots__ = ("vector", "saturation", "_random", "_thresholds")

    def __init__(
        self,
        vector: Sequence[Fraction] = PAPER_FPC_VECTOR,
        seed: int = 0xC0FFEE,
    ) -> None:
        if not vector:
            raise ConfigurationError("FPC probability vector must not be empty")
        self.vector = tuple(Fraction(p) for p in vector)
        for probability in self.vector:
            if not 0 <= probability <= 1:
                raise ConfigurationError(f"FPC probability out of range: {probability}")
        self.saturation = len(self.vector)
        self._random = DeterministicRandom(seed)
        # Precomputed per-level 32-bit draw thresholds (the Fraction arithmetic of
        # ``DeterministicRandom.chance`` is loop-invariant): ``None`` means "always"
        # (p >= 1, no PRNG draw — exactly like ``chance``), ``-1`` means "never".
        self._thresholds: list[int | None] = []
        for probability in self.vector:
            if probability >= 1:
                self._thresholds.append(None)
            elif probability <= 0:
                self._thresholds.append(-1)
            else:
                self._thresholds.append(int(probability * (1 << 32)))

    def allows_increment(self, level: int) -> bool:
        """Draw whether a counter currently at ``level`` may move forward."""
        if level >= self.saturation:
            return False
        threshold = self._thresholds[level]
        if threshold is None:
            return True
        if threshold < 0:
            return False
        return (self._random.next_u64() >> 32) < threshold


class ForwardProbabilisticCounter:
    """One FPC confidence counter."""

    __slots__ = ("policy", "value")

    def __init__(self, policy: FPCPolicy, value: int = 0) -> None:
        self.policy = policy
        self.value = value

    @property
    def saturated(self) -> bool:
        """True when the counter has reached its maximum: the prediction may be used."""
        return self.value >= self.policy.saturation

    def on_correct(self) -> None:
        """Record a correct prediction (probabilistic forward transition)."""
        if self.value < self.policy.saturation and self.policy.allows_increment(self.value):
            self.value += 1

    def on_incorrect(self) -> None:
        """Record an incorrect prediction (reset, as in the paper)."""
        self.value = 0

    def reset(self) -> None:
        """Explicitly reset the counter (entry replacement)."""
        self.value = 0
