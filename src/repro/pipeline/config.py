"""Pipeline configurations, including every named machine evaluated in the paper.

The defaults follow Table 1: an aggressive 8-wide fetch/rename/retire, 6-issue,
64-entry-IQ, 192-entry-ROB superscalar with a 15-cycle in-order front-end and a
3-cycle in-order back-end (19-cycle fetch-to-commit), a TAGE branch predictor, Store
Sets memory-dependence prediction and the Table 1 memory hierarchy.  Value prediction
adds the pre-commit LE/VT stage (fetch-to-commit becomes 20 cycles and the minimum value
misprediction penalty 21 cycles), exactly as described in Section 4.1.

Named configurations reproduce the paper's labels: ``Baseline_6_64``,
``Baseline_VP_6_64``, ``Baseline_VP_4_64``, ``Baseline_VP_6_48``, ``EOLE_6_64``,
``EOLE_4_64``, ``EOLE_6_48``, ``EOLE_4_64_4ports_4banks``, ``OLE_4_64`` and
``EOE_4_64``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.eole import EOLEConfig, EOLEVariant, eole_config
from repro.errors import ConfigurationError
from repro.mem.hierarchy import MemoryHierarchyConfig
from repro.ooo.functional_units import FunctionalUnitConfig
from repro.vp.confidence import SCALED_FPC_VECTOR
from repro.vp.fcm import FCMPredictor
from repro.vp.hybrid import VTAGE2DStrideHybrid, default_paper_predictor
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import StridePredictor, TwoDeltaStridePredictor
from repro.vp.vtage import VTAGEPredictor

#: Registry of value-predictor factories selectable by name in a configuration.
#: Each factory takes ``(seed, fpc_vector)``.
PREDICTOR_FACTORIES = {
    "vtage-2dstride": lambda seed, vector: default_paper_predictor(seed=seed, fpc_vector=vector),
    "vtage": lambda seed, vector: VTAGEPredictor(seed=seed, fpc_vector=vector),
    "2dstride": lambda seed, vector: TwoDeltaStridePredictor(seed=seed, fpc_vector=vector),
    "stride": lambda seed, vector: StridePredictor(seed=seed, fpc_vector=vector),
    "lvp": lambda seed, vector: LastValuePredictor(seed=seed, fpc_vector=vector),
    "fcm": lambda seed, vector: FCMPredictor(seed=seed, fpc_vector=vector),
    "hybrid-small": lambda seed, vector: VTAGE2DStrideHybrid(
        vtage=VTAGEPredictor(
            base_entries=2048, tagged_entries=256, fpc_vector=vector, seed=seed ^ 0x1
        ),
        stride=TwoDeltaStridePredictor(entries=2048, fpc_vector=vector, seed=seed ^ 0x2),
        seed=seed,
    ),
}


@dataclass
class PipelineConfig:
    """Complete description of one simulated machine."""

    name: str = "Baseline_6_64"
    # Widths (all in µ-ops, as in the paper's gem5 setup).
    fetch_width: int = 8
    rename_width: int = 8
    commit_width: int = 8
    issue_width: int = 6
    max_taken_branches_per_cycle: int = 2
    # Window sizes.
    iq_size: int = 64
    rob_size: int = 192
    lq_size: int = 48
    sq_size: int = 48
    # Pipeline depths / latencies (cycles).
    fetch_to_dispatch_latency: int = 15
    dispatch_to_issue_latency: int = 1
    writeback_to_commit_latency: int = 2
    decode_redirect_penalty: int = 5
    branch_resolution_extra: int = 2
    # Value prediction.
    value_prediction: bool = False
    predictor_name: str = "vtage-2dstride"
    predictor_seed: int = 0xE01E
    fpc_vector: tuple = SCALED_FPC_VECTOR
    # EOLE.
    eole: EOLEConfig = field(default_factory=EOLEConfig)
    # Physical register file.
    prf_banks: int = 1
    prf_registers: int = 512
    levt_read_ports_per_bank: int | None = None
    ee_write_ports_per_bank: int | None = None
    # Substrates.
    functional_units: FunctionalUnitConfig = field(default_factory=FunctionalUnitConfig)
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    # Branch predictor sizing.
    tage_bimodal_entries: int = 8192
    tage_tagged_entries: int = 1024
    tage_components: int = 12
    btb_entries: int = 4096
    ras_entries: int = 32
    # Store sets.
    store_sets_ssit: int = 1024
    store_sets_lfst: int = 1024

    def __post_init__(self) -> None:
        if self.issue_width <= 0 or self.fetch_width <= 0 or self.commit_width <= 0:
            raise ConfigurationError("pipeline widths must be positive")
        if self.iq_size <= 0 or self.rob_size <= 0:
            raise ConfigurationError("window sizes must be positive")
        if self.eole.enabled and not self.value_prediction:
            raise ConfigurationError(
                "EOLE requires value prediction with validation at commit (Section 3.1)"
            )
        if self.predictor_name not in PREDICTOR_FACTORIES:
            raise ConfigurationError(f"unknown value predictor {self.predictor_name!r}")

    # ------------------------------------------------------------------ derived helpers
    @property
    def has_levt_stage(self) -> bool:
        """True when the pre-commit LE/VT stage exists (any VP-enabled machine)."""
        return self.value_prediction

    @property
    def frontend_capacity(self) -> int:
        """Maximum number of fetched-but-not-dispatched µ-ops the front-end can hold."""
        return self.fetch_to_dispatch_latency * self.fetch_width

    def make_predictor(self):
        """Instantiate the value predictor named by this configuration."""
        return PREDICTOR_FACTORIES[self.predictor_name](self.predictor_seed, self.fpc_vector)

    def derive(self, **overrides) -> "PipelineConfig":
        """Copy this configuration with ``overrides`` applied (dataclass replace)."""
        return replace(self, **overrides)


# ---------------------------------------------------------------------- named machines
def baseline_6_64() -> PipelineConfig:
    """The paper's ``Baseline_6_64``: 6-issue, 64-entry IQ, no value prediction."""
    return PipelineConfig(name="Baseline_6_64")


def baseline_vp_6_64() -> PipelineConfig:
    """``Baseline_VP_6_64``: the 6-issue baseline plus VTAGE-2DStride value prediction."""
    return PipelineConfig(name="Baseline_VP_6_64", value_prediction=True)


def baseline_vp_4_64() -> PipelineConfig:
    """``Baseline_VP_4_64``: value prediction with the issue width shrunk to 4."""
    return PipelineConfig(name="Baseline_VP_4_64", value_prediction=True, issue_width=4)


def baseline_vp_6_48() -> PipelineConfig:
    """``Baseline_VP_6_48``: value prediction with the IQ shrunk to 48 entries."""
    return PipelineConfig(name="Baseline_VP_6_48", value_prediction=True, iq_size=48)


def _eole(name: str, issue_width: int, iq_size: int, variant: EOLEVariant) -> PipelineConfig:
    return PipelineConfig(
        name=name,
        value_prediction=True,
        issue_width=issue_width,
        iq_size=iq_size,
        eole=eole_config(variant=variant),
    )


def eole_6_64() -> PipelineConfig:
    """``EOLE_6_64``: Early + Late Execution on top of the 6-issue VP baseline."""
    return _eole("EOLE_6_64", issue_width=6, iq_size=64, variant=EOLEVariant.EOLE)


def eole_4_64() -> PipelineConfig:
    """``EOLE_4_64``: EOLE with the OoO issue width reduced to 4."""
    return _eole("EOLE_4_64", issue_width=4, iq_size=64, variant=EOLEVariant.EOLE)


def eole_6_48() -> PipelineConfig:
    """``EOLE_6_48``: EOLE with the IQ reduced to 48 entries."""
    return _eole("EOLE_6_48", issue_width=6, iq_size=48, variant=EOLEVariant.EOLE)


def eole_4_48() -> PipelineConfig:
    """EOLE with both the issue width (4) and the IQ (48) reduced (Section 7 headline)."""
    return _eole("EOLE_4_48", issue_width=4, iq_size=48, variant=EOLEVariant.EOLE)


def eole_4_64_banked(
    banks: int = 4,
    levt_ports_per_bank: int | None = 4,
    ee_write_ports_per_bank: int | None = 2,
) -> PipelineConfig:
    """``EOLE_4_64`` with a banked PRF and limited LE/VT read ports (Figs. 10-12)."""
    config = eole_4_64()
    ports = "inf" if levt_ports_per_bank is None else str(levt_ports_per_bank)
    return config.derive(
        name=f"EOLE_4_64_{ports}ports_{banks}banks",
        prf_banks=banks,
        levt_read_ports_per_bank=levt_ports_per_bank,
        ee_write_ports_per_bank=ee_write_ports_per_bank,
    )


def eole_4_64_4ports_4banks() -> PipelineConfig:
    """The paper's recommended realistic design point (Fig. 12)."""
    return eole_4_64_banked(banks=4, levt_ports_per_bank=4, ee_write_ports_per_bank=2)


def ole_4_64(banked: bool = True) -> PipelineConfig:
    """``OLE_4_64``: Late Execution only (Fig. 13), 4-bank PRF with 4 LE/VT ports."""
    config = _eole("OLE_4_64", issue_width=4, iq_size=64, variant=EOLEVariant.OLE)
    if banked:
        config = config.derive(
            prf_banks=4, levt_read_ports_per_bank=4, ee_write_ports_per_bank=2
        )
    return config


def eoe_4_64(banked: bool = True) -> PipelineConfig:
    """``EOE_4_64``: Early Execution only (Fig. 13), 4-bank PRF with 4 LE/VT ports."""
    config = _eole("EOE_4_64", issue_width=4, iq_size=64, variant=EOLEVariant.EOE)
    if banked:
        config = config.derive(
            prf_banks=4, levt_read_ports_per_bank=4, ee_write_ports_per_bank=2
        )
    return config


def baseline_8_64() -> PipelineConfig:
    """An 8-issue machine (footnote 7: only marginal speedup over 6-issue)."""
    return PipelineConfig(name="Baseline_8_64", issue_width=8)


#: All named configurations, keyed by their paper label.
NAMED_CONFIGS = {
    "Baseline_6_64": baseline_6_64,
    "Baseline_8_64": baseline_8_64,
    "Baseline_VP_6_64": baseline_vp_6_64,
    "Baseline_VP_4_64": baseline_vp_4_64,
    "Baseline_VP_6_48": baseline_vp_6_48,
    "EOLE_6_64": eole_6_64,
    "EOLE_4_64": eole_4_64,
    "EOLE_6_48": eole_6_48,
    "EOLE_4_48": eole_4_48,
    "EOLE_4_64_4ports_4banks": eole_4_64_4ports_4banks,
    "OLE_4_64": ole_4_64,
    "EOE_4_64": eoe_4_64,
}


def named_config(name: str) -> PipelineConfig:
    """Instantiate a named configuration by its paper label."""
    if name not in NAMED_CONFIGS:
        raise ConfigurationError(f"unknown named configuration {name!r}")
    return NAMED_CONFIGS[name]()
