"""Cycle-level pipeline model: configurations, the simulator and its statistics."""

from repro.pipeline.config import (
    NAMED_CONFIGS,
    PipelineConfig,
    baseline_6_64,
    baseline_8_64,
    baseline_vp_4_64,
    baseline_vp_6_48,
    baseline_vp_6_64,
    eoe_4_64,
    eole_4_48,
    eole_4_64,
    eole_4_64_4ports_4banks,
    eole_4_64_banked,
    eole_6_48,
    eole_6_64,
    named_config,
    ole_4_64,
)
from repro.pipeline.multi_replay import MultiSimulator, PlaneSpec
from repro.pipeline.simulator import Simulator, simulate
from repro.pipeline.stats import SimStats, SimulationResult

__all__ = [
    "MultiSimulator",
    "NAMED_CONFIGS",
    "PipelineConfig",
    "PlaneSpec",
    "SimStats",
    "SimulationResult",
    "Simulator",
    "baseline_6_64",
    "baseline_8_64",
    "baseline_vp_4_64",
    "baseline_vp_6_48",
    "baseline_vp_6_64",
    "eoe_4_64",
    "eole_4_48",
    "eole_4_64",
    "eole_4_64_4ports_4banks",
    "eole_4_64_banked",
    "eole_6_48",
    "eole_6_64",
    "named_config",
    "ole_4_64",
    "simulate",
]
