"""Single-pass multi-config replay: one captured trace through N configurations.

Design-space sweeps replay the *same* workload trace through many pipeline
configurations (issue width, IQ size, VP port/bank counts — every figure grid of
the paper has this shape).  :class:`MultiSimulator` runs one such sweep axis as a
single pass over the trace:

* **one decode, N consumers** — the shared :class:`~repro.trace.encoding.CapturedTrace`
  is materialised once (and captured long enough for the *deepest* fetch-ahead
  window in the batch, see :meth:`repro.trace.cache.TraceCache.trace_for_many`),
  so a batch never pays the serial path's re-capture ratchet when a later config
  needs a longer trace;
* **per-config planes** — each configuration owns a full :class:`Simulator`
  (pool columns, IQ/ROB/LSQ/PRF occupancy, VP/BPU predictor tables, event
  wheel).  Planes never share timing or predictor state: a predictor's table
  contents at the fetch of µ-op *j* depend on how many older µ-ops have already
  *committed* (training happens at commit), which is timing- and therefore
  config-dependent — any cross-plane sharing of lookups would break the
  byte-identity contract.  Independence is what makes the engine bit-identical
  to serial replay *by construction*;
* **min-cycle windowed scheduling** — a shared scheduler repeatedly advances the
  least-advanced plane by a bounded cycle window (:meth:`Simulator.advance`), so
  all planes walk the same region of the trace together (one pass, shared
  ``DynInst`` locality) while each plane's own event wheel keeps cycle-skipping
  inside its window;
* **one gc span** — the collector is disabled once around all planes instead of
  once per simulation.

``REPRO_MULTI_REPLAY=1`` opts the execution layers (campaign executor, grid
runner) into routing same-workload cell groups through this engine;
``REPRO_MULTI_REPLAY_WIDTH`` caps how many configurations share one pass.  The
serial per-cell path remains the byte-identical reference — the same
kill-switch discipline as ``REPRO_EVENT_DRIVEN`` / ``REPRO_WAKEUP_LISTS`` /
``REPRO_SOA`` (see docs/performance.md for the honest measurement of what the
single pass does and does not buy).
"""

from __future__ import annotations

import gc
import heapq
import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.pipeline.config import PipelineConfig
from repro.pipeline.simulator import Simulator
from repro.pipeline.stats import SimulationResult

#: Environment variable: ``1`` routes same-workload cell groups through
#: :class:`MultiSimulator` (opt-in; the serial path is the reference).
MULTI_REPLAY_ENV_VAR = "REPRO_MULTI_REPLAY"

#: Environment variable: maximum configurations per multi-replay pass
#: (``0``/unset = no cap — all configs of a batch share one pass).
MULTI_REPLAY_WIDTH_ENV_VAR = "REPRO_MULTI_REPLAY_WIDTH"

#: Cycles a plane advances per scheduler turn.  Large enough that the per-turn
#: bookkeeping (heap push/pop, perf_counter reads, loop-local re-hoisting)
#: amortises to noise, small enough that planes stay inside the same region of
#: the shared trace (a 2500-µ-op test cell spans a few thousand cycles).
DEFAULT_WINDOW = 4096


def multi_replay_enabled() -> bool:
    """True when ``REPRO_MULTI_REPLAY`` opts into the multi-config replay engine."""
    return os.environ.get(MULTI_REPLAY_ENV_VAR, "0").lower() in ("1", "on", "true")


def multi_replay_width() -> int:
    """Configs-per-pass cap (env ``REPRO_MULTI_REPLAY_WIDTH``; 0 = uncapped)."""
    env = os.environ.get(MULTI_REPLAY_WIDTH_ENV_VAR)
    if not env:
        return 0
    return max(1, int(env))


@dataclass(frozen=True)
class PlaneSpec:
    """One configuration plane of a multi-replay pass."""

    config: PipelineConfig
    max_uops: int
    warmup_uops: int = 0


class MultiSimulator:
    """Replay one workload trace through N configuration planes in one pass.

    ``specs`` orders the planes; :meth:`run` returns one
    :class:`SimulationResult` per spec in the same order, each byte-identical to
    what a serial ``Simulator(spec.config, ...).run()`` over the same trace
    produces.  ``make_state`` supplies a *fresh* architectural state per plane
    for the ``trace=None`` inline-emulation path (each plane then runs its own
    emulator, exactly like serial cells do); ``simulator_factory`` lets
    instrumented callers substitute a ``Simulator`` subclass (the profiler's
    stage-timing wrapper).
    """

    def __init__(
        self,
        specs: Sequence[PlaneSpec],
        program,
        *,
        workload_name: str | None = None,
        trace=None,
        make_state: Callable | None = None,
        window: int = DEFAULT_WINDOW,
        simulator_factory: type[Simulator] = Simulator,
    ) -> None:
        if not specs:
            raise ValueError("MultiSimulator needs at least one PlaneSpec")
        if window < 1:
            raise ValueError("scheduler window must be at least one cycle")
        self.window = window
        self.planes: list[Simulator] = [
            simulator_factory(
                spec.config,
                program,
                max_uops=spec.max_uops,
                warmup_uops=spec.warmup_uops,
                arch_state=make_state() if trace is None and make_state else None,
                workload_name=workload_name,
                trace=trace,
            )
            for spec in specs
        ]
        #: Per-plane simulation wall clock (scheduler/capture overhead excluded),
        #: accumulated across scheduler turns — the campaign executor's per-cell
        #: telemetry attribution.
        self.plane_seconds: list[float] = [0.0] * len(self.planes)

    def run(self) -> list[SimulationResult]:
        """Advance every plane to completion; results in plane (spec) order."""
        planes = self.planes
        plane_seconds = self.plane_seconds
        window = self.window
        perf = time.perf_counter
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            # Min-cycle heap: always advance the least-advanced plane, so the
            # whole batch sweeps the trace front-to-back together.  The index
            # tiebreak keeps plane order deterministic (cosmetic only — planes
            # are independent, so *any* schedule produces identical results).
            heap = [
                (sim.cycle, index)
                for index, sim in enumerate(planes)
                if not sim._finished
            ]
            heapq.heapify(heap)
            while heap:
                cycle, index = heapq.heappop(heap)
                sim = planes[index]
                started = perf()
                finished = sim.advance(cycle + window)
                plane_seconds[index] += perf() - started
                if not finished:
                    heapq.heappush(heap, (sim.cycle, index))
        finally:
            if gc_was_enabled:
                gc.enable()
        return [sim.result() for sim in planes]
