"""Simulation statistics and results.

:class:`SimStats` is a flat record of event counters filled in by the simulator.
Measurement windows (warm-up vs. region of interest, Section 4.3) are implemented by
snapshotting the counters when warm-up ends and reporting the difference.
:class:`SimulationResult` packages the windowed statistics together with the derived
metrics used by the experiments (IPC, Early/Late-Execution shares, predictor coverage).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace


@dataclass(slots=True)
class SimStats:
    """Raw event counters of one simulation (slotted: the simulator increments these
    counters millions of times per run)."""

    cycles: int = 0
    fetched_uops: int = 0
    committed_uops: int = 0
    committed_branches: int = 0
    committed_cond_branches: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_vp_eligible: int = 0
    # EOLE offload.
    early_executed: int = 0
    late_executed_alu: int = 0
    late_resolved_branches: int = 0
    dispatched_to_iq: int = 0
    # Value prediction.
    predictions_used: int = 0
    value_mispredictions: int = 0
    flag_only_mispredictions: int = 0
    # Branch prediction.
    branch_mispredictions: int = 0
    high_confidence_branch_mispredictions: int = 0
    decode_redirects: int = 0
    # Memory.
    memory_order_violations: int = 0
    forwarded_loads: int = 0
    # Recovery.
    pipeline_squashes: int = 0
    squashed_uops: int = 0
    # Dispatch stalls (counted in stall-causing µ-op slots).
    rob_full_stalls: int = 0
    iq_full_stalls: int = 0
    lsq_full_stalls: int = 0
    prf_bank_stalls: int = 0
    ee_write_port_stalls: int = 0
    levt_port_stalls: int = 0
    late_alu_stalls: int = 0

    def copy(self) -> "SimStats":
        """Shallow copy (all fields are ints)."""
        return replace(self)

    def to_dict(self) -> dict:
        """Field name → counter value (JSON-safe)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        """Rebuild from :meth:`to_dict` output; unknown keys are ignored (forward compat)."""
        known = {f.name for f in fields(cls)}
        return cls(**{name: value for name, value in data.items() if name in known})

    def delta(self, earlier: "SimStats") -> "SimStats":
        """Counter-wise difference ``self - earlier`` (measurement window extraction)."""
        values = {
            f.name: getattr(self, f.name) - getattr(earlier, f.name) for f in fields(self)
        }
        return SimStats(**values)

    @property
    def ipc(self) -> float:
        """Committed µ-ops per cycle."""
        return self.committed_uops / self.cycles if self.cycles else 0.0

    @property
    def early_executed_ratio(self) -> float:
        """Fraction of committed µ-ops that were early-executed (Fig. 2)."""
        return self.early_executed / self.committed_uops if self.committed_uops else 0.0

    @property
    def late_executed_ratio(self) -> float:
        """Fraction of committed µ-ops late-executed or late-resolved (Fig. 4)."""
        late = self.late_executed_alu + self.late_resolved_branches
        return late / self.committed_uops if self.committed_uops else 0.0

    @property
    def offload_ratio(self) -> float:
        """Fraction of committed µ-ops that bypassed the OoO engine (Section 3.4)."""
        return self.early_executed_ratio + self.late_executed_ratio

    @property
    def prediction_used_ratio(self) -> float:
        """Fraction of committed µ-ops whose result was taken from the value predictor."""
        return self.predictions_used / self.committed_uops if self.committed_uops else 0.0

    @property
    def branch_mpki(self) -> float:
        """Branch mispredictions per kilo committed µ-ops."""
        if not self.committed_uops:
            return 0.0
        return 1000.0 * self.branch_mispredictions / self.committed_uops


@dataclass
class SimulationResult:
    """Everything a study needs to know about one simulation run."""

    config_name: str
    workload_name: str
    stats: SimStats
    full_stats: SimStats
    warmup_uops: int = 0
    predictor_coverage: float = 0.0
    predictor_accuracy: float = 0.0
    tage_misprediction_rate: float = 0.0
    tage_high_confidence_misprediction_rate: float = 0.0
    l1d_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """IPC over the measurement window."""
        return self.stats.ipc

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """IPC ratio of this run over ``baseline`` (the paper's speedup metric)."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def to_dict(self) -> dict:
        """JSON-safe dict form, so results survive pickling boundaries and sessions.

        Used by the campaign subsystem to ship results from worker processes and to
        persist them in the on-disk result store; :meth:`from_dict` inverts it exactly.
        """
        return {
            "config_name": self.config_name,
            "workload_name": self.workload_name,
            "stats": self.stats.to_dict(),
            "full_stats": self.full_stats.to_dict(),
            "warmup_uops": self.warmup_uops,
            "predictor_coverage": self.predictor_coverage,
            "predictor_accuracy": self.predictor_accuracy,
            "tage_misprediction_rate": self.tage_misprediction_rate,
            "tage_high_confidence_misprediction_rate": (
                self.tage_high_confidence_misprediction_rate
            ),
            "l1d_miss_rate": self.l1d_miss_rate,
            "l2_miss_rate": self.l2_miss_rate,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            config_name=data["config_name"],
            workload_name=data["workload_name"],
            stats=SimStats.from_dict(data["stats"]),
            full_stats=SimStats.from_dict(data["full_stats"]),
            warmup_uops=data.get("warmup_uops", 0),
            predictor_coverage=data.get("predictor_coverage", 0.0),
            predictor_accuracy=data.get("predictor_accuracy", 0.0),
            tage_misprediction_rate=data.get("tage_misprediction_rate", 0.0),
            tage_high_confidence_misprediction_rate=data.get(
                "tage_high_confidence_misprediction_rate", 0.0
            ),
            l1d_miss_rate=data.get("l1d_miss_rate", 0.0),
            l2_miss_rate=data.get("l2_miss_rate", 0.0),
            extra=dict(data.get("extra", {})),
        )

    def summary(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.workload_name:>14s} @ {self.config_name:<24s} "
            f"IPC={self.ipc:5.3f}  offload={self.stats.offload_ratio:5.1%}  "
            f"EE={self.stats.early_executed_ratio:5.1%}  LE={self.stats.late_executed_ratio:5.1%}  "
            f"VP-used={self.stats.prediction_used_ratio:5.1%}"
        )
