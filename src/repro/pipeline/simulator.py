"""The cycle-level EOLE pipeline simulator.

This is the timing model tying every substrate together.  It is a trace-driven,
correct-path, cycle-by-cycle model of the machine described in Table 1 of the paper,
optionally augmented with value prediction (validation at commit, squash recovery) and
with the EOLE Early/Late Execution blocks.

Each simulated cycle processes, in order:

1. **completions** — µ-ops finishing execution this cycle (branch resolution, memory
   ordering checks);
2. **commit / LE-VT** — in-order retirement of up to ``commit_width`` µ-ops, including
   Late Execution, prediction validation, predictor training and squash on value
   misprediction;
3. **issue** — age-ordered select of up to ``issue_width`` ready µ-ops from the IQ,
   bounded by the functional-unit pool;
4. **rename/dispatch** — up to ``rename_width`` µ-ops leave the front-end, get renamed,
   classified for Early/Late Execution, and allocated ROB/IQ/LSQ/PRF resources;
5. **fetch** — up to ``fetch_width`` µ-ops enter the front-end, consulting the branch
   predictor and the value predictor.

The main loop is **event-driven**: after each simulated cycle the scheduler computes
the earliest future cycle at which *any* stage could make progress or mutate state (a
completion firing, the ROB head's minimum commit cycle, the issue scan's re-arm cycle,
the front-end head's dispatch-maturity deadline, the fetch resume point) and jumps
``cycle`` directly there, crediting the skipped span in bulk to the per-cycle counters
(``stats.cycles``, plus the recurring dispatch structural-stall counter when the
front-end is blocked on a full ROB/LSQ/PRF bank).  The result is byte-identical to
stepping every cycle — ``REPRO_EVENT_DRIVEN=0`` retains the cycle-stepping loop as the
reference, and ``tests/trace/test_simulation_determinism.py`` compares the two across a
configuration × workload grid.

See DESIGN.md §5 for the modelling assumptions (wrong-path effects, speculative
scheduling) and their justification, and docs/performance.md for the event-wheel
design and its dead-cycle/stat-crediting rules.
"""

from __future__ import annotations

import gc
import os
from bisect import insort
from collections import deque
from collections.abc import Iterable, Iterator

from repro.bpu.btb import BranchTargetBuffer, ReturnAddressStack
from repro.bpu.history import GlobalHistory
from repro.bpu.tage import TAGEBranchPredictor
from repro.bpu.unit import BranchPredictionUnit
from repro.core.early_execution import EarlyExecutionBlock
from repro.core.late_execution import LateExecutionBlock
from repro.errors import SimulationError
from repro.isa.emulator import ArchState, Emulator
from repro.isa.flags import approximate_flags, flags_match_for_validation
from repro.isa.opcode import OpClass
from repro.isa.program import Program
from repro.isa.trace import DynInst
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.metrics import drain_simulator_metrics, maybe_sim_metrics
from repro.obs.tracer import maybe_tracer
from repro.ooo.functional_units import FunctionalUnitPool
from repro.ooo.inflight import (
    ColumnarInflightOpPool,
    InflightOp,
    InflightOpPool,
    UNKNOWN_CYCLE,
    soa_batch_enabled,
    soa_enabled,
)
from repro.ooo.issue_queue import (
    _NEVER as _SHARED_NEVER,
    WAKEUP_ENV_VAR,
    IssueQueue,
    WakeupIssueQueue,
    wakeup_lists_enabled,
)
from repro.ooo.lsq import LoadStoreQueue
from repro.ooo.soa_batch import (
    DRAIN_MIN_BATCH,
    batch_available,
    drain_completions_batch,
)
from repro.ooo.registers import BankedRegisterFile, PRFPortBudget
from repro.ooo.rob import ReorderBuffer
from repro.ooo.store_sets import StoreSets
from repro.pipeline.config import PipelineConfig
from repro.pipeline.stats import SimStats, SimulationResult
from repro.trace.encoding import CapturedTrace

#: Environment variable: ``0`` selects the cycle-stepping reference loop instead of
#: the event-driven scheduler (both produce byte-identical results).
EVENT_DRIVEN_ENV_VAR = "REPRO_EVENT_DRIVEN"


def event_driven_enabled() -> bool:
    """True unless ``REPRO_EVENT_DRIVEN=0`` selects the cycle-stepping reference."""
    return os.environ.get(EVENT_DRIVEN_ENV_VAR, "1") != "0"


class Simulator:
    """Cycle-level simulator of one machine configuration running one workload."""

    #: Safety factor: a run is aborted if it exceeds this many cycles per committed µ-op.
    _DEADLOCK_CYCLES_PER_UOP = 400
    _DEADLOCK_SLACK_CYCLES = 200_000

    def __init__(
        self,
        config: PipelineConfig,
        program: Program,
        max_uops: int = 20_000,
        warmup_uops: int = 0,
        arch_state: ArchState | None = None,
        workload_name: str | None = None,
        trace: "CapturedTrace | Iterable[DynInst] | None" = None,
    ) -> None:
        if warmup_uops >= max_uops:
            raise SimulationError("warmup_uops must be smaller than max_uops")
        self.config = config
        self.program = program
        self.max_uops = max_uops
        self.warmup_uops = warmup_uops
        self.workload_name = workload_name if workload_name is not None else program.name

        # Architectural trace source.  Fetch runs ahead of commit by at most the ROB
        # plus the front-end, so a bounded-slack emulator limit is sufficient.  A
        # pre-captured trace (repro.trace) replaces the inline emulator entirely; it
        # must cover at least the same bounded-slack window to be bit-equivalent.
        # ``_trace_list`` is the fetch fast path: a materialised capture is consumed
        # by plain list indexing (one bounds check + one index per µ-op) instead of
        # a generator resume; ``_trace`` remains the uniform iterator interface for
        # the inline-emulation and ad-hoc-iterable paths.
        self._trace_list: tuple[DynInst, ...] | None = None
        self._trace_pos = 0
        if trace is not None:
            if isinstance(trace, CapturedTrace):
                self._trace_list = trace.instructions()
                self._trace: Iterator[DynInst] = iter(())
            else:
                self._trace = iter(trace)
        else:
            emulator_budget = max_uops + config.rob_size + config.frontend_capacity + 64
            self._trace = Emulator(program, state=arch_state).run(emulator_budget)
        self._trace_exhausted = False
        self._replay: deque[DynInst] = deque()

        # Substrates.
        self.history = GlobalHistory()
        self.bpu = BranchPredictionUnit(
            tage=TAGEBranchPredictor(
                bimodal_entries=config.tage_bimodal_entries,
                tagged_entries=config.tage_tagged_entries,
                num_components=config.tage_components,
            ),
            btb=BranchTargetBuffer(entries=config.btb_entries),
            ras=ReturnAddressStack(entries=config.ras_entries),
            history=self.history,
        )
        self.predictor = config.make_predictor() if config.value_prediction else None
        self.hierarchy = MemoryHierarchy(config.memory)
        self.rob = ReorderBuffer(config.rob_size)
        # Dependency-driven wake-up (REPRO_WAKEUP_LISTS, default on): producers keep
        # explicit consumer lists and the IQ maintains an age-ordered ready list, so
        # wake-up is O(woken) and select O(ready) instead of O(occupancy) walks.
        # The scan-based IssueQueue remains the byte-identical reference.
        self._wakeup = wakeup_lists_enabled()
        self.iq = (
            WakeupIssueQueue(config.iq_size, config.dispatch_to_issue_latency)
            if self._wakeup
            else IssueQueue(config.iq_size)
        )
        self.lsq = LoadStoreQueue(config.lq_size, config.sq_size)
        self.store_sets = StoreSets(config.store_sets_ssit, config.store_sets_lfst)
        self.fu_pool = FunctionalUnitPool(config.functional_units)
        self.prf = BankedRegisterFile(
            num_banks=config.prf_banks,
            total_registers=config.prf_registers,
            budget=PRFPortBudget(
                ee_write_ports_per_bank=config.ee_write_ports_per_bank,
                levt_read_ports_per_bank=config.levt_read_ports_per_bank,
            ),
        )
        self.early_block = EarlyExecutionBlock(config.eole.early)
        self.late_block = LateExecutionBlock(config.eole.late)

        # Derived constants hoisted out of the per-cycle loops.
        self._commit_extra = config.writeback_to_commit_latency + (
            1 if config.has_levt_stage else 0
        )
        self._levt_ports_limited = (
            config.has_levt_stage and config.levt_read_ports_per_bank is not None
        )
        self._ee_enabled = config.eole.early.enabled
        self._late_enabled = config.eole.late.enabled
        self._multi_bank = config.prf_banks > 1
        self._d2i = config.dispatch_to_issue_latency
        # Completion-wheel diet (wake-up mode): a completion's only effect for
        # µ-ops that are neither stores nor blocking fetch is ``executed = True``,
        # and every reader of that flag also compares against the commit deadline
        # ``complete_cycle + _commit_extra`` — so those µ-ops set the flag at
        # issue and skip the wheel entirely.  The reference scan IQ *does* need
        # every completion on the wheel (its issue-scan re-arm listens to them).
        self._wheel_all = not self._wakeup

        # Issue-scan gating: IQ readiness only changes on discrete events — a
        # completion firing, a dispatched entry maturing past dispatch_to_issue
        # latency, a squash flipping dependence flags, or functional-unit/width
        # pressure from a previous scan.  ``_iq_scan_from`` is the earliest cycle at
        # which a select could find new work; scans before it are provably empty and
        # are skipped (bit-identical: a skipped scan mutates no state and counts no
        # statistics, exactly like an empty walk).
        self._iq_scan_from = 0

        # Pipeline state.
        self.cycle = 0
        self.stats = SimStats()
        self._warmup_snapshot: SimStats | None = None
        self._warmup_done = warmup_uops == 0
        if self._warmup_done:
            self._warmup_snapshot = SimStats()
        self._frontend: deque[InflightOp] = deque()
        self._completions: dict[int, list[InflightOp]] = {}
        self._rename_map: dict[int, InflightOp] = {}
        self._previous_dispatch_group: list[InflightOp] = []
        self._fetch_resume_cycle = 0
        self._fetch_blocked_on: InflightOp | None = None
        self._finished = False
        self._deadlock_limit = (
            max_uops * self._DEADLOCK_CYCLES_PER_UOP + self._DEADLOCK_SLACK_CYCLES
        )

        # Pooled µ-op records: fetch acquires, retire/squash give back (retire goes
        # through a barrier — younger IQ entries keep reading their producers).
        # Structure-of-arrays backend (REPRO_SOA=1, opt-in): the timing/flag
        # state lives in the pool's parallel columns and the ``_soa`` stage
        # variants below read/write those columns directly, byte-identical to
        # the default object-record loops.  ``REPRO_SOA_BATCH=1`` additionally
        # opts into the numpy batch kernels of :mod:`repro.ooo.soa_batch`
        # (gracefully ignored when numpy is unavailable).
        self._soa = soa_enabled()
        self.pool = ColumnarInflightOpPool() if self._soa else InflightOpPool()
        self._soa_batch = self._soa and soa_batch_enabled() and batch_available()
        if self._soa:
            self.iq.bind_pool(self.pool)
        self._last_dispatched_seq = -1

        # Event-driven scheduling state.  ``_dispatch_stall_reason`` is non-None
        # exactly when dispatch ended the cycle stalled on a structural resource with
        # *zero* progress — a state that provably recurs (and counts one stall per
        # cycle) until some other pipeline event frees the resource, which is what
        # lets the scheduler credit those cycles in bulk instead of ticking them.
        self._event_driven = event_driven_enabled()
        self._dispatch_stall_reason: str | None = None

        # Observability (repro.obs): both hooks are None unless their env switch
        # opts in, so every hot-path site pays one ``is not None`` check and the
        # disabled path stays byte-identical (see docs/observability.md).
        self.tracer = maybe_tracer()
        self.metrics = metrics = maybe_sim_metrics()
        if metrics is not None:
            self._m_iq_occupancy = metrics.histogram("iq.occupancy")
            self._m_wakeup_depth = metrics.histogram("iq.wakeup_list_depth")
            self._m_skip_distance = metrics.histogram(
                "scheduler.skip_distance", power_of_two=True
            )
            self._m_squash_depth = metrics.histogram("squash.depth", power_of_two=True)
        else:
            self._m_iq_occupancy = None
            self._m_wakeup_depth = None
            self._m_skip_distance = None
            self._m_squash_depth = None
        if self.tracer is not None:
            self.iq.tracer = self.tracer

    # ================================================================== public API
    def run(self) -> SimulationResult:
        """Run the simulation to completion and return its result."""
        # The simulation allocates no reference cycles on its hot paths (records are
        # pooled, prediction/outcome objects are acyclic), so the generational
        # collector's periodic heap walks are pure overhead while it runs.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.advance()
        finally:
            if gc_was_enabled:
                gc.enable()
        return self._build_result()

    def advance(self, stop_cycle: int | None = None) -> bool:
        """Advance until finished or ``self.cycle >= stop_cycle``; True when done.

        The resumable entry point under the multi-config replay engine
        (:mod:`repro.pipeline.multi_replay`): every piece of loop state lives on
        ``self`` and the fused event loops re-hoist their locals on entry, so a
        sequence of bounded calls walks exactly the state sequence one unbounded
        call would.  A call may overshoot ``stop_cycle`` by a skipped dead span
        (the scheduler jumps straight to the next event) — callers that interleave
        planes must read back ``self.cycle`` rather than assume the bound.
        Garbage-collection policy belongs to the caller: :meth:`run` disables the
        collector around a full run, ``MultiSimulator`` once around all planes.
        """
        deadlock_limit = self._deadlock_limit
        # The loops raise before the cycle counter can pass deadlock_limit + 1,
        # so that horizon doubles as the "no stop" bound.
        stop = deadlock_limit + 2 if stop_cycle is None else stop_cycle
        if self._event_driven:
            if self._soa:
                self._run_event_driven_soa(deadlock_limit, stop)
            else:
                self._run_event_driven(deadlock_limit, stop)
        else:
            while not self._finished and self.cycle < stop:
                self._step()
                if self.cycle > deadlock_limit:
                    self._raise_deadlock(deadlock_limit)
        return self._finished

    def result(self) -> SimulationResult:
        """The finished run's result (requires :meth:`advance` to have returned True)."""
        if not self._finished:
            raise SimulationError("simulation still in flight: advance() it to completion")
        return self._build_result()

    def _raise_deadlock(self, deadlock_limit: int) -> None:
        raise SimulationError(
            f"simulation exceeded {deadlock_limit} cycles "
            f"({self.stats.committed_uops} µ-ops committed): likely deadlock"
        )

    def _run_event_driven(self, deadlock_limit: int, stop: int) -> None:
        """The event-wheel main loop: step on event cycles, jump over dead spans.

        ``stop`` bounds the walk for resumable multi-plane interleaving
        (:meth:`advance`); an unbounded run passes the never-reached
        ``deadlock_limit + 2``, so the extra loop-condition comparison is the
        entire cost of resumability.

        Invariant: a skipped cycle is one where the cycle-stepping loop would only
        have incremented ``stats.cycles`` (and, when dispatch is parked on a
        structural stall, one stall counter) — every candidate source in
        :meth:`_next_event_cycle` is conservative, so any cycle that could mutate
        other state is stepped normally.

        This loop is the fused fast path: the per-cycle stage guards of
        :meth:`_step`, the event-candidate computation of
        :meth:`_next_event_cycle` and the bulk crediting of
        :meth:`_skip_dead_cycles` are inlined into one body with the stable
        pipeline structures hoisted into locals, so the common stepped cycle pays
        no per-stage method indirection beyond the stages that actually run.
        Those three methods remain the cycle-stepping reference implementation
        (``REPRO_EVENT_DRIVEN=0``), and the determinism suite compares the two.
        """
        stats = self.stats
        completions = self._completions
        frontend = self._frontend
        replay = self._replay
        rob_entries = self.rob._entries
        commit_extra = self._commit_extra
        frontend_capacity = self.config.frontend_capacity
        never = self._NEVER
        process_completions = self._process_completions
        commit = self._commit
        issue = self._issue
        dispatch = self._dispatch
        fetch = self._fetch
        while not self._finished and self.cycle < stop:
            # ---- one stepped cycle (the _step reference, guards inlined) ----
            cycle = self.cycle + 1
            self.cycle = cycle
            stats.cycles += 1
            if completions and cycle in completions:
                process_completions()
            if not self._finished:
                if rob_entries:
                    head = rob_entries[0]
                    if head.executed and cycle >= head.complete_cycle + commit_extra:
                        commit()
                if not self._finished:
                    if cycle >= self._iq_scan_from:
                        issue()
                    if frontend and frontend[0].dispatch_ready_cycle <= cycle:
                        dispatch()
                    else:
                        self._previous_dispatch_group = []
                        self._dispatch_stall_reason = None
                    if (
                        self._fetch_blocked_on is None
                        and cycle >= self._fetch_resume_cycle
                        and len(frontend) < frontend_capacity
                    ):
                        fetch()
                    if (
                        self._trace_exhausted
                        and not replay
                        and not frontend
                        and not rob_entries
                    ):
                        self._finished = True
            if cycle > deadlock_limit:
                self._raise_deadlock(deadlock_limit)
            if self._finished:
                break
            # ---- event scheduling (the _next_event_cycle reference, inlined) ----
            # Fast path: when dispatch or fetch is guaranteed to act next cycle,
            # the minimum candidate is cycle + 1 and the gap is zero — skip the
            # full candidate scan (identical behaviour, nothing to credit).
            if frontend:
                if (
                    frontend[0].dispatch_ready_cycle <= cycle
                    and self._dispatch_stall_reason is None
                ):
                    continue
            elif (
                self._fetch_blocked_on is None
                and self._fetch_resume_cycle <= cycle
                and (replay or not self._trace_exhausted)
            ):
                continue
            nxt = never
            if completions:
                nxt = min(completions)
            if rob_entries:
                head = rob_entries[0]
                if head.executed:
                    ready = head.complete_cycle + commit_extra
                    candidate = ready if ready > cycle else cycle + 1
                    if candidate < nxt:
                        nxt = candidate
            scan = self._iq_scan_from
            if scan != never:
                candidate = scan if scan > cycle else cycle + 1
                if candidate < nxt:
                    nxt = candidate
            if frontend:
                ready = frontend[0].dispatch_ready_cycle
                if ready > cycle:
                    if ready < nxt:
                        nxt = ready
                elif self._dispatch_stall_reason is None:
                    if cycle + 1 < nxt:
                        nxt = cycle + 1
            if (
                self._fetch_blocked_on is None
                and (replay or not self._trace_exhausted)
                and len(frontend) < frontend_capacity
            ):
                resume = self._fetch_resume_cycle
                candidate = resume if resume > cycle else cycle + 1
                if candidate < nxt:
                    nxt = candidate
            if nxt > deadlock_limit + 1:
                # No event before the deadlock horizon: step once at the horizon so
                # the reference loop's failure mode (and cycle accounting) is kept.
                nxt = deadlock_limit + 1
            gap = nxt - cycle - 1
            if gap > 0:
                self._skip_dead_cycles(gap)

    def _run_event_driven_soa(self, deadlock_limit: int, stop: int) -> None:
        """:meth:`_run_event_driven` over the SoA columns.

        Same fused body; the per-cycle reads of the ROB head's executed flag and
        completion deadline and of the front-end head's dispatch maturity come
        straight from the pool's ``c_flags``/``c_complete``/``c_disp_ready``
        columns instead of going through the slot-view properties, and the stage
        calls bind the ``_soa`` variants directly.
        """
        stats = self.stats
        completions = self._completions
        frontend = self._frontend
        replay = self._replay
        rob_entries = self.rob._entries
        commit_extra = self._commit_extra
        frontend_capacity = self.config.frontend_capacity
        never = self._NEVER
        pool = self.pool
        c_flags = pool.c_flags
        c_complete = pool.c_complete
        c_disp_ready = pool.c_disp_ready
        process_completions = self._process_completions_soa
        commit = self._commit_soa
        issue = self._issue_wakeup_soa if self._wakeup else self._issue
        dispatch = self._dispatch_soa
        fetch = self._fetch_soa
        while not self._finished and self.cycle < stop:
            # ---- one stepped cycle (the _step reference, guards inlined) ----
            cycle = self.cycle + 1
            self.cycle = cycle
            stats.cycles += 1
            if completions and cycle in completions:
                process_completions()
            if not self._finished:
                if rob_entries:
                    slot = rob_entries[0].slot
                    if c_flags[slot] & 32 and cycle >= c_complete[slot] + commit_extra:
                        commit()
                if not self._finished:
                    if cycle >= self._iq_scan_from:
                        issue()
                    if frontend and c_disp_ready[frontend[0].slot] <= cycle:
                        dispatch()
                    else:
                        self._previous_dispatch_group = []
                        self._dispatch_stall_reason = None
                    if (
                        self._fetch_blocked_on is None
                        and cycle >= self._fetch_resume_cycle
                        and len(frontend) < frontend_capacity
                    ):
                        fetch()
                    if (
                        self._trace_exhausted
                        and not replay
                        and not frontend
                        and not rob_entries
                    ):
                        self._finished = True
            if cycle > deadlock_limit:
                self._raise_deadlock(deadlock_limit)
            if self._finished:
                break
            # ---- event scheduling (the _next_event_cycle reference, inlined) ----
            if frontend:
                if (
                    c_disp_ready[frontend[0].slot] <= cycle
                    and self._dispatch_stall_reason is None
                ):
                    continue
            elif (
                self._fetch_blocked_on is None
                and self._fetch_resume_cycle <= cycle
                and (replay or not self._trace_exhausted)
            ):
                continue
            nxt = never
            if completions:
                nxt = min(completions)
            if rob_entries:
                slot = rob_entries[0].slot
                if c_flags[slot] & 32:
                    ready = c_complete[slot] + commit_extra
                    candidate = ready if ready > cycle else cycle + 1
                    if candidate < nxt:
                        nxt = candidate
            scan = self._iq_scan_from
            if scan != never:
                candidate = scan if scan > cycle else cycle + 1
                if candidate < nxt:
                    nxt = candidate
            if frontend:
                ready = c_disp_ready[frontend[0].slot]
                if ready > cycle:
                    if ready < nxt:
                        nxt = ready
                elif self._dispatch_stall_reason is None:
                    if cycle + 1 < nxt:
                        nxt = cycle + 1
            if (
                self._fetch_blocked_on is None
                and (replay or not self._trace_exhausted)
                and len(frontend) < frontend_capacity
            ):
                resume = self._fetch_resume_cycle
                candidate = resume if resume > cycle else cycle + 1
                if candidate < nxt:
                    nxt = candidate
            if nxt > deadlock_limit + 1:
                nxt = deadlock_limit + 1
            gap = nxt - cycle - 1
            if gap > 0:
                self._skip_dead_cycles(gap)

    #: Sentinel for "no known future event" (also used by the issue-scan gating).
    # Shared with the wake-up IQ's wheel sentinel: the fused issue path copies
    # ``iq._wake_min`` straight into ``_iq_scan_from``, so the two "no known
    # future cycle" values must be the same object of comparison.
    _NEVER = _SHARED_NEVER

    def _next_event_cycle(self) -> int:
        """Earliest future cycle at which any pipeline stage could make progress.

        Candidate sources, mirroring the stage order of :meth:`_step`:

        * **completions** — the earliest pending entry of the completion wheel;
        * **commit** — if the ROB head has executed, its minimum commit cycle
          (``complete_cycle`` plus the writeback/LE-VT latency); a head already past
          it is stalled on per-cycle-counted width/port/ALU limits and re-arms next
          cycle.  A head that has *not* executed needs a completion or an issue
          first, which the other candidates cover;
        * **issue** — ``_iq_scan_from``, the scan re-arm cycle maintained by
          :meth:`_issue` (dispatch-maturity deadline or an event having lowered it);
        * **dispatch** — the front-end head's ``dispatch_ready_cycle``; a head that
          is already dispatch-ready re-arms next cycle *unless* the stage is parked
          on a recurring structural stall, which only another stage's event can
          clear (the skipped span is then credited to that stall counter);
        * **fetch** — the fetch resume point, whenever fetch is unblocked, the trace
          has µ-ops left and the front-end has room (fetch otherwise resumes only as
          a consequence of one of the other events).
        """
        cycle = self.cycle
        nxt = self._NEVER
        completions = self._completions
        if completions:
            nxt = min(completions)
        head = self.rob.head()
        if head is not None and head.executed:
            ready = head.complete_cycle + self._commit_extra
            candidate = ready if ready > cycle else cycle + 1
            if candidate < nxt:
                nxt = candidate
        scan = self._iq_scan_from
        if scan != self._NEVER:
            candidate = scan if scan > cycle else cycle + 1
            if candidate < nxt:
                nxt = candidate
        frontend = self._frontend
        if frontend:
            ready = frontend[0].dispatch_ready_cycle
            if ready > cycle:
                if ready < nxt:
                    nxt = ready
            elif self._dispatch_stall_reason is None:
                if cycle + 1 < nxt:
                    nxt = cycle + 1
        if (
            self._fetch_blocked_on is None
            and (self._replay or not self._trace_exhausted)
            and len(frontend) < self.config.frontend_capacity
        ):
            resume = self._fetch_resume_cycle
            candidate = resume if resume > cycle else cycle + 1
            if candidate < nxt:
                nxt = candidate
        return nxt

    def _skip_dead_cycles(self, gap: int) -> None:
        """Jump over ``gap`` provably-dead cycles, crediting per-cycle counters.

        A dead cycle, stepped by the reference loop, would increment
        ``stats.cycles``, clear the previous-dispatch bypass group, and — when the
        front-end head is dispatch-ready but structurally blocked — count exactly one
        dispatch stall against the blocking resource.  Everything else is untouched
        by construction (see :meth:`_next_event_cycle`), so those effects are applied
        in bulk here.
        """
        self.cycle += gap
        self.stats.cycles += gap
        self._previous_dispatch_group = []
        reason = self._dispatch_stall_reason
        if reason is not None:
            # Mirrors _count_dispatch_stall (the per-cycle reference), credited gap
            # cycles at once.
            if reason == "rob":
                self.stats.rob_full_stalls += gap
            elif reason == "lsq":
                self.stats.lsq_full_stalls += gap
            elif reason == "prf":
                self.stats.prf_bank_stalls += gap
                self.prf.record_bank_full_stall(gap)
            else:  # pragma: no cover - _dispatch only parks on the reasons above
                raise SimulationError(f"unknown dispatch stall reason {reason!r}")
        if self._m_skip_distance is not None:
            self._m_skip_distance.record(gap)

    def _step(self) -> None:
        """Advance the machine by one cycle.

        Each stage call is preceded by an inline guard replicating that stage's own
        no-work early-exit, so a cycle in which a stage provably does nothing pays
        one comparison instead of a call (the stages keep their early-exits and
        remain callable on their own — the guards are pure short-circuits).
        """
        cycle = self.cycle + 1
        self.cycle = cycle
        self.stats.cycles += 1
        if self._completions and cycle in self._completions:
            self._process_completions()
            if self._finished:
                return
        rob_entries = self.rob._entries
        if rob_entries:
            head = rob_entries[0]
            if head.executed and cycle >= head.complete_cycle + self._commit_extra:
                self._commit()
                if self._finished:
                    return
        if cycle >= self._iq_scan_from:
            self._issue()
        frontend = self._frontend
        if frontend and frontend[0].dispatch_ready_cycle <= cycle:
            self._dispatch()
        else:
            self._previous_dispatch_group = []
            self._dispatch_stall_reason = None
        if (
            self._fetch_blocked_on is None
            and cycle >= self._fetch_resume_cycle
            and len(frontend) < self.config.frontend_capacity
        ):
            self._fetch()
        if (
            self._trace_exhausted
            and not self._replay
            and not frontend
            and not rob_entries
        ):
            self._finished = True

    # ================================================================== completion
    def _process_completions(self) -> None:
        if self._soa:
            self._process_completions_soa()
            return
        ops = self._completions.pop(self.cycle, None)
        if not ops:
            return
        rearm = not self._wakeup
        tracer = self.tracer
        for op in ops:
            op.in_completion_wheel = False
            if rearm and op.iq_waiters and not op.squashed and self.cycle < self._iq_scan_from:
                # The completed producer has waiting IQ consumers: they may wake
                # this very cycle.  (Completions nobody renamed against — stores,
                # branches, dead values — never need to re-arm the scan: store-set
                # dependences release at store *issue*, not completion.  The
                # wake-up IQ needs no completion re-arm at all: a waking
                # consumer's exact deadline is already on its wheel.)
                self._iq_scan_from = self.cycle
            if op.squashed:
                # A squashed µ-op's stale wheel entry was its last reference; its
                # record is recyclable the moment the entry pops.
                if tracer is not None:
                    tracer.emit(self.cycle, "complete", op, "squashed")
                self.pool.release(op)
                continue
            op.executed = True
            if tracer is not None:
                tracer.emit(self.cycle, "complete", op)
            if op is self._fetch_blocked_on:
                self._resume_fetch_after_resolution()
            if op.uop.is_store:
                self.store_sets.store_executed(op)
                violator = self.lsq.detect_violation(op)
                if violator is not None:
                    self.stats.memory_order_violations += 1
                    self.store_sets.train_violation(violator.pc, op.pc)
                    self._squash_from(violator.seq, "memory_order")

    def _process_completions_soa(self) -> None:
        """:meth:`_process_completions` over the SoA columns.

        The wheel-flag clear and the executed set collapse into single byte
        stores on the flag columns; with ``REPRO_SOA_BATCH=1`` a store-free,
        squash-free drain of at least :data:`DRAIN_MIN_BATCH` entries is handed
        to the numpy kernel instead (which verifies that precondition itself and
        refuses — mutating nothing — otherwise).  The kernel path is gated on
        the tracer being off: per-op completion events need the scalar loop.
        """
        cycle = self.cycle
        ops = self._completions.pop(cycle, None)
        if not ops:
            return
        pool = self.pool
        c_flags = pool.c_flags
        c_flags2 = pool.c_flags2
        c_iq_waiters = pool.c_iq_waiters
        c_hot = pool.c_hot
        rearm = not self._wakeup
        tracer = self.tracer
        if (
            self._soa_batch
            and tracer is None
            and len(ops) >= DRAIN_MIN_BATCH
            and drain_completions_batch(pool, ops)
        ):
            # The kernel handled the flag updates; the remaining per-op effects
            # are the issue-scan re-arm (scan mode, first op with IQ waiters —
            # idempotent, so one hit suffices) and the fetch unblock.  Stores
            # and squashed entries are impossible here by the kernel's own
            # precondition check.
            if rearm and cycle < self._iq_scan_from:
                for op in ops:
                    if c_iq_waiters[op.slot]:
                        self._iq_scan_from = cycle
                        break
            blocked = self._fetch_blocked_on
            if blocked is not None:
                for op in ops:
                    if op is blocked:
                        self._resume_fetch_after_resolution()
                        break
            return
        c_seq = pool.c_seq
        c_pc = pool.c_pc
        pool_free = pool._free
        store_sets = self.store_sets
        lsq = self.lsq
        stats = self.stats
        for op in ops:
            slot = op.slot
            c_flags2[slot] &= 0xFD  # clear in_completion_wheel
            flags = c_flags[slot]
            if rearm and c_iq_waiters[slot] and not flags & 64 and cycle < self._iq_scan_from:
                self._iq_scan_from = cycle
            if flags & 64:  # squashed: the stale wheel entry was the last reference
                if tracer is not None:
                    tracer.emit_slot(
                        cycle, "complete", c_seq[slot], c_pc[slot], slot, "squashed"
                    )
                pool_free.append(slot)
                continue
            c_flags[slot] = flags | 32  # executed
            if tracer is not None:
                tracer.emit_slot(cycle, "complete", c_seq[slot], c_pc[slot], slot)
            if op is self._fetch_blocked_on:
                self._resume_fetch_after_resolution()
            if c_hot[slot] & 8:  # store
                store_sets.store_executed(op)
                violator = lsq.detect_violation(op)
                if violator is not None:
                    stats.memory_order_violations += 1
                    store_sets.train_violation(violator.pc, op.pc)
                    self._squash_from(violator.seq, "memory_order")

    def _resume_fetch_after_resolution(self) -> None:
        self._fetch_blocked_on = None
        self._fetch_resume_cycle = max(
            self._fetch_resume_cycle, self.cycle + self.config.branch_resolution_extra
        )

    # ================================================================== commit / LE-VT
    def _minimum_commit_cycle(self, op: InflightOp) -> int:
        extra = 1 if self.config.has_levt_stage else 0
        return op.complete_cycle + self.config.writeback_to_commit_latency + extra

    def _commit(self) -> None:
        """In-order retirement of up to ``commit_width`` µ-ops (the LE/VT stage).

        Fused fast path: the per-µ-op :meth:`_retire` bookkeeping and the
        :meth:`_validate_and_train` correctness decision are inlined (both are
        kept below as the reference implementations), and the commit-side table
        training is batched into one ``train_commit_group`` call per commit
        group for the branch predictor and the value predictor each.  The
        deferral is invisible: the deferred updates touch only predictor tables
        and predictor-local statistics (read at result-build time), never
        ``SimStats``; their per-item order is the commit order; and on a value
        misprediction the batch — offender included, which trains exactly like
        the reference — is flushed *before* :meth:`_squash_from` runs predictor
        recovery.  The correctness decision itself needs no table state (it
        compares the fetched prediction against the architectural result), so
        deciding before training is equivalent.
        """
        if self._soa:
            self._commit_soa()
            return
        committed = 0
        late_alus_used = 0
        cycle = self.cycle
        commit_extra = self._commit_extra
        late_alu_limit = self.late_block.config.alus
        commit_width = self.config.commit_width
        levt_limited = self._levt_ports_limited
        # The head peek/pop pair runs once per committed µ-op: the deque is read
        # directly (same entries ReorderBuffer.head/pop_head expose).
        rob_entries = self.rob._entries
        stats = self.stats
        predictor = self.predictor
        rename_map = self._rename_map
        prf = self.prf
        lsq = self.lsq
        pool_deferred = self.pool._deferred
        hierarchy_store = self.hierarchy.store
        store_sets = self.store_sets
        last_dispatched = self._last_dispatched_seq
        tracer = self.tracer
        vp_group: list = []
        bpu_group: list = []
        squash_seq = -1
        while committed < commit_width:
            if not rob_entries:
                break
            op = rob_entries[0]
            if not op.executed:
                break
            if cycle < op.complete_cycle + commit_extra:
                break
            late_executed = op.late_executed
            if late_executed and late_alus_used >= late_alu_limit:
                stats.late_alu_stalls += 1
                break
            if levt_limited:
                banks = self.late_block.levt_read_banks(op)
                if not prf.try_levt_reads(banks, cycle):
                    stats.levt_port_stalls += 1
                    break

            # The µ-op retires this cycle (inlined _retire).
            rob_entries.popleft()
            op.commit_cycle = cycle
            committed += 1
            if late_executed:
                late_alus_used += 1
            uop = op.uop
            dyn = op.dyn
            kind = uop.hot_mask
            stats.committed_uops += 1
            if kind & 1:  # branch
                stats.committed_branches += 1
                if kind & 2:
                    stats.committed_cond_branches += 1
            if kind & 4:  # load
                stats.committed_loads += 1
                if op.load_forwarded:
                    stats.forwarded_loads += 1
            elif kind & 8:  # store
                stats.committed_stores += 1
                if dyn.addr is not None:
                    hierarchy_store(dyn.addr, op.pc, cycle)
                # Scrub any remaining LFST reference before the record is recycled
                # (observably a no-op: a retired store already has ``issued`` set).
                store_sets.store_retired(op)
            if kind & 32:  # vp-eligible
                stats.committed_vp_eligible += 1
            if op.early_executed:
                stats.early_executed += 1
            elif late_executed:
                if kind & 2:
                    stats.late_resolved_branches += 1
                else:
                    stats.late_executed_alu += 1
            if op.pred_used:
                stats.predictions_used += 1
            if tracer is not None:
                tracer.emit(cycle, "commit", op)

            # Free the rename mapping and the physical register.
            for dst in uop.dst_regs:
                if rename_map.get(dst) is op:
                    del rename_map[dst]
            if kind & 64:  # has a destination register
                prf.release(op.dest_bank)
            if kind & 16:  # memory
                lsq.remove(op)

            # Branch predictor training (batched) and late branch resolution.
            if kind & 1:
                outcome = op.branch_outcome
                if kind & 2 and outcome is not None:
                    bpu_group.append((op.pc, outcome))
                    if outcome.mispredicted:
                        stats.branch_mispredictions += 1
                        if outcome.high_confidence:
                            stats.high_confidence_branch_mispredictions += 1
                    if op is self._fetch_blocked_on:
                        # A late-resolved (LE/VT) mispredicted branch unblocks
                        # fetch at commit.
                        self._resume_fetch_after_resolution()
                elif outcome is not None and outcome.mispredicted:
                    stats.branch_mispredictions += 1

            if not self._warmup_done and stats.committed_uops >= self.warmup_uops:
                self._warmup_snapshot = stats.copy()
                self._warmup_done = True
            if stats.committed_uops >= self.max_uops:
                self._finished = True

            # Park the record for recycling (inlined pool.retire; see _retire).
            pool_deferred.append((last_dispatched, op))
            if self._finished:
                # The reference returns before validating the run's final µ-op;
                # mirror it (its value-predictor entry is never appended).
                break

            # Prediction validation (inlined _validate_and_train; training deferred).
            if predictor is not None and kind & 32 and dyn.result is not None:
                actual = dyn.result
                prediction = op.prediction
                vp_group.append((op.pc, actual, prediction))
                if op.pred_used:
                    value_correct = prediction.value == actual
                    flags_ok = True
                    if kind & 128 and dyn.flags_result is not None:
                        flags_ok = flags_match_for_validation(
                            dyn.flags_result, approximate_flags(prediction.value)
                        )
                        if value_correct and not flags_ok:
                            stats.flag_only_mispredictions += 1
                    if not value_correct or not flags_ok:
                        # Value misprediction: the offending µ-op retires with the
                        # architectural value, everything younger is squashed and
                        # re-fetched (Section 3.1: pipeline squash).
                        stats.value_mispredictions += 1
                        squash_seq = op.seq + 1
                        break

        if bpu_group:
            self.bpu.train_commit_group(bpu_group)
        if vp_group:
            predictor.train_commit_group(vp_group)
        if squash_seq >= 0:
            self._squash_from(squash_seq, "value_mispred")

    def _commit_soa(self) -> None:
        """:meth:`_commit` over the SoA columns.

        The per-µ-op status flags are read with a single ``c_flags`` load and
        bit-tested (executed / late / early / pred-used / load-forwarded), and
        the deferred commit-group training is accumulated as parallel columns
        handed to ``train_commit_group_columns`` (``batch=`` forwards the
        ``REPRO_SOA_BATCH`` opt-in so the hybrid predictor may tally outcomes
        with one numpy reduction).  Same deferral-safety argument as the
        reference: per-item training order is the commit order and the batch is
        flushed before any value-misprediction squash runs predictor recovery.
        """
        committed = 0
        late_alus_used = 0
        cycle = self.cycle
        commit_extra = self._commit_extra
        late_alu_limit = self.late_block.config.alus
        commit_width = self.config.commit_width
        levt_limited = self._levt_ports_limited
        rob_entries = self.rob._entries
        stats = self.stats
        predictor = self.predictor
        rename_map = self._rename_map
        prf = self.prf
        lsq = self.lsq
        pool = self.pool
        pool_deferred = pool._deferred
        c_flags = pool.c_flags
        c_complete = pool.c_complete
        c_commit = pool.c_commit
        c_dest_bank = pool.c_dest_bank
        hierarchy_store = self.hierarchy.store
        store_sets = self.store_sets
        last_dispatched = self._last_dispatched_seq
        tracer = self.tracer
        vp_pcs: list[int] = []
        vp_actuals: list[int] = []
        vp_predictions: list = []
        bpu_pcs: list[int] = []
        bpu_outcomes: list = []
        squash_seq = -1
        while committed < commit_width:
            if not rob_entries:
                break
            op = rob_entries[0]
            slot = op.slot
            flags = c_flags[slot]
            if not flags & 32:  # executed
                break
            if cycle < c_complete[slot] + commit_extra:
                break
            late_executed = flags & 4
            if late_executed and late_alus_used >= late_alu_limit:
                stats.late_alu_stalls += 1
                break
            if levt_limited:
                banks = self.late_block.levt_read_banks(op)
                if not prf.try_levt_reads(banks, cycle):
                    stats.levt_port_stalls += 1
                    break

            # The µ-op retires this cycle (inlined _retire).
            rob_entries.popleft()
            c_commit[slot] = cycle
            committed += 1
            if late_executed:
                late_alus_used += 1
            uop = op.uop
            dyn = op.dyn
            kind = uop.hot_mask
            stats.committed_uops += 1
            if kind & 1:  # branch
                stats.committed_branches += 1
                if kind & 2:
                    stats.committed_cond_branches += 1
            if kind & 4:  # load
                stats.committed_loads += 1
                if flags & 128:  # load_forwarded
                    stats.forwarded_loads += 1
            elif kind & 8:  # store
                stats.committed_stores += 1
                if dyn.addr is not None:
                    hierarchy_store(dyn.addr, op.pc, cycle)
                # Scrub any remaining LFST reference before the record is recycled
                # (observably a no-op: a retired store already has ``issued`` set).
                store_sets.store_retired(op)
            if kind & 32:  # vp-eligible
                stats.committed_vp_eligible += 1
            if flags & 2:  # early_executed
                stats.early_executed += 1
            elif late_executed:
                if kind & 2:
                    stats.late_resolved_branches += 1
                else:
                    stats.late_executed_alu += 1
            if flags & 1:  # pred_used
                stats.predictions_used += 1
            if tracer is not None:
                tracer.emit(cycle, "commit", op)

            # Free the rename mapping and the physical register.
            for dst in uop.dst_regs:
                if rename_map.get(dst) is op:
                    del rename_map[dst]
            if kind & 64:  # has a destination register
                prf.release(c_dest_bank[slot])
            if kind & 16:  # memory
                lsq.remove(op)

            # Branch predictor training (batched) and late branch resolution.
            if kind & 1:
                outcome = op.branch_outcome
                if kind & 2 and outcome is not None:
                    bpu_pcs.append(op.pc)
                    bpu_outcomes.append(outcome)
                    if outcome.mispredicted:
                        stats.branch_mispredictions += 1
                        if outcome.high_confidence:
                            stats.high_confidence_branch_mispredictions += 1
                    if op is self._fetch_blocked_on:
                        # A late-resolved (LE/VT) mispredicted branch unblocks
                        # fetch at commit.
                        self._resume_fetch_after_resolution()
                elif outcome is not None and outcome.mispredicted:
                    stats.branch_mispredictions += 1

            if not self._warmup_done and stats.committed_uops >= self.warmup_uops:
                self._warmup_snapshot = stats.copy()
                self._warmup_done = True
            if stats.committed_uops >= self.max_uops:
                self._finished = True

            # Park the record for recycling (inlined pool.retire; see _retire).
            pool_deferred.append((last_dispatched, op))
            if self._finished:
                # The reference returns before validating the run's final µ-op;
                # mirror it (its value-predictor entry is never appended).
                break

            # Prediction validation (inlined _validate_and_train; training deferred).
            if predictor is not None and kind & 32 and dyn.result is not None:
                actual = dyn.result
                prediction = op.prediction
                vp_pcs.append(op.pc)
                vp_actuals.append(actual)
                vp_predictions.append(prediction)
                if flags & 1:  # pred_used
                    value_correct = prediction.value == actual
                    flags_ok = True
                    if kind & 128 and dyn.flags_result is not None:
                        flags_ok = flags_match_for_validation(
                            dyn.flags_result, approximate_flags(prediction.value)
                        )
                        if value_correct and not flags_ok:
                            stats.flag_only_mispredictions += 1
                    if not value_correct or not flags_ok:
                        # Value misprediction: the offending µ-op retires with the
                        # architectural value, everything younger is squashed and
                        # re-fetched (Section 3.1: pipeline squash).
                        stats.value_mispredictions += 1
                        squash_seq = op.seq + 1
                        break

        if bpu_pcs:
            self.bpu.train_commit_group_columns(bpu_pcs, bpu_outcomes)
        if vp_pcs:
            predictor.train_commit_group_columns(
                vp_pcs, vp_actuals, vp_predictions, batch=self._soa_batch
            )
        if squash_seq >= 0:
            self._squash_from(squash_seq, "value_mispred")

    def _retire(self, op: InflightOp) -> None:
        """Bookkeeping common to every retiring µ-op.

        Reference implementation: :meth:`_commit` inlines this per-µ-op body on
        its fast path (kept in sync; the only intentional difference is that the
        fast path defers ``bpu.train`` into a per-commit-group batch)."""
        uop = op.uop
        stats = self.stats
        stats.committed_uops += 1
        if uop.is_branch:
            stats.committed_branches += 1
            if uop.is_conditional_branch:
                stats.committed_cond_branches += 1
        if uop.is_load:
            stats.committed_loads += 1
            if op.load_forwarded:
                stats.forwarded_loads += 1
        if uop.is_store:
            stats.committed_stores += 1
            if op.dyn.addr is not None:
                self.hierarchy.store(op.dyn.addr, op.pc, self.cycle)
            # Scrub any remaining LFST reference before the record is recycled
            # (observably a no-op: a retired store already has ``issued`` set).
            self.store_sets.store_retired(op)
        if uop.vp_eligible:
            stats.committed_vp_eligible += 1
        if op.early_executed:
            stats.early_executed += 1
        elif op.late_executed:
            if uop.is_conditional_branch:
                stats.late_resolved_branches += 1
            else:
                stats.late_executed_alu += 1
        if op.pred_used:
            stats.predictions_used += 1
        if self.tracer is not None:
            self.tracer.emit(self.cycle, "commit", op)

        # Free the rename mapping and the physical register.
        for dst in uop.dst_regs:
            if self._rename_map.get(dst) is op:
                del self._rename_map[dst]
        if uop.dst is not None:
            self.prf.release(op.dest_bank)
        if uop.is_memory:
            self.lsq.remove(op)

        # Branch predictor training and late branch resolution.
        if uop.is_conditional_branch and op.branch_outcome is not None:
            self.bpu.train(op.dyn, op.branch_outcome)
            if op.branch_outcome.mispredicted:
                stats.branch_mispredictions += 1
                if op.branch_outcome.high_confidence:
                    stats.high_confidence_branch_mispredictions += 1
            if op is self._fetch_blocked_on:
                # A late-resolved (LE/VT) mispredicted branch unblocks fetch at commit.
                self._resume_fetch_after_resolution()
        elif (
            uop.is_branch
            and op.branch_outcome is not None
            and op.branch_outcome.mispredicted
        ):
            stats.branch_mispredictions += 1

        if not self._warmup_done and stats.committed_uops >= self.warmup_uops:
            self._warmup_snapshot = stats.copy()
            self._warmup_done = True
        if stats.committed_uops >= self.max_uops:
            self._finished = True

        # Park the record for recycling.  Younger IQ entries renamed against this
        # µ-op keep reading its timing fields until they issue, and the LE/VT port
        # model reads its destination bank when they commit — all of them were
        # dispatched by now, so the current dispatch high-water mark is the barrier.
        self.pool.retire(op, self._last_dispatched_seq)

    def _validate_and_train(self, op: InflightOp) -> bool:
        """Prediction validation + predictor training; returns True if a squash occurred.

        Reference implementation: :meth:`_commit` inlines the correctness decision
        and defers the training into a per-commit-group batch (kept in sync)."""
        if self.predictor is None or not op.uop.vp_eligible or op.dyn.result is None:
            return False
        actual = op.dyn.result
        value_correct = self.predictor.validate_and_train(op.pc, actual, op.prediction)
        if not op.pred_used:
            return False
        flags_ok = True
        if op.uop.sets_flags and op.dyn.flags_result is not None and op.prediction is not None:
            flags_ok = flags_match_for_validation(
                op.dyn.flags_result, approximate_flags(op.prediction.value)
            )
            if value_correct and not flags_ok:
                self.stats.flag_only_mispredictions += 1
        if value_correct and flags_ok:
            return False
        # Value misprediction: the offending µ-op retires with the architectural value,
        # everything younger is squashed and re-fetched (Section 3.1: pipeline squash).
        self.stats.value_mispredictions += 1
        self._squash_from(op.seq + 1, "value_mispred")
        return True

    # ================================================================== issue / execute
    def _operand_ready(self, op: InflightOp, cycle: int) -> bool:
        for producer in op.producers:
            if producer is None:
                continue
            available = producer.avail_cycle
            if available == UNKNOWN_CYCLE or available > cycle:
                return False
        return True

    def _is_ready(self, op: InflightOp, cycle: int) -> bool:
        if cycle < op.dispatch_cycle + self.config.dispatch_to_issue_latency:
            return False
        if not self._operand_ready(op, cycle):
            return False
        if op.uop.is_load:
            dependence = op.mem_dependence
            if dependence is not None and not dependence.squashed and not dependence.issued:
                return False
        return True

    def _execution_latency(self, op: InflightOp) -> int:
        return op.uop.latency

    def _issue(self) -> None:
        if self._wakeup:
            if self._soa:
                self._issue_wakeup_soa()
            else:
                self._issue_wakeup()
            return
        cycle = self.cycle
        if cycle < self._iq_scan_from:
            return
        # ``select_ready`` inlines the ``_is_ready``/``_execution_latency`` rules
        # above (kept as the reference implementation) into the IQ walk.
        fu_pool = self.fu_pool
        rejects_before = fu_pool.structural_rejects
        issue_width = self.config.issue_width
        selected = self.iq.select_ready(
            cycle,
            issue_width,
            fu_pool,
            self.config.dispatch_to_issue_latency,
        )
        if selected:
            for op in selected:
                self._start_execution(op)
            # A rescan next cycle is only needed when this select could have left
            # newly-issuable work behind: the width ran out (unexamined entries may
            # be ready), a ready µ-op lost its functional unit, or an issued store
            # released a store-set dependence (dependent loads become ready at
            # once).  Otherwise every remaining entry is immature or waiting on a
            # completion/dispatch/squash event, exactly as in the empty-scan case.
            rescan_next = (
                len(selected) == issue_width
                or fu_pool.structural_rejects != rejects_before
            )
            if not rescan_next:
                for op in selected:
                    if op.uop.is_store:
                        rescan_next = True
                        break
            if rescan_next:
                self._iq_scan_from = cycle + 1
            else:
                # The width was not exhausted, so the walk covered the whole queue:
                # its observed earliest maturity deadline is the next scan cycle.
                mature_at = self.iq.next_immature_cycle
                self._iq_scan_from = mature_at if mature_at is not None else self._NEVER
        elif fu_pool.structural_rejects != rejects_before:
            # A ready µ-op lost its functional unit; retry when the pool resets.
            self._iq_scan_from = cycle + 1
        else:
            # Nothing can issue until an event (completion/dispatch/squash) fires —
            # except entries still inside the dispatch-to-issue latency, whose
            # maturity is a known deadline no event announces.  Re-arm on it
            # (tracked as a byproduct of the walk that just found nothing).
            mature_at = self.iq.next_immature_cycle
            self._iq_scan_from = mature_at if mature_at is not None else self._NEVER

    def _issue_wakeup(self) -> None:
        """:meth:`_issue` fused with :meth:`WakeupIssueQueue.select_ready`.

        The scan-based ``_issue`` with the wake-up IQ's maintained ready list
        substituted for the queue walk: the ready set at any scanned cycle — and
        hence the age-ordered selection and every issue cycle — is identical to
        the reference walk's.  Scan scheduling, however, uses the IQ's *exact*
        deadlines rather than the reference's conservative re-arm heuristics:
        ``_iq_scan_from`` becomes ``cycle + 1`` while ready entries remain
        (functional-unit rejects or width exhaustion, exactly when the reference
        rescans) and the earliest wheel deadline otherwise.  Any scan skipped
        relative to the reference is one with an empty ready list, which walks
        nothing, selects nothing and mutates nothing — observably a no-op.
        """
        cycle = self.cycle
        if cycle < self._iq_scan_from:
            return
        iq = self.iq
        ready = iq._ready
        tracer = self.tracer
        if iq._wake_min <= cycle:
            # Inlined WakeupIssueQueue._surface_ripe (kept as the reference).
            buckets = iq._wake_buckets
            added = False
            while buckets:
                key = iq._wake_min
                if key > cycle:
                    break
                for op, gen in buckets.pop(key):
                    if op.wake_gen == gen and not op.squashed:
                        ready.append((op.seq, op))
                        added = True
                        if tracer is not None:
                            tracer.emit(cycle, "wakeup", op, "wheel")
                iq._wake_min = min(buckets) if buckets else self._NEVER
            if added:
                ready.sort()
        if ready:
            fu_pool = self.fu_pool
            try_issue = fu_pool.try_issue
            members = iq._members
            width_left = self.config.issue_width
            selected: list[InflightOp] = []
            selected_append = selected.append
            index = 0
            while index < len(ready) and width_left:
                seq, op = ready[index]
                uop = op.uop
                if not try_issue(uop.opclass, cycle, uop.latency):
                    index += 1
                    continue
                del ready[index]
                del members[seq]
                op.issued = True
                op.issue_cycle = cycle
                op.in_issue_queue = False
                selected_append(op)
                width_left -= 1
                if uop.is_store:
                    waiters = op.mem_waiters
                    if waiters:
                        # Store-set release: dependent loads (younger, hence later
                        # in age order) join this very pass, exactly like the
                        # reference walk observing ``dependence.issued`` mid-scan.
                        op.mem_waiters = None
                        for waiter, gen in waiters:
                            if waiter.wake_gen != gen or waiter.squashed:
                                continue
                            waiter.mem_blocked = False
                            if waiter.unknown_producers:
                                continue
                            ready_at = iq._ready_cycle(waiter)
                            if ready_at <= cycle:
                                insort(ready, (waiter.seq, waiter))
                                if tracer is not None:
                                    tracer.emit(cycle, "wakeup", waiter, "store_release")
                            else:
                                iq._park(waiter, gen, ready_at)
            start_execution = self._start_execution
            for op in selected:
                start_execution(op)
        # Exact re-arm: leftovers retry next cycle, otherwise the next entry to
        # become ready is the earliest wheel deadline (parks performed by the
        # selection and its _start_execution wake-ups are already reflected).
        self._iq_scan_from = cycle + 1 if ready else iq._wake_min

    def _issue_wakeup_soa(self) -> None:
        """:meth:`_issue_wakeup` over the SoA columns.

        Identical selection walk; generation/squash gates read the
        ``c_wake_gen``/``c_flags`` columns, the issued/in-IQ flag transition is
        one read-modify-write byte store, and the store-set release recomputes
        waiter readiness from the cycle columns.
        """
        cycle = self.cycle
        if cycle < self._iq_scan_from:
            return
        iq = self.iq
        ready = iq._ready
        tracer = self.tracer
        pool = self.pool
        c_flags = pool.c_flags
        c_wake_gen = pool.c_wake_gen
        if iq._wake_min <= cycle:
            # Inlined WakeupIssueQueue._surface_ripe (kept as the reference).
            buckets = iq._wake_buckets
            added = False
            while buckets:
                key = iq._wake_min
                if key > cycle:
                    break
                for op, gen in buckets.pop(key):
                    slot = op.slot
                    if c_wake_gen[slot] == gen and not c_flags[slot] & 64:
                        ready.append((op.seq, op))
                        added = True
                        if tracer is not None:
                            tracer.emit(cycle, "wakeup", op, "wheel")
                iq._wake_min = min(buckets) if buckets else self._NEVER
            if added:
                ready.sort()
        if ready:
            fu_pool = self.fu_pool
            try_issue = fu_pool.try_issue
            members = iq._members
            c_issue = pool.c_issue
            c_flags2 = pool.c_flags2
            c_unknown = pool.c_unknown
            c_dispatch = pool.c_dispatch
            c_avail = pool.c_avail
            d2i = self._d2i
            width_left = self.config.issue_width
            selected: list[tuple] = []
            selected_append = selected.append
            index = 0
            while index < len(ready) and width_left:
                seq, op = ready[index]
                uop = op.uop
                if not try_issue(uop.opclass, cycle, uop.latency):
                    index += 1
                    continue
                del ready[index]
                del members[seq]
                slot = op.slot
                # issued set + in_issue_queue clear in one byte store.
                c_flags[slot] = (c_flags[slot] | 16) & 0xF7
                c_issue[slot] = cycle
                selected_append((op, uop, slot))
                width_left -= 1
                if uop.is_store:
                    waiters = op.mem_waiters
                    if waiters:
                        # Store-set release: dependent loads (younger, hence later
                        # in age order) join this very pass, exactly like the
                        # reference walk observing ``dependence.issued``.
                        op.mem_waiters = None
                        for waiter, gen in waiters:
                            wslot = waiter.slot
                            if c_wake_gen[wslot] != gen or c_flags[wslot] & 64:
                                continue
                            c_flags2[wslot] &= 0xFE  # mem_blocked cleared
                            if c_unknown[wslot]:
                                continue
                            # Inlined WakeupIssueQueue._ready_cycle.
                            ready_at = c_dispatch[wslot] + d2i
                            for producer in waiter.producers:
                                if producer is not None:
                                    avail = c_avail[producer.slot]
                                    if avail > ready_at:
                                        ready_at = avail
                            if ready_at <= cycle:
                                insort(ready, (waiter.seq, waiter))
                                if tracer is not None:
                                    tracer.emit(cycle, "wakeup", waiter, "store_release")
                            else:
                                iq._park(waiter, gen, ready_at)
            # Execution start inlined per selected µ-op (the reference keeps
            # :meth:`_start_execution` as a method; one call frame per issued
            # µ-op is measurable at this loop's temperature).
            completions = self._completions
            lsq_forwarding = self.lsq.forwarding_store
            hierarchy_load = self.hierarchy.load
            c_complete = pool.c_complete
            wheel_all = self._wheel_all
            blocked_on = self._fetch_blocked_on
            m_wakeup_depth = self._m_wakeup_depth
            buckets = iq._wake_buckets
            for op, uop, slot in selected:
                if tracer is not None:
                    tracer.emit(cycle, "issue", op)
                if uop.is_load:
                    if lsq_forwarding(op) is not None:
                        c_flags[slot] |= 128  # load_forwarded
                        complete = cycle + 3  # 1 + forwarding latency (2)
                    else:
                        complete = cycle + 1 + hierarchy_load(op.dyn.addr, op.pc, cycle)
                elif uop.is_store:
                    complete = cycle + 1
                else:
                    complete = cycle + uop.latency
                c_complete[slot] = complete
                if not c_flags[slot] & 1:  # pred_used
                    # Predicted results stay available from dispatch; everything
                    # else becomes consumable when execution completes.
                    c_avail[slot] = complete
                    consumers = op.wake_consumers
                    if consumers is not None:
                        # Wake-up lists: O(consumers) resolution of the now-known
                        # availability (WakeupIssueQueue.producer_available inlined).
                        op.wake_consumers = None
                        if m_wakeup_depth is not None:
                            m_wakeup_depth.record(len(consumers))
                        for consumer, gen in consumers:
                            cslot = consumer.slot
                            if c_wake_gen[cslot] != gen or c_flags[cslot] & 64:
                                continue
                            remaining = c_unknown[cslot] - 1
                            c_unknown[cslot] = remaining
                            if remaining or c_flags2[cslot] & 1:  # mem_blocked
                                continue
                            ready_at = c_dispatch[cslot] + d2i
                            for producer in consumer.producers:
                                if producer is not None:
                                    avail = c_avail[producer.slot]
                                    if avail > ready_at:
                                        ready_at = avail
                            bucket = buckets.get(ready_at)
                            if bucket is None:
                                buckets[ready_at] = [(consumer, gen)]
                                if ready_at < iq._wake_min:
                                    iq._wake_min = ready_at
                            else:
                                bucket.append((consumer, gen))
                if uop.is_store or wheel_all or op is blocked_on:
                    c_flags2[slot] |= 2  # in_completion_wheel
                    wheel_slot = completions.get(complete)
                    if wheel_slot is None:
                        completions[complete] = [op]
                    else:
                        wheel_slot.append(op)
                else:
                    # Wheel diet (wake-up mode): the completion would only have
                    # set this flag; every reader also checks the commit deadline,
                    # so setting it at issue is invisible.  The traced event keeps
                    # the wheel timestamp.
                    c_flags[slot] |= 32  # executed
                    if tracer is not None:
                        tracer.emit(complete, "complete", op)
        # Exact re-arm, exactly as in the reference fused path.
        self._iq_scan_from = cycle + 1 if ready else iq._wake_min

    def _start_execution(self, op: InflightOp) -> None:
        uop = op.uop
        cycle = self.cycle
        if self.tracer is not None:
            self.tracer.emit(cycle, "issue", op)
        if uop.is_load:
            forwarding_store = self.lsq.forwarding_store(op)
            if forwarding_store is not None:
                op.load_forwarded = True
                memory_latency = 2
            else:
                memory_latency = self.hierarchy.load(op.dyn.addr, op.pc, cycle)
            complete = cycle + 1 + memory_latency
        elif uop.is_store:
            complete = cycle + 1
        else:
            complete = cycle + uop.latency
        op.complete_cycle = complete
        if not op.pred_used:
            # Predicted results stay available from dispatch; everything else
            # becomes consumable when execution completes.
            op.avail_cycle = complete
            consumers = op.wake_consumers
            if consumers is not None:
                # Wake-up lists: O(consumers) resolution of the now-known
                # availability (registrations only exist in wake-up mode;
                # WakeupIssueQueue.producer_available inlined).
                op.wake_consumers = None
                if self._m_wakeup_depth is not None:
                    self._m_wakeup_depth.record(len(consumers))
                iq = self.iq
                d2i = self._d2i
                buckets = iq._wake_buckets
                for consumer, gen in consumers:
                    if consumer.wake_gen != gen or consumer.squashed:
                        continue
                    remaining = consumer.unknown_producers - 1
                    consumer.unknown_producers = remaining
                    if remaining or consumer.mem_blocked:
                        continue
                    ready_at = consumer.dispatch_cycle + d2i
                    for producer in consumer.producers:
                        if producer is not None and producer.avail_cycle > ready_at:
                            ready_at = producer.avail_cycle
                    bucket = buckets.get(ready_at)
                    if bucket is None:
                        buckets[ready_at] = [(consumer, gen)]
                        if ready_at < iq._wake_min:
                            iq._wake_min = ready_at
                    else:
                        bucket.append((consumer, gen))
        if uop.is_store or self._wheel_all or op is self._fetch_blocked_on:
            op.in_completion_wheel = True
            completions = self._completions
            wheel_slot = completions.get(complete)
            if wheel_slot is None:
                completions[complete] = [op]
            else:
                wheel_slot.append(op)
        else:
            # Wheel diet (wake-up mode): the completion would only have set this
            # flag; every reader also checks the commit deadline, so setting it
            # at issue is invisible.  The traced event keeps the wheel timestamp.
            op.executed = True
            if self.tracer is not None:
                self.tracer.emit(complete, "complete", op)

    # ================================================================== rename / dispatch
    def _dispatch(self) -> None:
        """Rename/dispatch up to ``rename_width`` front-end µ-ops.

        Fused fast path for machines without Early Execution: rename (phase A/B)
        and classification/IQ insertion (phase D/E) run in one loop per µ-op, so
        every per-µ-op attribute is read once.  EE machines need the phase C
        barrier (the EE planner sees the whole rename group at once) and keep the
        two-phase reference, :meth:`_dispatch_eole`.  The one asymmetric case is
        an IQ-full rollback: the reference renames the *whole* group before
        discovering the full IQ, so the fused loop falls into
        :meth:`_dispatch_overshoot` to replicate that overshoot exactly (it is
        observable through ROB/LSQ peak-occupancy statistics and the PRF
        round-robin allocation pointer, which rollback does not rewind).
        """
        if self._soa:
            self._dispatch_soa()
            return
        if self._ee_enabled:
            self._dispatch_eole()
            return
        cycle = self.cycle
        frontend = self._frontend
        self._dispatch_stall_reason = None
        if not frontend or frontend[0].dispatch_ready_cycle > cycle:
            self._previous_dispatch_group = []
            return
        config = self.config
        rename_width = config.rename_width
        multi_bank = self._multi_bank
        rename_map = self._rename_map
        rob = self.rob
        lsq = self.lsq
        prf = self.prf
        stats = self.stats
        rob_entries = rob._entries
        rob_capacity = rob.capacity
        lsq_loads = lsq._loads
        lsq_stores = lsq._stores
        lq_capacity = lsq.lq_capacity
        sq_capacity = lsq.sq_capacity
        prf_allocated = prf._allocated
        late_enabled = self._late_enabled
        late_block = self.late_block
        iq = self.iq
        wakeup = self._wakeup
        iq_level = iq._members if wakeup else iq._entries
        iq_capacity = iq.capacity
        store_sets = self.store_sets
        nop_class = OpClass.NOP
        d2i = self._d2i
        scan_wake = cycle + d2i
        maturity = scan_wake
        wake_buckets = iq._wake_buckets if wakeup else None
        unknown_cycle = UNKNOWN_CYCLE
        tracer = self.tracer
        group: list[InflightOp] = []
        overshot = False
        while len(group) < rename_width and frontend:
            op = frontend[0]
            if op.dispatch_ready_cycle > cycle:
                break
            uop = op.uop
            kind = uop.hot_mask
            # Structural space checks (identical to the two-phase reference).
            if len(rob_entries) >= rob_capacity:
                stats.rob_full_stalls += 1
                if not group:
                    self._dispatch_stall_reason = "rob"
                break
            if kind & 16 and (  # memory
                len(lsq_loads) >= lq_capacity
                if kind & 4
                else len(lsq_stores) >= sq_capacity
            ):
                stats.lsq_full_stalls += 1
                if not group:
                    self._dispatch_stall_reason = "lsq"
                break
            if kind & 64 and multi_bank and not prf.can_allocate():
                stats.prf_bank_stalls += 1
                prf.record_bank_full_stall()
                if not group:
                    self._dispatch_stall_reason = "prf"
                break
            frontend.popleft()
            # Rename (unrolled for the dominant 0/1/2-source shapes).
            sources = uop.src_regs
            if not sources:
                producers: tuple[InflightOp | None, ...] = ()
            elif len(sources) == 1:
                producers = (rename_map.get(sources[0]),)
            elif len(sources) == 2:
                reg_a, reg_b = sources
                producers = (rename_map.get(reg_a), rename_map.get(reg_b))
            else:
                producers = tuple(rename_map.get(reg) for reg in sources)
            op.producers = producers
            for dst in uop.dst_regs:
                rename_map[dst] = op
            group.append(op)
            rob_entries.append(op)
            if kind & 4:  # load
                lsq_loads.append(op)
            elif kind & 8:  # store
                lsq_stores.append(op)
            if multi_bank:
                if kind & 64:
                    op.dest_bank = prf.next_bank()
                    prf.allocate()
                else:
                    prf.advance_without_allocation()
            elif kind & 64:
                prf_allocated[0] += 1
            op.dispatch_cycle = cycle

            # Classification + IQ insertion (phase D/E, EE impossible here).
            pred_used = op.pred_used
            if late_enabled and (pred_used or kind & 2):
                late_block.classify(op)
            if pred_used:
                op.avail_cycle = cycle
                if kind & 64 and not prf.try_ee_write(op.dest_bank, cycle):
                    stats.ee_write_port_stalls += 1
            if op.late_executed or kind & 256:
                op.complete_cycle = cycle
                op.executed = True
                if kind & 4:
                    op.mem_dependence = store_sets.dependence_for_load(op)
                elif kind & 8:
                    store_sets.register_store(op)
                if tracer is not None:
                    tracer.emit(cycle, "dispatch", op, "nop" if kind & 256 else "late")
                    tracer.emit(cycle, "complete", op, "bypass")
            else:
                if len(iq_level) >= iq_capacity:
                    stats.iq_full_stalls += 1
                    self._record_dispatch_peaks()
                    group = self._dispatch_overshoot(group)
                    overshot = True
                    break
                dependence = None
                if kind & 4:
                    dependence = store_sets.dependence_for_load(op)
                    op.mem_dependence = dependence
                elif kind & 8:
                    store_sets.register_store(op)
                if wakeup:
                    # Inlined WakeupIssueQueue.insert (kept as the reference).
                    op.in_issue_queue = True
                    iq_level[op.seq] = op
                    gen = op.wake_gen
                    unknown = 0
                    ready_at = maturity
                    for producer in producers:
                        if producer is None:
                            continue
                        avail = producer.avail_cycle
                        if avail == unknown_cycle:
                            unknown += 1
                            consumers = producer.wake_consumers
                            if consumers is None:
                                producer.wake_consumers = [(op, gen)]
                            else:
                                consumers.append((op, gen))
                        elif avail > ready_at:
                            ready_at = avail
                    op.unknown_producers = unknown
                    if dependence is not None:
                        op.mem_blocked = True
                        waiters = dependence.mem_waiters
                        if waiters is None:
                            dependence.mem_waiters = [(op, gen)]
                        else:
                            waiters.append((op, gen))
                    else:
                        op.mem_blocked = False
                        if not unknown:
                            bucket = wake_buckets.get(ready_at)
                            if bucket is None:
                                wake_buckets[ready_at] = [(op, gen)]
                                if ready_at < iq._wake_min:
                                    iq._wake_min = ready_at
                            else:
                                bucket.append((op, gen))
                else:
                    op.in_issue_queue = True
                    op.wait_until = 0
                    iq_level.append(op)
                    for producer in producers:
                        if producer is not None:
                            producer.iq_waiters += 1
                    if scan_wake < self._iq_scan_from:
                        self._iq_scan_from = scan_wake
                stats.dispatched_to_iq += 1
                if tracer is not None:
                    tracer.emit(cycle, "dispatch", op, "iq")

        if not overshot:
            # Peak statistics, deferred out of the per-µ-op loop: within one
            # dispatch call these structures only grow, so the end-of-loop
            # occupancy is the cycle's maximum (identical values to per-append
            # updates; the overshoot path records them before rolling back).
            self._record_dispatch_peaks()
        if wakeup:
            # One exact re-arm per dispatch group: freshly parked entries carry
            # their precise readiness deadline on the wheel.
            wake_min = iq._wake_min
            if wake_min < self._iq_scan_from:
                self._iq_scan_from = wake_min
        if group and not overshot:
            self._last_dispatched_seq = group[-1].seq
        self._previous_dispatch_group = group

    def _dispatch_soa(self) -> None:
        """:meth:`_dispatch` over the SoA columns (fused non-EE fast path).

        Same fusion and same overshoot asymmetry; the per-µ-op timing/flag
        writes (dispatch cycle, destination bank, availability, the bypass
        executed store) and the wake-up insert's producer-availability walk go
        straight to the pool columns.  The rare paths — IQ-full overshoot and
        rollback — stay on the property-based reference helpers.
        """
        if self._ee_enabled:
            self._dispatch_eole_soa()
            return
        cycle = self.cycle
        frontend = self._frontend
        self._dispatch_stall_reason = None
        pool = self.pool
        c_disp_ready = pool.c_disp_ready
        if not frontend or c_disp_ready[frontend[0].slot] > cycle:
            self._previous_dispatch_group = []
            return
        config = self.config
        rename_width = config.rename_width
        multi_bank = self._multi_bank
        rename_map = self._rename_map
        rob = self.rob
        lsq = self.lsq
        prf = self.prf
        stats = self.stats
        rob_entries = rob._entries
        rob_capacity = rob.capacity
        lsq_loads = lsq._loads
        lsq_stores = lsq._stores
        lq_capacity = lsq.lq_capacity
        sq_capacity = lsq.sq_capacity
        prf_allocated = prf._allocated
        late_enabled = self._late_enabled
        late_block = self.late_block
        iq = self.iq
        wakeup = self._wakeup
        iq_level = iq._members if wakeup else iq._entries
        iq_capacity = iq.capacity
        store_sets = self.store_sets
        d2i = self._d2i
        scan_wake = cycle + d2i
        maturity = scan_wake
        wake_buckets = iq._wake_buckets if wakeup else None
        unknown_cycle = UNKNOWN_CYCLE
        tracer = self.tracer
        c_flags = pool.c_flags
        c_flags2 = pool.c_flags2
        c_dispatch = pool.c_dispatch
        c_complete = pool.c_complete
        c_avail = pool.c_avail
        c_dest_bank = pool.c_dest_bank
        c_wake_gen = pool.c_wake_gen
        c_unknown = pool.c_unknown
        c_wait = pool.c_wait
        c_iq_waiters = pool.c_iq_waiters
        group: list[InflightOp] = []
        overshot = False
        while len(group) < rename_width and frontend:
            op = frontend[0]
            slot = op.slot
            if c_disp_ready[slot] > cycle:
                break
            uop = op.uop
            kind = uop.hot_mask
            # Structural space checks (identical to the two-phase reference).
            if len(rob_entries) >= rob_capacity:
                stats.rob_full_stalls += 1
                if not group:
                    self._dispatch_stall_reason = "rob"
                break
            if kind & 16 and (  # memory
                len(lsq_loads) >= lq_capacity
                if kind & 4
                else len(lsq_stores) >= sq_capacity
            ):
                stats.lsq_full_stalls += 1
                if not group:
                    self._dispatch_stall_reason = "lsq"
                break
            if kind & 64 and multi_bank and not prf.can_allocate():
                stats.prf_bank_stalls += 1
                prf.record_bank_full_stall()
                if not group:
                    self._dispatch_stall_reason = "prf"
                break
            frontend.popleft()
            # Rename (unrolled for the dominant 0/1/2-source shapes).
            sources = uop.src_regs
            if not sources:
                producers: tuple[InflightOp | None, ...] = ()
            elif len(sources) == 1:
                producers = (rename_map.get(sources[0]),)
            elif len(sources) == 2:
                reg_a, reg_b = sources
                producers = (rename_map.get(reg_a), rename_map.get(reg_b))
            else:
                producers = tuple(rename_map.get(reg) for reg in sources)
            op.producers = producers
            for dst in uop.dst_regs:
                rename_map[dst] = op
            group.append(op)
            rob_entries.append(op)
            if kind & 4:  # load
                lsq_loads.append(op)
            elif kind & 8:  # store
                lsq_stores.append(op)
            if multi_bank:
                if kind & 64:
                    c_dest_bank[slot] = prf.next_bank()
                    prf.allocate()
                else:
                    prf.advance_without_allocation()
            elif kind & 64:
                prf_allocated[0] += 1
            c_dispatch[slot] = cycle

            # Classification + IQ insertion (phase D/E, EE impossible here).
            pred_used = c_flags[slot] & 1
            if late_enabled and (pred_used or kind & 2):
                late_block.classify(op)
            if pred_used:
                c_avail[slot] = cycle
                if kind & 64 and not prf.try_ee_write(c_dest_bank[slot], cycle):
                    stats.ee_write_port_stalls += 1
            if c_flags[slot] & 4 or kind & 256:  # late_executed / nop
                c_complete[slot] = cycle
                c_flags[slot] |= 32  # executed
                if kind & 4:
                    op.mem_dependence = store_sets.dependence_for_load(op)
                elif kind & 8:
                    store_sets.register_store(op)
                if tracer is not None:
                    tracer.emit(cycle, "dispatch", op, "nop" if kind & 256 else "late")
                    tracer.emit(cycle, "complete", op, "bypass")
            else:
                if len(iq_level) >= iq_capacity:
                    stats.iq_full_stalls += 1
                    self._record_dispatch_peaks()
                    group = self._dispatch_overshoot(group)
                    overshot = True
                    break
                dependence = None
                if kind & 4:
                    dependence = store_sets.dependence_for_load(op)
                    op.mem_dependence = dependence
                elif kind & 8:
                    store_sets.register_store(op)
                if wakeup:
                    # Inlined WakeupIssueQueue.insert (kept as the reference).
                    c_flags[slot] |= 8  # in_issue_queue
                    iq_level[op.seq] = op
                    gen = c_wake_gen[slot]
                    unknown = 0
                    ready_at = maturity
                    for producer in producers:
                        if producer is None:
                            continue
                        avail = c_avail[producer.slot]
                        if avail == unknown_cycle:
                            unknown += 1
                            consumers = producer.wake_consumers
                            if consumers is None:
                                producer.wake_consumers = [(op, gen)]
                            else:
                                consumers.append((op, gen))
                        elif avail > ready_at:
                            ready_at = avail
                    c_unknown[slot] = unknown
                    if dependence is not None:
                        c_flags2[slot] |= 1  # mem_blocked
                        waiters = dependence.mem_waiters
                        if waiters is None:
                            dependence.mem_waiters = [(op, gen)]
                        else:
                            waiters.append((op, gen))
                    else:
                        c_flags2[slot] &= 0xFE
                        if not unknown:
                            bucket = wake_buckets.get(ready_at)
                            if bucket is None:
                                wake_buckets[ready_at] = [(op, gen)]
                                if ready_at < iq._wake_min:
                                    iq._wake_min = ready_at
                            else:
                                bucket.append((op, gen))
                else:
                    c_flags[slot] |= 8  # in_issue_queue
                    c_wait[slot] = 0
                    iq_level.append(op)
                    for producer in producers:
                        if producer is not None:
                            c_iq_waiters[producer.slot] += 1
                    if scan_wake < self._iq_scan_from:
                        self._iq_scan_from = scan_wake
                stats.dispatched_to_iq += 1
                if tracer is not None:
                    tracer.emit(cycle, "dispatch", op, "iq")

        if not overshot:
            self._record_dispatch_peaks()
        if wakeup:
            wake_min = iq._wake_min
            if wake_min < self._iq_scan_from:
                self._iq_scan_from = wake_min
        if group and not overshot:
            self._last_dispatched_seq = group[-1].seq
        self._previous_dispatch_group = group

    def _record_dispatch_peaks(self) -> None:
        """Fold the current ROB/LSQ/IQ occupancies into their peak statistics."""
        rob = self.rob
        occupancy = len(rob._entries)
        if occupancy > rob.peak_occupancy:
            rob.peak_occupancy = occupancy
        lsq = self.lsq
        occupancy = len(lsq._loads)
        if occupancy > lsq.peak_lq_occupancy:
            lsq.peak_lq_occupancy = occupancy
        occupancy = len(lsq._stores)
        if occupancy > lsq.peak_sq_occupancy:
            lsq.peak_sq_occupancy = occupancy
        iq = self.iq
        occupancy = len(iq._members) if self._wakeup else len(iq._entries)
        if occupancy > iq.peak_occupancy:
            iq.peak_occupancy = occupancy
        if self._m_iq_occupancy is not None:
            self._m_iq_occupancy.record(occupancy)

    def _dispatch_overshoot(self, group: list[InflightOp]) -> list[InflightOp]:
        """Replicate the reference's rename overshoot when the IQ fills mid-group.

        The two-phase reference renames the whole group (phase A/B) before phase
        D/E discovers the full IQ at ``group[-1]``; the extra renames bump
        ROB/LSQ peak-occupancy statistics and advance the PRF round-robin
        pointer before the rollback returns every op from the IQ-denied one on
        to the front-end.  This continues phase A/B from where the fused loop
        stopped — structural stall counters included — then performs the same
        rollback, returning the surviving (truncated) group.
        """
        cycle = self.cycle
        config = self.config
        frontend = self._frontend
        rename_width = config.rename_width
        multi_bank = self._multi_bank
        rename_map = self._rename_map
        rob = self.rob
        lsq = self.lsq
        prf = self.prf
        stats = self.stats
        first_undispatched = len(group) - 1
        while len(group) < rename_width and frontend:
            op = frontend[0]
            if op.dispatch_ready_cycle > cycle:
                break
            uop = op.uop
            if not rob.has_space():
                stats.rob_full_stalls += 1
                break
            if uop.is_memory and not lsq.has_space(op):
                stats.lsq_full_stalls += 1
                break
            if uop.dst is not None and multi_bank and not prf.can_allocate():
                stats.prf_bank_stalls += 1
                prf.record_bank_full_stall()
                break
            frontend.popleft()
            sources = uop.src_regs
            op.producers = tuple(rename_map.get(reg) for reg in sources)
            for dst in uop.dst_regs:
                rename_map[dst] = op
            group.append(op)
            rob.push_renamed(op)
            if uop.is_memory:
                lsq.insert(op)
            if multi_bank:
                if uop.dst is not None:
                    op.dest_bank = prf.next_bank()
                    prf.allocate()
                else:
                    prf.advance_without_allocation()
            elif uop.dst is not None:
                prf._allocated[0] += 1
            op.dispatch_cycle = cycle
        # The reference records the dispatch high-water mark over the *renamed*
        # group, overshoot included (rollback does not lower it).
        self._last_dispatched_seq = group[-1].seq
        self._rollback_undispatched(group, first_undispatched)
        return group[:first_undispatched]

    def _dispatch_eole(self) -> None:
        """Two-phase rename/dispatch (the reference; EE needs the group barrier)."""
        cycle = self.cycle
        frontend = self._frontend
        self._dispatch_stall_reason = None
        if not frontend or frontend[0].dispatch_ready_cycle > cycle:
            self._previous_dispatch_group = []
            return
        config = self.config
        rename_width = config.rename_width
        multi_bank = config.prf_banks > 1
        rename_map = self._rename_map
        rob = self.rob
        lsq = self.lsq
        prf = self.prf
        stats = self.stats
        # Hot-path views of the structural resources (the methods on ReorderBuffer /
        # LoadStoreQueue / BankedRegisterFile remain the reference implementations;
        # phase A/B runs once per dispatched µ-op and inlines them).
        rob_entries = rob._entries
        rob_capacity = rob.capacity
        lsq_loads = lsq._loads
        lsq_stores = lsq._stores
        lq_capacity = lsq.lq_capacity
        sq_capacity = lsq.sq_capacity
        prf_allocated = prf._allocated
        group: list[InflightOp] = []
        # Phase A/B: pull dispatch-ready µ-ops and rename them.  Intra-group
        # producers are visible through ``rename_map`` itself — every destination is
        # written to it immediately and nothing is deleted mid-group, so a separate
        # local overlay would always agree with it.
        while len(group) < rename_width and frontend:
            op = frontend[0]
            if op.dispatch_ready_cycle > cycle:
                break
            uop = op.uop
            kind = uop.hot_mask
            # Structural space checks (see _structural_space_for_op, kept as the
            # reference implementation).  A stall hit before *any* progress parks
            # the stage: the identical check fails every cycle (one stall counted
            # per cycle) until another stage's event frees the resource, which the
            # event scheduler exploits by crediting skipped spans in bulk.
            if len(rob_entries) >= rob_capacity:
                stats.rob_full_stalls += 1
                if not group:
                    self._dispatch_stall_reason = "rob"
                break
            if kind & 16 and (  # memory
                len(lsq_loads) >= lq_capacity
                if kind & 4
                else len(lsq_stores) >= sq_capacity
            ):
                stats.lsq_full_stalls += 1
                if not group:
                    self._dispatch_stall_reason = "lsq"
                break
            if kind & 64 and multi_bank and not prf.can_allocate():
                stats.prf_bank_stalls += 1
                prf.record_bank_full_stall()
                if not group:
                    self._dispatch_stall_reason = "prf"
                break
            frontend.popleft()
            # Rename (unrolled for the dominant 0/1/2-source shapes).
            sources = uop.src_regs
            if not sources:
                producers: tuple[InflightOp | None, ...] = ()
            elif len(sources) == 1:
                producers = (rename_map.get(sources[0]),)
            elif len(sources) == 2:
                reg_a, reg_b = sources
                producers = (rename_map.get(reg_a), rename_map.get(reg_b))
            else:
                producers = tuple(rename_map.get(reg) for reg in sources)
            op.producers = producers
            for dst in uop.dst_regs:
                rename_map[dst] = op
            group.append(op)
            # Structural allocation happens immediately so the next iteration's space
            # checks see it (ROB/LSQ/PRF are per-µ-op resources, not per-group).
            rob_entries.append(op)
            if kind & 4:  # load
                lsq_loads.append(op)
            elif kind & 8:  # store
                lsq_stores.append(op)
            if multi_bank:
                if kind & 64:
                    op.dest_bank = prf.next_bank()
                    prf.allocate()
                else:
                    prf.advance_without_allocation()
            elif kind & 64:
                # Single-bank PRF: the allocation pointer never moves and the
                # destination bank is always 0 (the record's reset default).
                prf_allocated[0] += 1
            op.dispatch_cycle = cycle

        # ROB/LSQ peaks, deferred out of the per-µ-op loop (within one dispatch
        # call these structures only grow, so end-of-phase occupancy is the max;
        # the IQ-full rollback path below never shrinks them before this point).
        occupancy = len(rob_entries)
        if occupancy > rob.peak_occupancy:
            rob.peak_occupancy = occupancy
        occupancy = len(lsq_loads)
        if occupancy > lsq.peak_lq_occupancy:
            lsq.peak_lq_occupancy = occupancy
        occupancy = len(lsq_stores)
        if occupancy > lsq.peak_sq_occupancy:
            lsq.peak_sq_occupancy = occupancy
        if not group:
            self._previous_dispatch_group = []
            return
        self._last_dispatched_seq = group[-1].seq

        # Phase C: Early Execution planning (in parallel with rename).
        if config.eole.early.enabled:
            self.early_block.plan(group, self._previous_dispatch_group)

        # Phase D/E: Late-Execution classification, IQ insertion and port accounting.
        # The store-set hookup runs *before* the IQ insertion (the wake-up insert
        # reads ``mem_dependence``); relative to the reference order this swaps two
        # operations on disjoint state within one µ-op, and the capacity check still
        # precedes both, so a µ-op denied an IQ slot never touches the LFST.
        late_enabled = config.eole.late.enabled
        late_block = self.late_block
        iq = self.iq
        wakeup = self._wakeup
        iq_level = iq._members if wakeup else iq._entries
        iq_capacity = iq.capacity
        store_sets = self.store_sets
        nop_class = OpClass.NOP
        tracer = self.tracer
        for op in group:
            uop = op.uop
            kind = uop.hot_mask
            pred_used = op.pred_used
            if late_enabled and (pred_used or kind & 2):
                # Pre-filter: only predicted µ-ops and conditional branches can be
                # late-executable (classify returns False for everything else).
                late_block.classify(op)
            if pred_used or op.early_executed:
                # The result is written to the PRF at dispatch: dependents may
                # consume it from this cycle on (mirrors result_available_cycle).
                op.avail_cycle = cycle
                if kind & 64 and not prf.try_ee_write(op.dest_bank, cycle):
                    # Port pressure delays the write by a cycle; modelled as a slight
                    # dispatch-side stall statistic rather than a structural replay.
                    stats.ee_write_port_stalls += 1
            if op.early_executed or op.late_executed or kind & 256:
                # Bypasses the OoO engine entirely (or needs no execution at all).
                op.complete_cycle = op.dispatch_cycle
                op.executed = True
                if kind & 4:
                    op.mem_dependence = store_sets.dependence_for_load(op)
                elif kind & 8:
                    store_sets.register_store(op)
                if tracer is not None:
                    if op.early_executed:
                        tracer.emit(cycle, "early_exec", op)
                        cause = "early"
                    else:
                        cause = "nop" if kind & 256 else "late"
                    tracer.emit(cycle, "dispatch", op, cause)
                    tracer.emit(cycle, "complete", op, "bypass")
            else:
                if len(iq_level) >= iq_capacity:
                    stats.iq_full_stalls += 1
                    self._rollback_undispatched(group, group.index(op))
                    group = group[: group.index(op)]
                    break
                if kind & 4:
                    op.mem_dependence = store_sets.dependence_for_load(op)
                elif kind & 8:
                    store_sets.register_store(op)
                if wakeup:
                    iq.insert(op)
                else:
                    op.in_issue_queue = True
                    op.wait_until = 0
                    iq_level.append(op)
                    if len(iq_level) > iq.peak_occupancy:
                        iq.peak_occupancy = len(iq_level)
                    for producer in op.producers:
                        if producer is not None:
                            producer.iq_waiters += 1
                    wake = cycle + config.dispatch_to_issue_latency
                    if wake < self._iq_scan_from:
                        self._iq_scan_from = wake
                stats.dispatched_to_iq += 1
                if tracer is not None:
                    tracer.emit(cycle, "dispatch", op, "iq")

        if self._m_iq_occupancy is not None:
            self._m_iq_occupancy.record(len(iq_level))
        if wakeup:
            # One exact re-arm per dispatch group (see _dispatch).
            wake_min = iq._wake_min
            if wake_min < self._iq_scan_from:
                self._iq_scan_from = wake_min
        self._previous_dispatch_group = group

    def _dispatch_eole_soa(self) -> None:
        """:meth:`_dispatch_eole` over the SoA columns (two-phase, EE barrier).

        The EE planner and the LE classifier write flags through the record
        properties mid-dispatch (phase C / phase D), so the flag byte is
        re-read from the column after each of those calls rather than cached
        across them.  The rollback path stays on the property-based reference.
        """
        cycle = self.cycle
        frontend = self._frontend
        self._dispatch_stall_reason = None
        pool = self.pool
        c_disp_ready = pool.c_disp_ready
        if not frontend or c_disp_ready[frontend[0].slot] > cycle:
            self._previous_dispatch_group = []
            return
        config = self.config
        rename_width = config.rename_width
        multi_bank = config.prf_banks > 1
        rename_map = self._rename_map
        rob = self.rob
        lsq = self.lsq
        prf = self.prf
        stats = self.stats
        rob_entries = rob._entries
        rob_capacity = rob.capacity
        lsq_loads = lsq._loads
        lsq_stores = lsq._stores
        lq_capacity = lsq.lq_capacity
        sq_capacity = lsq.sq_capacity
        prf_allocated = prf._allocated
        c_flags = pool.c_flags
        c_flags2 = pool.c_flags2
        c_dispatch = pool.c_dispatch
        c_complete = pool.c_complete
        c_avail = pool.c_avail
        c_dest_bank = pool.c_dest_bank
        c_wake_gen = pool.c_wake_gen
        c_unknown = pool.c_unknown
        c_wait = pool.c_wait
        c_iq_waiters = pool.c_iq_waiters
        group: list[InflightOp] = []
        # Phase A/B: pull dispatch-ready µ-ops and rename them (see
        # _dispatch_eole for the intra-group rename-map note).
        while len(group) < rename_width and frontend:
            op = frontend[0]
            slot = op.slot
            if c_disp_ready[slot] > cycle:
                break
            uop = op.uop
            kind = uop.hot_mask
            if len(rob_entries) >= rob_capacity:
                stats.rob_full_stalls += 1
                if not group:
                    self._dispatch_stall_reason = "rob"
                break
            if kind & 16 and (  # memory
                len(lsq_loads) >= lq_capacity
                if kind & 4
                else len(lsq_stores) >= sq_capacity
            ):
                stats.lsq_full_stalls += 1
                if not group:
                    self._dispatch_stall_reason = "lsq"
                break
            if kind & 64 and multi_bank and not prf.can_allocate():
                stats.prf_bank_stalls += 1
                prf.record_bank_full_stall()
                if not group:
                    self._dispatch_stall_reason = "prf"
                break
            frontend.popleft()
            # Rename (unrolled for the dominant 0/1/2-source shapes).
            sources = uop.src_regs
            if not sources:
                producers: tuple[InflightOp | None, ...] = ()
            elif len(sources) == 1:
                producers = (rename_map.get(sources[0]),)
            elif len(sources) == 2:
                reg_a, reg_b = sources
                producers = (rename_map.get(reg_a), rename_map.get(reg_b))
            else:
                producers = tuple(rename_map.get(reg) for reg in sources)
            op.producers = producers
            for dst in uop.dst_regs:
                rename_map[dst] = op
            group.append(op)
            rob_entries.append(op)
            if kind & 4:  # load
                lsq_loads.append(op)
            elif kind & 8:  # store
                lsq_stores.append(op)
            if multi_bank:
                if kind & 64:
                    c_dest_bank[slot] = prf.next_bank()
                    prf.allocate()
                else:
                    prf.advance_without_allocation()
            elif kind & 64:
                prf_allocated[0] += 1
            c_dispatch[slot] = cycle

        # ROB/LSQ peaks, deferred out of the per-µ-op loop (see _dispatch_eole).
        occupancy = len(rob_entries)
        if occupancy > rob.peak_occupancy:
            rob.peak_occupancy = occupancy
        occupancy = len(lsq_loads)
        if occupancy > lsq.peak_lq_occupancy:
            lsq.peak_lq_occupancy = occupancy
        occupancy = len(lsq_stores)
        if occupancy > lsq.peak_sq_occupancy:
            lsq.peak_sq_occupancy = occupancy
        if not group:
            self._previous_dispatch_group = []
            return
        self._last_dispatched_seq = group[-1].seq

        # Phase C: Early Execution planning (writes flags via the properties).
        if config.eole.early.enabled:
            self.early_block.plan(group, self._previous_dispatch_group)

        # Phase D/E: Late-Execution classification, IQ insertion and port
        # accounting (see _dispatch_eole for the store-set ordering note).
        late_enabled = config.eole.late.enabled
        late_block = self.late_block
        iq = self.iq
        wakeup = self._wakeup
        iq_level = iq._members if wakeup else iq._entries
        iq_capacity = iq.capacity
        store_sets = self.store_sets
        d2i = self._d2i
        maturity = cycle + d2i
        wake_buckets = iq._wake_buckets if wakeup else None
        unknown_cycle = UNKNOWN_CYCLE
        tracer = self.tracer
        for op in group:
            slot = op.slot
            uop = op.uop
            kind = uop.hot_mask
            flags = c_flags[slot]
            pred_used = flags & 1
            if late_enabled and (pred_used or kind & 2):
                late_block.classify(op)
                flags = c_flags[slot]  # classify may set late_executed
            if pred_used or flags & 2:  # pred_used / early_executed
                c_avail[slot] = cycle
                if kind & 64 and not prf.try_ee_write(c_dest_bank[slot], cycle):
                    stats.ee_write_port_stalls += 1
            if flags & 2 or flags & 4 or kind & 256:  # early / late / nop
                c_complete[slot] = c_dispatch[slot]
                c_flags[slot] = flags | 32  # executed
                if kind & 4:
                    op.mem_dependence = store_sets.dependence_for_load(op)
                elif kind & 8:
                    store_sets.register_store(op)
                if tracer is not None:
                    if flags & 2:
                        tracer.emit(cycle, "early_exec", op)
                        cause = "early"
                    else:
                        cause = "nop" if kind & 256 else "late"
                    tracer.emit(cycle, "dispatch", op, cause)
                    tracer.emit(cycle, "complete", op, "bypass")
            else:
                if len(iq_level) >= iq_capacity:
                    stats.iq_full_stalls += 1
                    self._rollback_undispatched(group, group.index(op))
                    group = group[: group.index(op)]
                    break
                dependence = None
                if kind & 4:
                    dependence = store_sets.dependence_for_load(op)
                    op.mem_dependence = dependence
                elif kind & 8:
                    store_sets.register_store(op)
                if wakeup:
                    # Inlined WakeupIssueQueue.insert (kept as the reference);
                    # unlike the fused path, insert() owns the IQ peak here.
                    c_flags[slot] = flags | 8  # in_issue_queue
                    iq_level[op.seq] = op
                    if len(iq_level) > iq.peak_occupancy:
                        iq.peak_occupancy = len(iq_level)
                    gen = c_wake_gen[slot]
                    unknown = 0
                    ready_at = maturity
                    for producer in op.producers:
                        if producer is None:
                            continue
                        avail = c_avail[producer.slot]
                        if avail == unknown_cycle:
                            unknown += 1
                            consumers = producer.wake_consumers
                            if consumers is None:
                                producer.wake_consumers = [(op, gen)]
                            else:
                                consumers.append((op, gen))
                        elif avail > ready_at:
                            ready_at = avail
                    c_unknown[slot] = unknown
                    if dependence is not None:
                        c_flags2[slot] |= 1  # mem_blocked
                        waiters = dependence.mem_waiters
                        if waiters is None:
                            dependence.mem_waiters = [(op, gen)]
                        else:
                            waiters.append((op, gen))
                    else:
                        c_flags2[slot] &= 0xFE
                        if not unknown:
                            bucket = wake_buckets.get(ready_at)
                            if bucket is None:
                                wake_buckets[ready_at] = [(op, gen)]
                                if ready_at < iq._wake_min:
                                    iq._wake_min = ready_at
                            else:
                                bucket.append((op, gen))
                else:
                    c_flags[slot] = flags | 8  # in_issue_queue
                    c_wait[slot] = 0
                    iq_level.append(op)
                    if len(iq_level) > iq.peak_occupancy:
                        iq.peak_occupancy = len(iq_level)
                    for producer in op.producers:
                        if producer is not None:
                            c_iq_waiters[producer.slot] += 1
                    if maturity < self._iq_scan_from:
                        self._iq_scan_from = maturity
                stats.dispatched_to_iq += 1
                if tracer is not None:
                    tracer.emit(cycle, "dispatch", op, "iq")

        if self._m_iq_occupancy is not None:
            self._m_iq_occupancy.record(len(iq_level))
        if wakeup:
            # One exact re-arm per dispatch group (see _dispatch).
            wake_min = iq._wake_min
            if wake_min < self._iq_scan_from:
                self._iq_scan_from = wake_min
        self._previous_dispatch_group = group

    def _structural_space_for_op(self, op: InflightOp) -> str | None:
        if not self.rob.has_space():
            return "rob"
        if op.uop.is_memory and not self.lsq.has_space(op):
            return "lsq"
        if op.uop.dst is not None and self.config.prf_banks > 1 and not self.prf.can_allocate():
            return "prf"
        return None

    def _count_dispatch_stall(self, reason: str) -> None:
        if reason == "rob":
            self.stats.rob_full_stalls += 1
        elif reason == "lsq":
            self.stats.lsq_full_stalls += 1
        elif reason == "prf":
            self.stats.prf_bank_stalls += 1
            self.prf.record_bank_full_stall()

    def _rollback_undispatched(self, group: list[InflightOp], first_undispatched: int) -> None:
        """Return µ-ops that could not get an IQ slot to the front-end, youngest first."""
        for op in reversed(group[first_undispatched:]):
            # Undo the structural allocations performed in phase A/B.
            squashed = self.rob.squash_from(op.seq)
            for undone in squashed:
                undone.squashed = False
            if op.uop.is_memory:
                self.lsq.remove(op)
            if op.uop.dst is not None:
                self.prf.release(op.dest_bank)
            op.producers = ()
            op.early_executed = False
            op.late_executed = False
            op.executed = False
            op.dispatch_cycle = UNKNOWN_CYCLE
            op.complete_cycle = UNKNOWN_CYCLE
            op.avail_cycle = UNKNOWN_CYCLE
            op.wait_until = 0
            self._frontend.appendleft(op)
        # Rebuild the rename map from the surviving ROB contents.
        self._rebuild_rename_map()

    def _rebuild_rename_map(self) -> None:
        self._rename_map = {}
        for op in self.rob:
            for dst in op.uop.dst_regs:
                self._rename_map[dst] = op

    # ================================================================== fetch
    def _next_dyninst(self) -> DynInst | None:
        if self._replay:
            return self._replay.popleft()
        if self._trace_exhausted:
            return None
        trace_list = self._trace_list
        if trace_list is not None:
            pos = self._trace_pos
            if pos >= len(trace_list):
                self._trace_exhausted = True
                return None
            self._trace_pos = pos + 1
            return trace_list[pos]
        try:
            return next(self._trace)
        except StopIteration:
            self._trace_exhausted = True
            return None

    def _push_back_dyninst(self, dyn: DynInst) -> None:
        self._replay.appendleft(dyn)

    def _fetch(self) -> None:
        if self._soa:
            self._fetch_soa()
            return
        config = self.config
        # Recycle retired records whose barrier has drained — fetch is the only
        # acquisition site, so promoting here guarantees no reader between a
        # record's release and its reuse.  (The pool's deferred queue is consulted
        # directly to keep the common nothing-parked cycle call-free.)
        pool = self.pool
        deferred = pool._deferred
        if deferred:
            # Inlined pool.promote (kept as the reference implementation).
            rob_entries = self.rob._entries
            free = pool._free
            if rob_entries:
                oldest = rob_entries[0].seq
                while deferred and deferred[0][0] < oldest:
                    free.append(deferred.popleft()[1].slot)
            else:
                while deferred:
                    free.append(deferred.popleft()[1].slot)
        if self._fetch_blocked_on is not None:
            return
        cycle = self.cycle
        if cycle < self._fetch_resume_cycle:
            return
        frontend = self._frontend
        if len(frontend) >= config.frontend_capacity:
            return
        fetch_width = config.fetch_width
        max_taken = config.max_taken_branches_per_cycle
        l1i_latency = config.memory.l1i_latency
        fetch_to_dispatch = config.fetch_to_dispatch_latency
        hierarchy_fetch = self.hierarchy.fetch
        bpu_predict = self.bpu.predict
        history = self.history
        predictor = self.predictor
        stats = self.stats
        replay = self._replay
        pool_free = pool._free
        pool_arena = pool._arena
        # L1I hit fast path (the reference path is hierarchy.fetch): sequential
        # fetch hits the MRU line of one set almost every µ-op.
        l1i = self.hierarchy.l1i
        l1i_sets = l1i._sets
        l1i_num_sets = l1i.num_sets
        l1i_line_size = l1i.line_size
        l1i_stats = l1i.stats
        trace_list = self._trace_list
        trace_length = len(trace_list) if trace_list is not None else 0
        unknown_cycle = UNKNOWN_CYCLE
        tracer = self.tracer
        fetched = 0
        taken_branches = 0
        while fetched < fetch_width:
            # Inlined _next_dyninst (kept below as the reference implementation).
            # A materialised capture is consumed by plain indexing — no generator
            # resume, no StopIteration — which is the dominant fetch source.
            if replay:
                dyn = replay.popleft()
            elif trace_list is not None:
                pos = self._trace_pos
                if pos >= trace_length:
                    self._trace_exhausted = True
                    break
                dyn = trace_list[pos]
                self._trace_pos = pos + 1
            elif self._trace_exhausted:
                break
            else:
                try:
                    dyn = next(self._trace)
                except StopIteration:
                    self._trace_exhausted = True
                    break
            uop = dyn.uop
            kind = uop.hot_mask
            is_branch = kind & 1
            if is_branch and dyn.taken and taken_branches >= max_taken:
                replay.appendleft(dyn)
                break
            line = (dyn.pc * 4) // l1i_line_size
            ways = l1i_sets[line % l1i_num_sets]
            if ways and ways[0] == line:
                # MRU hit: same accounting as Cache.access, no latency beyond L1I.
                l1i_stats.accesses += 1
                l1i_stats.hits += 1
            else:
                icache_latency = hierarchy_fetch(dyn.pc, cycle)
                if icache_latency > l1i_latency:
                    # Instruction cache miss: fetch stalls until the line returns.
                    replay.appendleft(dyn)
                    self._fetch_resume_cycle = cycle + icache_latency
                    break

            # Inlined pool.acquire + InflightOp._init (both kept as the
            # reference implementations; the recycle path below must mirror
            # _init field for field).
            if pool_free:
                op = pool_arena[pool_free.pop()]
                op.dyn = dyn
                op.seq = dyn.seq
                op.pc = dyn.pc
                op.uop = uop
                op.wake_gen += 1
                op.wake_consumers = None
                op.mem_waiters = None
                op.avail_cycle = unknown_cycle
                op.iq_waiters = 0
                op.prediction = None
                op.pred_used = False
                op.early_executed = False
                op.late_executed = False
                op.in_issue_queue = False
                op.issued = False
                op.executed = False
                op.squashed = False
                op.dest_bank = 0
                op.load_forwarded = False
            else:
                op = pool.acquire(dyn)
            op.fetch_cycle = cycle
            op.dispatch_ready_cycle = cycle + fetch_to_dispatch
            # Inlined history.snapshot() memoisation (one attribute read on the
            # common no-new-branch path).
            snapshot = history._snapshot
            op.history_snapshot = snapshot if snapshot is not None else history.snapshot()

            if predictor is not None and kind & 32:  # vp-eligible
                prediction = predictor.lookup(dyn.pc, history)
                op.prediction = prediction
                op.pred_used = prediction is not None and prediction.confident

            stop_fetching = False
            if is_branch:
                if dyn.taken:
                    taken_branches += 1
                outcome = bpu_predict(dyn)
                op.branch_outcome = outcome
                if outcome.direction_mispredicted or outcome.target_mispredicted:
                    self._fetch_blocked_on = op
                    stop_fetching = True
                elif outcome.resolved_at_decode:
                    stats.decode_redirects += 1
                    self._fetch_resume_cycle = cycle + config.decode_redirect_penalty
                    stop_fetching = True

            frontend.append(op)
            fetched += 1
            if tracer is not None:
                tracer.emit(cycle, "fetch", op, uop.opcode.name)
                if predictor is not None and kind & 32:
                    prediction = op.prediction
                    if op.pred_used:
                        tracer.emit(cycle, "vp_lookup", op, prediction.source)
                    elif prediction is not None:
                        tracer.emit(cycle, "vp_lookup", op, "low_confidence")
                    else:
                        tracer.emit(cycle, "vp_lookup", op, "miss")
            if stop_fetching:
                break
        if fetched:
            stats.fetched_uops += fetched

    def _fetch_soa(self) -> None:
        """:meth:`_fetch` over the SoA columns.

        The recycle block mirrors :meth:`ColumnarInflightOp._init` field for
        field (the object-valued slots stay record writes, the timing/flag state
        becomes column stores — one byte store replaces the reference's eight
        boolean resets); tracer events are sourced from the seq/pc columns.
        """
        config = self.config
        pool = self.pool
        deferred = pool._deferred
        if deferred:
            # Inlined pool.promote (kept as the reference implementation).
            rob_entries = self.rob._entries
            free = pool._free
            if rob_entries:
                oldest = rob_entries[0].seq
                while deferred and deferred[0][0] < oldest:
                    free.append(deferred.popleft()[1].slot)
            else:
                while deferred:
                    free.append(deferred.popleft()[1].slot)
        if self._fetch_blocked_on is not None:
            return
        cycle = self.cycle
        if cycle < self._fetch_resume_cycle:
            return
        frontend = self._frontend
        if len(frontend) >= config.frontend_capacity:
            return
        fetch_width = config.fetch_width
        max_taken = config.max_taken_branches_per_cycle
        l1i_latency = config.memory.l1i_latency
        ready_cycle = cycle + config.fetch_to_dispatch_latency
        hierarchy_fetch = self.hierarchy.fetch
        bpu_predict = self.bpu.predict
        history = self.history
        predictor = self.predictor
        stats = self.stats
        replay = self._replay
        pool_free = pool._free
        pool_arena = pool._arena
        c_fetch = pool.c_fetch
        c_disp_ready = pool.c_disp_ready
        c_seq = pool.c_seq
        c_pc = pool.c_pc
        c_hot = pool.c_hot
        c_wake_gen = pool.c_wake_gen
        c_avail = pool.c_avail
        c_iq_waiters = pool.c_iq_waiters
        c_flags = pool.c_flags
        c_dest_bank = pool.c_dest_bank
        # L1I hit fast path (the reference path is hierarchy.fetch): sequential
        # fetch hits the MRU line of one set almost every µ-op.
        l1i = self.hierarchy.l1i
        l1i_sets = l1i._sets
        l1i_num_sets = l1i.num_sets
        l1i_line_size = l1i.line_size
        l1i_stats = l1i.stats
        trace_list = self._trace_list
        trace_length = len(trace_list) if trace_list is not None else 0
        unknown_cycle = UNKNOWN_CYCLE
        tracer = self.tracer
        fetched = 0
        taken_branches = 0
        while fetched < fetch_width:
            # Inlined _next_dyninst (kept as the reference implementation).
            if replay:
                dyn = replay.popleft()
            elif trace_list is not None:
                pos = self._trace_pos
                if pos >= trace_length:
                    self._trace_exhausted = True
                    break
                dyn = trace_list[pos]
                self._trace_pos = pos + 1
            elif self._trace_exhausted:
                break
            else:
                try:
                    dyn = next(self._trace)
                except StopIteration:
                    self._trace_exhausted = True
                    break
            uop = dyn.uop
            kind = uop.hot_mask
            is_branch = kind & 1
            if is_branch and dyn.taken and taken_branches >= max_taken:
                replay.appendleft(dyn)
                break
            line = (dyn.pc * 4) // l1i_line_size
            ways = l1i_sets[line % l1i_num_sets]
            if ways and ways[0] == line:
                # MRU hit: same accounting as Cache.access, no latency beyond L1I.
                l1i_stats.accesses += 1
                l1i_stats.hits += 1
            else:
                icache_latency = hierarchy_fetch(dyn.pc, cycle)
                if icache_latency > l1i_latency:
                    # Instruction cache miss: fetch stalls until the line returns.
                    replay.appendleft(dyn)
                    self._fetch_resume_cycle = cycle + icache_latency
                    break

            # Inlined pool.acquire + ColumnarInflightOp._init (both kept as the
            # reference implementations; the recycle path mirrors _init).
            if pool_free:
                op = pool_arena[pool_free.pop()]
                slot = op.slot
                op.dyn = dyn
                seq = dyn.seq
                pc = dyn.pc
                op.seq = seq
                op.pc = pc
                op.uop = uop
                c_seq[slot] = seq
                c_pc[slot] = pc
                c_hot[slot] = kind
                c_wake_gen[slot] += 1
                op.wake_consumers = None
                op.mem_waiters = None
                c_avail[slot] = unknown_cycle
                c_iq_waiters[slot] = 0
                op.prediction = None
                c_flags[slot] = 0
                c_dest_bank[slot] = 0
            else:
                op = pool.acquire(dyn)
                slot = op.slot
            c_fetch[slot] = cycle
            c_disp_ready[slot] = ready_cycle
            # Inlined history.snapshot() memoisation (see _fetch).
            snapshot = history._snapshot
            op.history_snapshot = snapshot if snapshot is not None else history.snapshot()

            pred_used = False
            if predictor is not None and kind & 32:  # vp-eligible
                prediction = predictor.lookup(dyn.pc, history)
                op.prediction = prediction
                if prediction is not None and prediction.confident:
                    pred_used = True
                    c_flags[slot] = 1  # pred_used (fresh byte: no other bits yet)

            stop_fetching = False
            if is_branch:
                if dyn.taken:
                    taken_branches += 1
                outcome = bpu_predict(dyn)
                op.branch_outcome = outcome
                if outcome.direction_mispredicted or outcome.target_mispredicted:
                    self._fetch_blocked_on = op
                    stop_fetching = True
                elif outcome.resolved_at_decode:
                    stats.decode_redirects += 1
                    self._fetch_resume_cycle = cycle + config.decode_redirect_penalty
                    stop_fetching = True

            frontend.append(op)
            fetched += 1
            if tracer is not None:
                tracer.emit_slot(cycle, "fetch", c_seq[slot], c_pc[slot], slot, uop.opcode.name)
                if predictor is not None and kind & 32:
                    prediction = op.prediction
                    if pred_used:
                        tracer.emit_slot(
                            cycle, "vp_lookup", c_seq[slot], c_pc[slot], slot, prediction.source
                        )
                    elif prediction is not None:
                        tracer.emit_slot(
                            cycle, "vp_lookup", c_seq[slot], c_pc[slot], slot, "low_confidence"
                        )
                    else:
                        tracer.emit_slot(cycle, "vp_lookup", c_seq[slot], c_pc[slot], slot, "miss")
            if stop_fetching:
                break
        if fetched:
            stats.fetched_uops += fetched

    # ================================================================== squash
    def _squash_from(self, seq: int, cause: str = "value_mispred") -> None:
        """Squash every µ-op with sequence number >= ``seq`` and set up re-fetch."""
        self.stats.pipeline_squashes += 1
        squashed_rob = self.rob.squash_from(seq)
        squashed_frontend: list[InflightOp] = []
        while self._frontend and self._frontend[-1].seq >= seq:
            op = self._frontend.pop()
            op.squashed = True
            squashed_frontend.append(op)
        squashed_frontend.reverse()
        squashed = squashed_rob + squashed_frontend
        if not squashed:
            return
        self.stats.squashed_uops += len(squashed)
        if self.tracer is not None:
            emit = self.tracer.emit
            for op in squashed:
                emit(self.cycle, "squash", op, cause)
        if self._m_squash_depth is not None:
            self._m_squash_depth.record(len(squashed))
            self.metrics.counter(f"squash.cause.{cause}").inc()

        # Undo structural allocations of the squashed µ-ops.
        for op in squashed_rob:
            if op.uop.dst is not None and op.dispatch_cycle != UNKNOWN_CYCLE:
                self.prf.release(op.dest_bank)
        self.iq.remove_squashed()
        self.lsq.remove_squashed()
        self.store_sets.flush_lfst()
        self._rebuild_rename_map()
        self._previous_dispatch_group = []
        # Squashing flips dependence flags: surviving loads may now be ready.
        if self.cycle < self._iq_scan_from:
            self._iq_scan_from = self.cycle

        # Re-feed the squashed µ-ops to fetch, oldest first.
        for op in reversed(squashed):
            self._replay.appendleft(op.dyn)

        # Recover speculative predictor and history state.
        if self.predictor is not None:
            self.predictor.recover()
        self.history.restore(squashed[0].history_snapshot)

        # Fetch restarts after the squash (full front-end refill is paid naturally).
        if self._fetch_blocked_on is not None and self._fetch_blocked_on.squashed:
            self._fetch_blocked_on = None
        self._fetch_resume_cycle = max(self._fetch_resume_cycle, self.cycle + 1)

        # Squashed records are unreachable now (their consumers, being younger, died
        # with them; every structure above dropped its references) — recycle them,
        # except those still on the completion wheel, whose stale entries release
        # them when they pop.
        pool = self.pool
        for op in squashed:
            if not op.in_completion_wheel:
                pool.release(op)

    # ================================================================== run end / results
    def _check_run_end(self) -> None:
        """Reference implementation of the run-end test inlined at the end of
        :meth:`_step` (kept in sync with it)."""
        if self._finished:
            return
        if (
            self._trace_exhausted
            and not self._replay
            and not self._frontend
            and self.rob.is_empty
        ):
            self._finished = True

    def _build_result(self) -> SimulationResult:
        full = self.stats.copy()
        baseline = self._warmup_snapshot if self._warmup_snapshot is not None else SimStats()
        window = full.delta(baseline)
        coverage = accuracy = 0.0
        if self.predictor is not None:
            coverage = self.predictor.stats.coverage
            accuracy = self.predictor.stats.accuracy
        extra = {
            "iq_peak_occupancy": self.iq.peak_occupancy,
            "rob_peak_occupancy": self.rob.peak_occupancy,
            "btb_hit_rate": self.bpu.btb.hit_rate,
        }
        if self.metrics is not None:
            extra["metrics"] = drain_simulator_metrics(self)
        return SimulationResult(
            config_name=self.config.name,
            workload_name=self.workload_name,
            stats=window,
            full_stats=full,
            warmup_uops=self.warmup_uops,
            predictor_coverage=coverage,
            predictor_accuracy=accuracy,
            tage_misprediction_rate=self.bpu.tage.misprediction_rate,
            tage_high_confidence_misprediction_rate=(
                self.bpu.tage.high_confidence_misprediction_rate
            ),
            l1d_miss_rate=self.hierarchy.l1d.stats.miss_rate,
            l2_miss_rate=self.hierarchy.l2.stats.miss_rate,
            extra=extra,
        )


def simulate(
    config: PipelineConfig,
    program: Program,
    max_uops: int = 20_000,
    warmup_uops: int = 0,
    arch_state: ArchState | None = None,
    workload_name: str | None = None,
    trace: "CapturedTrace | Iterable[DynInst] | None" = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    simulator = Simulator(
        config,
        program,
        max_uops=max_uops,
        warmup_uops=warmup_uops,
        arch_state=arch_state,
        workload_name=workload_name,
        trace=trace,
    )
    return simulator.run()
